"""Legacy setup shim: enables editable installs where the ``wheel``
package is unavailable (``pip install -e . --no-build-isolation``)."""

from setuptools import setup

setup()
