"""The frozen ``repro`` public surface.

``repro.__all__`` is the supported API. This test pins it exactly:
adding or removing a name must be a deliberate edit here, and every
advertised name must actually resolve. ``Testbed``/``TestbedBuilder``
are the sole experiment facade; the deprecated ``Scenario`` never
appears at top level.
"""

import repro

FROZEN_SURFACE = (
    "GB",
    "KB",
    "MB",
    "AdmissionController",
    "AIMDPolicy",
    "BandwidthDegradation",
    "BandwidthMonitor",
    "ButterflyCode",
    "ChameleonRepair",
    "ChameleonRepairIO",
    "ChunkId",
    "Cluster",
    "CodingError",
    "ConventionalRepair",
    "ConvergenceError",
    "CoordinatorCrash",
    "ECPipe",
    "ErasureCode",
    "ExperimentConfig",
    "FailureDetector",
    "FailureInjector",
    "FailureReport",
    "FaultEvent",
    "FaultTimeline",
    "FlowInterruption",
    "HedgePolicy",
    "HookEmitter",
    "IntegrityLedger",
    "IntegrityRecord",
    "Journal",
    "JournalRecord",
    "JournalShard",
    "JournalState",
    "KeyRouter",
    "LRCCode",
    "LatencyRecorder",
    "LatentSectorError",
    "Lease",
    "LinkStatsCollector",
    "NetworkPartition",
    "Node",
    "NodeCrash",
    "PPR",
    "PlanError",
    "ProgressTracker",
    "RecoveryPlan",
    "ReliabilityModel",
    "RepairBoost",
    "RepairEquation",
    "RepairPlan",
    "RepairRunner",
    "RepairThroughputMeter",
    "ReproError",
    "RSCode",
    "RunTelemetry",
    "SchedulingError",
    "Scrubber",
    "Series",
    "ShardRouter",
    "SilentCorruption",
    "SimulationError",
    "Simulator",
    "SLOBreach",
    "SLOEvaluator",
    "SLOReport",
    "SLOSpec",
    "SLOVerdict",
    "Stripe",
    "StripeStore",
    "TimeseriesRecorder",
    "Testbed",
    "TestbedBuilder",
    "ToleranceExceeded",
    "TraceClient",
    "TransientStraggler",
    "TransitioningTrace",
    "audit_fenced_writes",
    "execute_plan",
    "gbps",
    "interference_degree",
    "launch_clients",
    "loss_probability_curve",
    "make_code",
    "make_trace",
    "mbs",
    "payload_checksum",
    "place_stripes",
    "reconcile",
    "ycsb_a",
)


class TestFrozenSurface:
    def test_all_matches_frozen_surface_exactly(self):
        assert repro.__all__ == FROZEN_SURFACE

    def test_all_is_immutable(self):
        assert isinstance(repro.__all__, tuple)

    def test_every_advertised_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicates(self):
        assert len(set(repro.__all__)) == len(repro.__all__)

    def test_scenario_not_in_public_surface(self):
        assert "Scenario" not in repro.__all__
        assert not hasattr(repro, "Scenario")

    def test_facade_entry_points_present(self):
        assert "Testbed" in repro.__all__
        assert "TestbedBuilder" in repro.__all__
