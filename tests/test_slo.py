"""Declarative SLO specs and the telemetry evaluator (repro.slo)."""

import pytest

from repro.errors import ReproError
from repro.integrity.ledger import IntegrityLedger
from repro.obs.timeseries import TimeseriesRecorder
from repro.sim.engine import Simulator
from repro.slo import RunTelemetry, SLOEvaluator, SLOSpec
from repro.slo.spec import SLOBreach, SLOReport, SLOVerdict


def spec(kind, threshold, name="s"):
    return SLOSpec(name, kind, threshold)


class TestSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown SLO kind"):
            SLOSpec("s", "made-up", 1.0)

    def test_empty_name(self):
        with pytest.raises(ReproError, match="non-empty name"):
            SLOSpec("", "zero_loss", 0.0)

    def test_negative_threshold(self):
        with pytest.raises(ReproError, match="cannot be negative"):
            SLOSpec("s", "repair_deadline", -1.0)

    def test_inflation_ceiling_below_one(self):
        with pytest.raises(ReproError, match="below 1.0x"):
            SLOSpec("s", "foreground_p99_inflation", 0.5)

    def test_duplicate_names_rejected(self):
        specs = [spec("zero_loss", 0.0), spec("repair_deadline", 1.0)]
        with pytest.raises(ReproError, match="duplicate"):
            SLOEvaluator(specs)

    def test_to_dict_round_trips_fields(self):
        s = SLOSpec("fg", "foreground_p99_inflation", 3.0, "ceiling")
        assert s.to_dict() == {
            "name": "fg", "kind": "foreground_p99_inflation",
            "threshold": 3.0, "description": "ceiling",
        }


def _recorder_with_p99(times, p99s, counts=None):
    """A recorder holding a synthetic lat.foreground.p99 series."""
    recorder = TimeseriesRecorder(Simulator(), window=1.0)
    for t, v in zip(times, p99s):
        recorder._series("lat.foreground.p99").append(t, v)
    for t, c in zip(times, counts if counts is not None else [1] * len(times)):
        recorder._series("lat.foreground.count").append(t, c)
    return recorder


class TestForegroundInflation:
    def test_vacuous_without_timeseries(self):
        verdict = SLOEvaluator([spec("foreground_p99_inflation", 2.0)]).evaluate(
            RunTelemetry(end_time=10.0)
        ).verdicts[0]
        assert verdict.passed and "no timeseries" in verdict.note

    def test_vacuous_without_baseline(self):
        ts = _recorder_with_p99([1.0], [0.5])
        verdict = SLOEvaluator([spec("foreground_p99_inflation", 2.0)]).evaluate(
            RunTelemetry(end_time=10.0, timeseries=ts, baseline_p99=0.0)
        ).verdicts[0]
        assert verdict.passed and "no baseline" in verdict.note

    def test_breach_carries_window_and_virtual_time(self):
        ts = _recorder_with_p99([1.0, 2.0, 3.0], [0.1, 0.5, 0.1])
        report = SLOEvaluator([spec("foreground_p99_inflation", 3.0)]).evaluate(
            RunTelemetry(end_time=3.0, timeseries=ts, baseline_p99=0.1)
        )
        verdict = report.verdicts[0]
        assert not verdict.passed
        assert verdict.observed == pytest.approx(5.0)
        (breach,) = verdict.breaches
        assert breach.time == 2.0
        assert breach.window == 1
        assert breach.observed == pytest.approx(5.0)

    def test_empty_windows_carry_no_evidence(self):
        # The inflated window saw zero completed requests: skipped.
        ts = _recorder_with_p99([1.0, 2.0], [0.1, 9.9], counts=[5, 0])
        report = SLOEvaluator([spec("foreground_p99_inflation", 2.0)]).evaluate(
            RunTelemetry(end_time=2.0, timeseries=ts, baseline_p99=0.1)
        )
        assert report.passed

    def test_within_ceiling_passes(self):
        ts = _recorder_with_p99([1.0, 2.0], [0.15, 0.2])
        report = SLOEvaluator([spec("foreground_p99_inflation", 2.5)]).evaluate(
            RunTelemetry(end_time=2.0, timeseries=ts, baseline_p99=0.1)
        )
        assert report.passed
        assert report.verdicts[0].observed == pytest.approx(2.0)


class TestRepairDeadline:
    def test_vacuous_without_repair(self):
        verdict = SLOEvaluator([spec("repair_deadline", 5.0)]).evaluate(
            RunTelemetry(end_time=10.0)
        ).verdicts[0]
        assert verdict.passed and "no repair" in verdict.note

    def test_on_time_passes(self):
        verdict = SLOEvaluator([spec("repair_deadline", 5.0)]).evaluate(
            RunTelemetry(end_time=10.0, repair_started_at=1.0,
                         repair_finished_at=4.0)
        ).verdicts[0]
        assert verdict.passed and verdict.observed == pytest.approx(3.0)

    def test_late_breaches_at_finish_time(self):
        verdict = SLOEvaluator([spec("repair_deadline", 2.0)]).evaluate(
            RunTelemetry(end_time=10.0, repair_started_at=1.0,
                         repair_finished_at=8.0)
        ).verdicts[0]
        assert not verdict.passed
        (breach,) = verdict.breaches
        assert breach.time == 8.0 and breach.observed == pytest.approx(7.0)

    def test_unfinished_breaches_at_end_of_run(self):
        verdict = SLOEvaluator([spec("repair_deadline", 100.0)]).evaluate(
            RunTelemetry(end_time=10.0, repair_started_at=1.0)
        ).verdicts[0]
        assert not verdict.passed
        (breach,) = verdict.breaches
        assert breach.time == 10.0
        assert "never completed" in breach.detail


class TestDetectionLatency:
    def _ledger(self):
        sim = Simulator()
        return sim, IntegrityLedger(sim)

    def test_vacuous_without_ledger(self):
        verdict = SLOEvaluator([spec("detection_latency", 1.0)]).evaluate(
            RunTelemetry(end_time=10.0)
        ).verdicts[0]
        assert verdict.passed and "no ledger" in verdict.note

    def test_fast_detection_passes(self):
        sim, ledger = self._ledger()
        ledger.record_injection("c1", "corruption")
        sim.run(until=2.0)
        ledger.record_detection("c1", "scrub")
        verdict = SLOEvaluator([spec("detection_latency", 5.0)]).evaluate(
            RunTelemetry(end_time=10.0, ledger=ledger)
        ).verdicts[0]
        assert verdict.passed and verdict.observed == pytest.approx(2.0)

    def test_slow_detection_breaches_at_detect_time(self):
        sim, ledger = self._ledger()
        ledger.record_injection("c1", "corruption")
        sim.run(until=7.0)
        ledger.record_detection("c1", "scrub")
        verdict = SLOEvaluator([spec("detection_latency", 5.0)]).evaluate(
            RunTelemetry(end_time=10.0, ledger=ledger)
        ).verdicts[0]
        assert not verdict.passed
        (breach,) = verdict.breaches
        assert breach.time == 7.0 and breach.observed == pytest.approx(7.0)

    def test_undetected_breaches_regardless_of_threshold(self):
        _, ledger = self._ledger()
        ledger.record_injection("c1", "sector_error")
        verdict = SLOEvaluator([spec("detection_latency", 1e9)]).evaluate(
            RunTelemetry(end_time=10.0, ledger=ledger)
        ).verdicts[0]
        assert not verdict.passed
        (breach,) = verdict.breaches
        assert breach.time == 10.0 and "never detected" in breach.detail


class TestZeroLoss:
    def test_clean_run_passes(self):
        verdict = SLOEvaluator([spec("zero_loss", 0.0)]).evaluate(
            RunTelemetry(end_time=10.0)
        ).verdicts[0]
        assert verdict.passed

    def test_losses_sum_across_sources(self):
        ledger = IntegrityLedger(Simulator())
        ledger.record_detection("ghost", "scrub")  # unexplained
        verdict = SLOEvaluator([spec("zero_loss", 0.0)]).evaluate(
            RunTelemetry(end_time=10.0, chunks_lost=1, unverified_chunks=2,
                         ledger=ledger)
        ).verdicts[0]
        assert not verdict.passed
        (breach,) = verdict.breaches
        assert breach.observed == 4.0
        assert "lost=1" in breach.detail

    def test_threshold_is_a_budget(self):
        verdict = SLOEvaluator([spec("zero_loss", 2.0)]).evaluate(
            RunTelemetry(end_time=10.0, chunks_lost=2)
        ).verdicts[0]
        assert verdict.passed


class TestReport:
    def _report(self):
        return SLOReport(verdicts=[
            SLOVerdict(spec("zero_loss", 0.0, name="a"), True, 0.0),
            SLOVerdict(spec("repair_deadline", 1.0, name="b"), False, 2.0,
                       [SLOBreach("b", 5.0, 2.0, 1.0)]),
        ])

    def test_passed_and_breaches_aggregate(self):
        report = self._report()
        assert not report.passed
        assert len(report.breaches) == 1

    def test_verdict_lookup(self):
        report = self._report()
        assert report.verdict("a").passed
        with pytest.raises(ReproError, match="no verdict"):
            report.verdict("zzz")

    def test_to_dict_shape(self):
        data = self._report().to_dict()
        assert data["passed"] is False
        assert [v["slo"]["name"] for v in data["verdicts"]] == ["a", "b"]
        breach = data["verdicts"][1]["breaches"][0]
        assert breach == {
            "slo": "b", "time": 5.0, "observed": 2.0,
            "threshold": 1.0, "detail": "",
        }
