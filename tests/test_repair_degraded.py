"""Tests for the degraded-read path (client-destination repair)."""

import numpy as np
import pytest

from repro.cluster import (
    ChunkId,
    Cluster,
    FailureInjector,
    MB,
    drop_node_chunks,
    encode_and_load,
    mbs,
    place_stripes,
)
from repro.codes import RSCode
from repro.errors import SchedulingError
from repro.integrity import IntegrityLedger
from repro.monitor import BandwidthMonitor
from repro.repair import (
    ConventionalRepair,
    ECPipe,
    DegradedRead,
    degraded_read_plan,
    execute_plan,
    run_degraded_read,
)

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(seed=0):
    code = RSCode(4, 2)
    cluster = Cluster(num_nodes=12, num_clients=2, link_bw=mbs(200))
    store = place_stripes(code, 15, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


class TestDegradedReadPlan:
    def test_destination_is_client(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        client = cluster.clients[0].id
        plan = degraded_read_plan(
            ConventionalRepair(seed=1), chunk, store, injector, client
        )
        assert plan.destination == client
        assert all(v == client for v in plan.parent.values())

    def test_plan_decodes_real_bytes(self):
        cluster, store, injector = make_env()
        code = store.code
        rng = np.random.default_rng(2)
        data = [rng.integers(0, 256, 64, dtype=np.uint8) for _ in range(code.k)]
        stripe = code.encode(data)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        plan = degraded_read_plan(
            ECPipe(seed=3), chunk, store, injector, cluster.clients[0].id
        )
        repaired = execute_plan(
            plan, {s.chunk_index: stripe[s.chunk_index] for s in plan.sources}
        )
        assert np.array_equal(repaired, stripe[chunk.index])

    def test_no_survivors_raises(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        # Fake an injector that reports nothing available.
        class Empty:
            def surviving_sources(self, _):
                return {}

        with pytest.raises(SchedulingError):
            degraded_read_plan(
                ConventionalRepair(), chunk, store, Empty(), cluster.clients[0].id
            )


class TestRunDegradedRead:
    def test_baseline_read_completes(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        read, instance = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[0].id,
            algorithm=ConventionalRepair(seed=4), slice_size=SLICE,
        )
        cluster.sim.run()
        assert read.completed_at is not None
        assert read.latency > 0
        assert read.throughput(CHUNK) > 0

    def test_chameleon_read_completes(self):
        cluster, store, injector = make_env()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        read, instance = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[1].id,
            monitor=monitor, slice_size=SLICE,
        )
        while read.completed_at is None and cluster.sim.now < 100:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert read.completed_at is not None
        assert instance.plan.destination == cluster.clients[1].id

    def test_chameleon_requires_monitor(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        with pytest.raises(SchedulingError):
            run_degraded_read(
                cluster, store, injector, report.failed_chunks[0],
                cluster.clients[0].id, slice_size=SLICE,
            )

    def test_metadata_not_relocated(self):
        # Degraded reads serve the client without repairing the chunk back.
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        before = store.node_of(chunk)
        read, _ = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[0].id,
            algorithm=ConventionalRepair(seed=5), slice_size=SLICE,
        )
        cluster.sim.run()
        assert store.node_of(chunk) == before

    def test_latency_before_completion_raises(self):
        read = DegradedRead(chunk=None, client=1, issued_at=0.0)
        with pytest.raises(SchedulingError):
            _ = read.latency


class TestVerifiedDegradedRead:
    def verified_env(self, seed=0):
        cluster, store, injector = make_env(seed=seed)
        chunk_store = encode_and_load(store, payload_size=64, seed=seed + 1)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        drop_node_chunks(chunk_store, store, 0)
        return cluster, store, injector, chunk_store, chunk

    def test_clean_read_delivers_exact_bytes(self):
        cluster, store, injector, cs, chunk = self.verified_env()
        read, _ = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[0].id,
            algorithm=ConventionalRepair(seed=4), slice_size=SLICE,
            chunk_store=cs,
        )
        cluster.sim.run()
        assert read.attempts == 1 and not read.detected
        assert np.array_equal(read.payload, cs.truth(chunk))

    def test_corrupt_helper_detected_and_routed_around(self):
        # Predict the first plan with a same-seeded probe rng, corrupt
        # one of its helpers: the verified read must quarantine it, fall
        # back to an alternate plan, and still deliver correct bytes.
        cluster, store, injector, cs, chunk = self.verified_env(seed=3)
        probe = degraded_read_plan(
            ConventionalRepair(seed=8), chunk, store, injector,
            cluster.clients[0].id,
        )
        bad = ChunkId(chunk.stripe, probe.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(5))
        ledger = IntegrityLedger(cluster.sim)
        ledger.record_injection(bad, "corruption")
        read, _ = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[0].id,
            algorithm=ConventionalRepair(seed=8), slice_size=SLICE,
            chunk_store=cs, ledger=ledger,
        )
        cluster.sim.run()
        assert read.detected == [bad]
        assert read.attempts == 2
        assert injector.is_quarantined(bad)
        assert np.array_equal(read.payload, cs.truth(chunk))
        assert ledger.records[bad].detected_by == "degraded_read"
        # The fallback plan cannot have reused the quarantined helper.

    def test_exhausting_attempts_raises(self):
        cluster, store, injector, cs, chunk = self.verified_env(seed=3)
        probe = degraded_read_plan(
            ConventionalRepair(seed=8), chunk, store, injector,
            cluster.clients[0].id,
        )
        bad = ChunkId(chunk.stripe, probe.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(6))
        read, _ = run_degraded_read(
            cluster, store, injector, chunk, cluster.clients[0].id,
            algorithm=ConventionalRepair(seed=8), slice_size=SLICE,
            chunk_store=cs, max_attempts=1,
        )
        with pytest.raises(SchedulingError, match="exhausted"):
            cluster.sim.run()
        assert read.payload is None
