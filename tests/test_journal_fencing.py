"""Zombie-coordinator fencing: stale journal writes leave zero trace."""

import pytest

from repro.api import Testbed
from repro.cluster import ChunkId
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.faults import FaultTimeline
from repro.journal import Journal, audit_fenced_writes

C1 = ChunkId(0, 0)
C2 = ChunkId(1, 0)


def drive(view, chunk):
    """One full repair lifecycle through a shard view."""
    view.chunk_enqueued(chunk)
    view.plan_chosen(chunk, destination=5, sources=[1, 2], attempt=1)
    view.reads_issued(chunk, transfers=2)
    view.decode_verified(chunk)
    view.writeback_committed(chunk)


class TestStaleWriteRejection:
    def test_fenced_incarnation_writes_are_dropped(self):
        journal = Journal()
        view = journal.shard_view(0)
        view.coordinator_started()
        drive(view, C1)
        accepted = len(journal)
        journal.fence(shard=0)
        fence_len = len(journal)
        # The zombie (same view, stale incarnation) keeps writing.
        drive(view, C2)
        view.attempt_failed(C2, "stalled")
        view.chunk_lost(C2)
        assert len(journal) == fence_len
        assert journal.fenced_writes == 7
        assert accepted < fence_len  # only the fence record moved the log

    def test_rejected_writes_leave_journal_bytes_identical(self):
        def build(zombie_writes):
            journal = Journal()
            view = journal.shard_view(0)
            view.coordinator_started()
            drive(view, C1)
            journal.fence(shard=0)
            if zombie_writes:
                drive(view, C2)  # every one rejected
            return journal

        # A fenced zombie hammering the log must be indistinguishable —
        # byte-for-byte — from a zombie that never wrote at all.
        assert build(True).to_json() == build(False).to_json()
        assert build(True).fenced_writes == 5

    def test_next_incarnation_writes_accepted(self):
        journal = Journal()
        zombie = journal.shard_view(0)
        zombie.coordinator_started()
        journal.fence(shard=0)
        successor = journal.shard_view(0)
        successor.coordinator_started()
        before = len(journal)
        drive(successor, C1)
        assert len(journal) == before + 5
        # The zombie stays rejected even after the successor opens.
        zombie.chunk_enqueued(C2)
        assert len(journal) == before + 5

    def test_unstarted_view_bypasses_the_check(self):
        # Pre-partition surface: a view that never called
        # coordinator_started writes with epoch=None and is not judged.
        journal = Journal()
        view = journal.shard_view(0)
        journal.coordinator_started(shard=0)
        journal.fence(shard=0)
        view.chunk_enqueued(C1)
        assert journal.fenced_writes == 0
        assert len(journal) == 3

    def test_sibling_shards_unaffected_by_fence(self):
        journal = Journal()
        fenced = journal.shard_view(0)
        healthy = journal.shard_view(1)
        fenced.coordinator_started()
        healthy.coordinator_started()
        journal.fence(shard=0)
        drive(healthy, C2)
        assert journal.fenced_writes == 0
        fenced.chunk_enqueued(C1)
        assert journal.fenced_writes == 1

    def test_audit_flags_hand_forged_stale_records(self):
        # The auditor is the independent check: force a chunk record
        # into the log while the shard is fenced (simulating a buggy
        # journal that accepted it) and the replay must flag it.
        journal = Journal()
        journal.coordinator_started(shard=0)
        journal.chunk_enqueued(C1, shard=0)
        journal.fence(shard=0)
        journal.chunk_enqueued(C2, shard=0)  # epoch=None slips through
        violations = audit_fenced_writes(journal)
        assert [v.chunk for v in violations] == [C2]


class TestZombieScenario:
    """Integration: a pinned coordinator partitioned away from the log."""

    @pytest.fixture(scope="class")
    def outcome(self):
        config = ExperimentConfig.scaled(0.05, seed=0, chunk_mb=16.0)
        testbed = Testbed.build(config)
        testbed.enable_journal(checkpoint_interval=None)
        testbed.enable_integrity()
        testbed.cluster.sim.run(until=1.0)
        report = testbed.fail_nodes(1)
        repairers = testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=2
        )
        home = testbed.cluster.storage_nodes[-1].id
        testbed.place_coordinator(repairers[0], home)
        timeline = FaultTimeline().partition(0.2, [[home]], duration=4.0)
        testbed.install_faults(timeline)
        testbed.run_until(
            lambda: testbed.zombie_stepdowns > 0
            or testbed.cluster.sim.now > 60.0,
            step=0.5,
        )
        assert testbed.zombie_stepdowns == 1
        testbed.recover_repairer(shard=0)
        testbed.run_until(
            lambda: all(
                not getattr(r, "crashed", False) and r.done
                for r in testbed.repairers
            ),
            step=0.5,
        )
        return testbed, report

    def test_fence_rejected_the_zombies_writes(self, outcome):
        testbed, _ = outcome
        assert testbed.journal.fenced_writes > 0

    def test_no_stale_write_was_accepted(self, outcome):
        testbed, _ = outcome
        assert audit_fenced_writes(testbed.journal) == []

    def test_post_heal_recovery_is_complete_and_verified(self, outcome):
        testbed, report = outcome
        assert all(
            testbed.chunk_store.verify(c) for c in report.failed_chunks
        )

    def test_healed_journal_matches_a_zombie_silent_log(self, outcome):
        # Replay equivalence: folding the accepted records must yield a
        # state with no fenced shard and no open work — exactly what a
        # log written without any zombie interference folds to.
        testbed, _ = outcome
        state = testbed.journal.replay()
        assert not state.fenced_of(0) and not state.fenced_of(1)
        assert testbed.journal.state.fenced_of(0) == state.fenced_of(0)


class TestPlacementValidation:
    def test_place_coordinator_needs_journal(self):
        config = ExperimentConfig.scaled(0.05, seed=0)
        testbed = Testbed.build(config)
        repairer = testbed.make_repairer("ChameleonEC")
        with pytest.raises(ReproError):
            testbed.place_coordinator(repairer, 1)

    def test_place_coordinator_needs_shard_binding(self):
        config = ExperimentConfig.scaled(0.05, seed=0)
        testbed = Testbed.build(config)
        testbed.enable_journal()
        repairer = testbed.make_repairer("ChameleonEC")
        with pytest.raises(ReproError):
            testbed.place_coordinator(repairer, 1)
