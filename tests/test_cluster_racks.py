"""Tests for the two-level (rack-aware) topology extension."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.repair import ConventionalRepair, RepairRunner


class TestRackStructure:
    def test_round_robin_assignment(self):
        cluster = Cluster(num_nodes=6, num_clients=0, racks=3)
        assert cluster.rack_of(0) == 0
        assert cluster.rack_of(1) == 1
        assert cluster.rack_of(3) == 0

    def test_clients_in_access_rack(self):
        cluster = Cluster(num_nodes=4, num_clients=2, racks=2)
        assert cluster.rack_of(4) == 2
        assert cluster.rack_of(5) == 2

    def test_flat_topology_has_no_racks(self):
        cluster = Cluster(num_nodes=4, num_clients=0)
        assert cluster.rack_of(0) is None

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            Cluster(num_nodes=4, num_clients=0, racks=0)
        with pytest.raises(SimulationError):
            Cluster(num_nodes=4, num_clients=0, racks=8)
        with pytest.raises(SimulationError):
            Cluster(num_nodes=4, num_clients=0, racks=2, oversubscription=0.5)


class TestRackPaths:
    def test_intra_rack_skips_core(self):
        cluster = Cluster(num_nodes=6, num_clients=0, racks=3)
        # Nodes 0 and 3 share rack 0.
        names = [r.name for r in cluster.transfer_resources(0, 3)]
        assert not any("rack" in n for n in names)

    def test_cross_rack_crosses_core(self):
        cluster = Cluster(num_nodes=6, num_clients=0, racks=3)
        names = [r.name for r in cluster.transfer_resources(0, 1)]
        assert "rack0.up" in names
        assert "rack1.down" in names

    def test_oversubscription_throttles_cross_rack(self):
        # 2 racks x 2 nodes, 4x oversubscribed core: the rack pipe is
        # 2 * 100 / 4 = 50 MB/s, half a node link, so a cross-rack
        # transfer takes twice the intra-rack time.
        results = {}
        for label, src, dst in (("intra", 0, 2), ("cross", 0, 1)):
            cluster = Cluster(
                num_nodes=4, num_clients=0, racks=2, oversubscription=4.0,
                link_bw=mbs(100), disk_read_bw=mbs(10000), disk_write_bw=mbs(10000),
            )
            t = cluster.make_transfer(src, dst, 100 * MB, 25 * MB)
            cluster.start(t)
            cluster.sim.run()
            results[label] = t.completed_at
        assert results["cross"] == pytest.approx(results["intra"] * 2.0, rel=0.05)

    def test_full_node_repair_on_racked_cluster(self):
        code = RSCode(4, 2)
        cluster = Cluster(
            num_nodes=12, num_clients=0, racks=4, oversubscription=3.0,
            link_bw=mbs(100),
        )
        store = place_stripes(code, 15, cluster.storage_ids, chunk_size=8 * MB, seed=1)
        injector = FailureInjector(cluster, store)
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=2),
            chunk_size=8 * MB, slice_size=2 * MB,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done

    def test_oversubscribed_repair_slower_than_flat(self):
        def run(racks, oversub):
            code = RSCode(4, 2)
            kw = {} if racks is None else {"racks": racks, "oversubscription": oversub}
            cluster = Cluster(num_nodes=12, num_clients=0, link_bw=mbs(100), **kw)
            store = place_stripes(code, 15, cluster.storage_ids, chunk_size=8 * MB, seed=1)
            injector = FailureInjector(cluster, store)
            report = injector.fail_nodes([0])
            runner = RepairRunner(
                cluster, store, injector, ConventionalRepair(seed=2),
                chunk_size=8 * MB, slice_size=2 * MB,
            )
            runner.repair(report.failed_chunks)
            cluster.sim.run()
            return runner.meter.throughput

        assert run(None, None) > run(4, 5.0)
