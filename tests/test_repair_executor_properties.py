"""Property-based tests: arbitrary valid plan topologies decode correctly.

The central correctness claim of tunable repair is that *any* in-tree
pairing of upload/download tasks — and any re-tuned mutation of it —
computes the same linear combination (Eq. 1). These tests generate
random tree shapes over random RS stripes and check byte equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChunkId
from repro.codes import LRCCode, RSCode
from repro.repair import PlanSource, RepairPlan, execute_plan


def random_tree(rng, nodes: list[int], destination: int) -> dict[int, int]:
    """A uniformly random in-tree over ``nodes`` rooted at ``destination``."""
    parent = {}
    attached = [destination]
    order = list(nodes)
    rng.shuffle(order)
    for node in order:
        parent[node] = int(rng.choice(attached))
        attached.append(node)
    return parent


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_random_tree_plans_decode(seed):
    rng = np.random.default_rng(seed)
    k = int(rng.integers(2, 9))
    m = int(rng.integers(1, 4))
    code = RSCode(k, m)
    data = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(k)]
    stripe = code.encode(data)
    failed = int(rng.integers(0, k + m))
    eq = code.repair_equation(failed)
    sources = [
        PlanSource(node_id=100 + idx, chunk_index=idx, coefficient=c)
        for idx, c in sorted(eq.coefficients.items())
    ]
    nodes = [s.node_id for s in sources]
    plan = RepairPlan(
        chunk=ChunkId(0, failed),
        destination=999,
        sources=sources,
        parent=random_tree(rng, nodes, 999),
    )
    chunk_data = {s.chunk_index: stripe[s.chunk_index] for s in sources}
    assert np.array_equal(execute_plan(plan, chunk_data), stripe[failed])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_random_retune_sequences_decode(seed):
    """Any sequence of redirect mutations keeps the plan correct."""
    rng = np.random.default_rng(seed)
    code = RSCode(6, 3)
    data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(6)]
    stripe = code.encode(data)
    failed = int(rng.integers(0, 9))
    eq = code.repair_equation(failed)
    sources = [
        PlanSource(node_id=100 + idx, chunk_index=idx, coefficient=c)
        for idx, c in sorted(eq.coefficients.items())
    ]
    nodes = [s.node_id for s in sources]
    plan = RepairPlan(
        chunk=ChunkId(0, failed),
        destination=999,
        sources=sources,
        parent=random_tree(rng, nodes, 999),
    )
    chunk_data = {s.chunk_index: stripe[s.chunk_index] for s in sources}
    for _ in range(int(rng.integers(1, 5))):
        movable = [n for n in nodes if plan.parent[n] != 999]
        if not movable:
            break
        plan.redirect_to_destination(int(rng.choice(movable)))
        assert np.array_equal(execute_plan(plan, chunk_data), stripe[failed])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_lrc_local_repairs_over_random_trees(seed):
    rng = np.random.default_rng(seed)
    code = LRCCode(8, 2, 2)
    data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(8)]
    stripe = code.encode(data)
    failed = int(rng.integers(0, 8))  # a data chunk -> local repair
    eq = code.repair_equation(failed)
    sources = [
        PlanSource(node_id=50 + idx, chunk_index=idx, coefficient=c)
        for idx, c in sorted(eq.coefficients.items())
    ]
    assert len(sources) == code.group_size
    plan = RepairPlan(
        chunk=ChunkId(0, failed),
        destination=999,
        sources=sources,
        parent=random_tree(rng, [s.node_id for s in sources], 999),
    )
    chunk_data = {s.chunk_index: stripe[s.chunk_index] for s in sources}
    assert np.array_equal(execute_plan(plan, chunk_data), stripe[failed])
