"""Unit tests for the write-ahead journal: records, state fold, leases,
checkpoints, serialisation, and store-reconciled recovery plans."""

import pytest

from repro.cluster.stripes import ChunkId
from repro.errors import SimulationError
from repro.journal import (
    ENQUEUED,
    Journal,
    JournalRecord,
    JournalState,
    Lease,
    reconcile,
)
from repro.sim import Simulator

C1 = ChunkId(0, 1)
C2 = ChunkId(1, 2)
C3 = ChunkId(2, 0)


def make_journal(**kwargs) -> Journal:
    return Journal(Simulator(), **kwargs)


class TestAppendAndFold:
    def test_records_are_stamped_with_virtual_time(self):
        journal = make_journal()
        journal.sim.run(until=7.5)
        journal.chunk_enqueued(C1)
        record = journal.records[-1]
        assert record.at == 7.5 and record.kind == ENQUEUED

    def test_sequence_numbers_are_monotonic(self):
        journal = make_journal()
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.chunk_enqueued(C2)
        assert [r.seq for r in journal.records] == [0, 1, 2]

    def test_live_state_equals_replay(self):
        journal = make_journal()
        journal.coordinator_started()
        for chunk in (C1, C2, C3):
            journal.chunk_enqueued(chunk)
        journal.plan_chosen(C1, destination=3, sources=[1, 2], attempt=1)
        journal.writeback_committed(C1)
        journal.plan_chosen(C2, destination=4, sources=[1, 5], attempt=1)
        journal.attempt_failed(C2, "helper crashed")
        journal.chunk_lost(C3)
        replayed = journal.replay()
        assert list(replayed.pending) == list(journal.state.pending) == [C2]
        assert list(replayed.committed) == [C1]
        assert list(replayed.lost) == [C3]
        assert not replayed.leases

    def test_enqueue_reopens_a_committed_chunk(self):
        journal = make_journal()
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        journal.writeback_committed(C1)
        # Integrity reject: the data plane re-enqueues via add_chunks.
        journal.chunk_enqueued(C1)
        state = journal.replay()
        assert list(state.pending) == [C1] and not state.committed

    def test_unknown_record_kind_rejected(self):
        state = JournalState()
        with pytest.raises(ValueError):
            state.apply(JournalRecord(seq=0, at=0.0, kind="nonsense"))

    def test_constructor_validation(self):
        with pytest.raises(SimulationError):
            Journal(lease_duration=0.0)
        with pytest.raises(SimulationError):
            Journal(checkpoint_interval=0)


class TestLeases:
    def test_plan_chosen_grants_a_lease_until_expiry(self):
        journal = make_journal(lease_duration=30.0)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.sim.run(until=5.0)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        lease = journal.state.leases[C1]
        assert lease == Lease(chunk=C1, epoch=1, acquired_at=5.0, expires_at=35.0)
        assert not journal.state.reexecutable(C1, now=10.0)
        assert journal.state.reexecutable(C1, now=35.0)  # expired

    def test_fencing_voids_live_leases(self):
        journal = make_journal(lease_duration=1000.0)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        assert not journal.state.reexecutable(C1, now=0.0)
        journal.fence()
        assert journal.state.reexecutable(C1, now=0.0)

    def test_fence_is_idempotent_per_epoch(self):
        journal = make_journal()
        journal.coordinator_started()
        journal.fence()
        n = len(journal.records)
        journal.fence()
        assert len(journal.records) == n

    def test_new_epoch_voids_older_leases(self):
        journal = make_journal(lease_duration=1000.0)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        journal.coordinator_started()  # epoch 2, no fence record
        assert journal.state.reexecutable(C1, now=0.0)

    def test_attempt_failed_releases_the_lease(self):
        journal = make_journal()
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        journal.attempt_failed(C1, "timeout")
        assert C1 not in journal.state.leases
        assert list(journal.state.pending) == [C1]


class TestCheckpoints:
    def _populate(self, journal, n=10):
        journal.coordinator_started()
        chunks = [ChunkId(i, 0) for i in range(n)]
        for chunk in chunks:
            journal.chunk_enqueued(chunk)
        for chunk in chunks[: n // 2]:
            journal.plan_chosen(chunk, destination=1, sources=[2], attempt=1)
            journal.writeback_committed(chunk)
        return chunks

    def test_checkpoint_compacts_but_preserves_state(self):
        journal = make_journal()
        chunks = self._populate(journal)
        before = journal.replay()
        journal.checkpoint()
        assert len(journal.records) == 1
        assert journal.compacted_records > 0
        after = journal.replay()
        assert list(after.pending) == list(before.pending) == chunks[5:]
        assert list(after.committed) == list(before.committed)
        assert after.epoch == before.epoch

    def test_checkpoint_preserves_leases(self):
        journal = make_journal(lease_duration=42.0)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        journal.checkpoint()
        lease = journal.replay().leases[C1]
        assert lease.expires_at == 42.0 and lease.epoch == 1

    def test_auto_checkpoint_bounds_the_log(self):
        journal = make_journal(checkpoint_interval=8)
        self._populate(journal, n=40)
        assert len(journal.records) <= 9  # checkpoint + at most interval

    def test_appends_after_checkpoint_still_replay(self):
        journal = make_journal()
        self._populate(journal, n=4)
        journal.checkpoint()
        journal.chunk_enqueued(ChunkId(99, 0))
        state = journal.replay()
        assert ChunkId(99, 0) in state.pending


class TestSerialisation:
    def test_json_round_trip(self):
        journal = make_journal(lease_duration=17.0, checkpoint_interval=100)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3, 4], attempt=2)
        journal.chunk_enqueued(C2)
        journal.writeback_committed(C2)
        clone = Journal.from_json(journal.to_json())
        assert clone.lease_duration == 17.0
        assert clone.epoch == journal.epoch
        assert len(clone.records) == len(journal.records)
        a, b = clone.replay(), journal.replay()
        assert list(a.pending) == list(b.pending)
        assert list(a.committed) == list(b.committed)
        assert a.leases[C1].expires_at == b.leases[C1].expires_at

    def test_round_trip_after_checkpoint(self):
        journal = make_journal()
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.writeback_committed(C1)
        journal.checkpoint()
        clone = Journal.from_json(journal.to_json())
        assert list(clone.replay().committed) == [C1]
        assert clone.compacted_records == journal.compacted_records


class _FakeStore:
    """Minimal has()/verify() double for reconcile()."""

    def __init__(self, verified=(), unverified=()):
        self._verified = set(verified)
        self._present = self._verified | set(unverified)

    def has(self, chunk):
        return chunk in self._present

    def verify(self, chunk):
        return chunk in self._verified


class TestReconcile:
    def _state(self, journal_setup):
        journal = make_journal(lease_duration=1000.0)
        journal_setup(journal)
        return journal.replay()

    def test_committed_and_verified_stays_completed(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.writeback_committed(C1)

        plan = reconcile(
            self._state(setup), now=0.0, chunk_store=_FakeStore(verified=[C1])
        )
        assert plan.completed == [C1] and not plan.requeue

    def test_committed_but_corrupt_is_demoted(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.writeback_committed(C1)

        plan = reconcile(
            self._state(setup), now=0.0, chunk_store=_FakeStore(unverified=[C1])
        )
        assert plan.demoted == [C1] and plan.requeue == [C1]

    def test_in_flight_verified_bytes_are_adopted(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.plan_chosen(C1, destination=2, sources=[3], attempt=1)

        plan = reconcile(
            self._state(setup), now=0.0, chunk_store=_FakeStore(verified=[C1])
        )
        assert plan.adopted_from_store == [C1]
        assert plan.completed == [C1] and not plan.requeue

    def test_live_lease_blocks_without_fence(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.plan_chosen(C1, destination=2, sources=[3], attempt=1)

        plan = reconcile(self._state(setup), now=0.0, chunk_store=None)
        assert plan.blocked == [C1]

    def test_fenced_lease_requeues(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.plan_chosen(C1, destination=2, sources=[3], attempt=1)
            j.fence()

        plan = reconcile(self._state(setup), now=0.0, chunk_store=None)
        assert plan.requeue == [C1] and not plan.blocked

    def test_without_store_the_journal_is_trusted(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.writeback_committed(C1)
            j.chunk_enqueued(C2)

        plan = reconcile(self._state(setup), now=0.0, chunk_store=None)
        assert plan.completed == [C1] and plan.requeue == [C2]

    def test_lost_stays_lost(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.chunk_lost(C1)

        plan = reconcile(self._state(setup), now=0.0, chunk_store=None)
        assert plan.lost == [C1] and not plan.requeue

    def test_summary_counts(self):
        def setup(j):
            j.coordinator_started()
            j.chunk_enqueued(C1)
            j.chunk_enqueued(C2)
            j.writeback_committed(C1)

        plan = reconcile(self._state(setup), now=0.0, chunk_store=None)
        assert plan.summary() == {
            "completed": 1, "requeue": 1, "blocked": 0,
            "lost": 0, "demoted": 0, "adopted_from_store": 0,
        }
