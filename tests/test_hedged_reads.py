"""Hedged repair reads and seeded retry-backoff jitter."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError, SchedulingError
from repro.repair import ConventionalRepair, HedgePolicy, RepairRunner

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(num_nodes=12, num_stripes=20, seed=0):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), num_stripes, cluster.storage_ids,
                          chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def make_runner(cluster, store, injector, **overrides):
    overrides.setdefault("chunk_size", CHUNK)
    overrides.setdefault("slice_size", SLICE)
    overrides.setdefault("concurrency", 4)
    return RepairRunner(
        cluster, store, injector, ConventionalRepair(seed=1), **overrides
    )


class _StubRecorder:
    def __init__(self, value):
        self.value = value

    def latest(self, series, default=0.0):
        return self.value


class TestHedgePolicy:
    def test_fixed_delay_wins(self):
        policy = HedgePolicy(fixed_delay=1.5, min_delay=9.0)
        assert policy.delay() == 1.5

    def test_min_delay_floor_without_telemetry(self):
        assert HedgePolicy(min_delay=2.0).delay() == 2.0

    def test_delay_tracks_live_p99(self):
        policy = HedgePolicy(
            recorder=_StubRecorder(1.0), multiplier=4.0, min_delay=2.0
        )
        assert policy.delay() == 4.0
        policy.recorder = _StubRecorder(0.1)
        assert policy.delay() == 2.0  # floor dominates a calm cluster

    def test_validation(self):
        with pytest.raises(SimulationError):
            HedgePolicy(multiplier=0.0)
        with pytest.raises(SimulationError):
            HedgePolicy(min_delay=0.0)
        with pytest.raises(SimulationError):
            HedgePolicy(fixed_delay=0.0)


class TestHedgedRepair:
    def test_no_hedge_without_policy(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = make_runner(cluster, store, injector)
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done
        assert runner.hedges_launched == 0

    def test_straggling_helper_triggers_hedge(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = make_runner(
            cluster, store, injector, hedge=HedgePolicy(fixed_delay=0.5)
        )
        # Throttle one helper's uplink mid-repair: its chunks run past
        # the hedge delay and a backup plan races them around it.
        def throttle():
            node = cluster.node(1)
            node.uplink.set_capacity(node.uplink.capacity * 0.01)

        cluster.sim.call_at(0.1, throttle)
        runner.repair(report.failed_chunks)
        cluster.sim.run(until=200.0)
        assert runner.done
        assert len(runner.completed) == len(report.failed_chunks)
        assert runner.hedges_launched > 0
        assert runner.hedges_won > 0

    def test_hedge_repairs_stay_exactly_once(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = make_runner(
            cluster, store, injector, hedge=HedgePolicy(fixed_delay=0.5)
        )

        def throttle():
            node = cluster.node(2)
            node.uplink.set_capacity(node.uplink.capacity * 0.01)

        cluster.sim.call_at(0.1, throttle)
        runner.repair(report.failed_chunks)
        cluster.sim.run(until=200.0)
        assert runner.done
        # A raced chunk completes exactly once, whichever plan won.
        assert len(set(runner.completed)) == len(runner.completed)


class TestSuspicionReplan:
    def test_helper_suspected_replans_in_flight_work(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = make_runner(cluster, store, injector)
        runner.repair(report.failed_chunks)
        cluster.sim.run(until=0.05)
        touched = {
            helper
            for instance in runner.in_flight.values()
            for helper in instance.plan.source_nodes
        }
        victim = sorted(touched)[0]
        runner.helper_suspected(victim)
        assert runner.suspect_replans > 0
        cluster.sim.run()
        assert runner.done
        assert len(runner.completed) == len(report.failed_chunks)


class TestRetryJitter:
    def test_validation(self):
        cluster, store, injector = make_env()
        with pytest.raises(SchedulingError):
            make_runner(cluster, store, injector, retry_jitter=1.0)
        with pytest.raises(SchedulingError):
            make_runner(cluster, store, injector, retry_jitter=-0.1)

    def test_disabled_jitter_draws_nothing(self):
        cluster, store, injector = make_env()
        runner = make_runner(
            cluster, store, injector, retry_jitter=0.0, jitter_seed=123
        )
        # The zero setting must be byte-identical to no jitter at all:
        # no RNG even exists to perturb the event sequence.
        assert runner._jitter_rng is None

    def _finish_time(self, retry_jitter, jitter_seed=0):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = make_runner(
            cluster, store, injector,
            retry_jitter=retry_jitter, jitter_seed=jitter_seed,
            chunk_timeout=1.0, retry_backoff=0.5,
        )
        # A mid-repair partition stalls cross-cut flows until heal;
        # chunk_timeout expires first, so retries (and their backoff
        # delays) actually happen.
        pid = []
        cluster.sim.call_at(0.05, lambda: pid.append(
            cluster.apply_partition([[1, 2]])
        ))
        cluster.sim.call_at(4.0, lambda: cluster.heal_partition(pid[0]))
        runner.repair(report.failed_chunks)
        cluster.sim.run(until=500.0)
        assert runner.done
        assert len(runner.completed) == len(report.failed_chunks)
        return runner.meter.finished_at

    def test_zero_jitter_matches_default_exactly(self):
        assert self._finish_time(0.0, jitter_seed=77) == self._finish_time(0.0)

    def test_jittered_runs_are_seed_deterministic(self):
        first = self._finish_time(0.5, jitter_seed=5)
        second = self._finish_time(0.5, jitter_seed=5)
        assert first == second
