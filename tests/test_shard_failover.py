"""End-to-end tests for the sharded repair control plane.

Covers the facade-level guarantees ISSUE 9 pins down:

* the single-shard configuration is *byte-identical* to the
  single-coordinator path (same journal bytes, same repairs);
* a targeted :class:`~repro.faults.CoordinatorCrash` fences, replays
  and rebuilds only the dead shard — sibling shards never stop;
* coordinator-crash MTTR bookkeeping is kept per shard, so staggered
  crashes of different shards each measure their own recovery latency;
* the crash/recovery determinism battery: >= 10 seeds x >= 2 crash
  timings x >= 2 shard counts, identical across reruns and with
  reconstructed bytes equal to the crash-free run's.
"""

import pytest

from repro.api import ShardRouter, Testbed
from repro.cluster.stripes import ChunkId
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry, set_registry

SEEDS = tuple(range(10))
CRASH_TIMES = (0.05, 0.12)
SHARD_COUNTS = (2, 4)


def make_testbed(seed):
    return (
        Testbed.builder()
        .scaled(0.05)
        .with_options(
            num_nodes=12, num_clients=2, code="RS(4,2)",
            chunk_mb=16.0, num_chunks=10,
        )
        .with_seed(seed)
        .with_integrity()
        .with_journal()
        .build()
    )


def all_done(testbed):
    return lambda: all(
        not getattr(r, "crashed", False) and r.done for r in testbed.repairers
    )


class TestShardRouter:
    def test_rejects_zero_shards(self):
        with pytest.raises(ReproError):
            ShardRouter(0)

    def test_partition_is_deterministic_and_order_preserving(self):
        router = ShardRouter(4)
        chunks = [ChunkId(i, i % 3) for i in range(20)]
        parts = router.partition(chunks)
        assert parts == ShardRouter(4).partition(chunks)
        assert sum(len(p) for p in parts) == len(chunks)
        for shard, part in enumerate(parts):
            # Each partition keeps the batch's relative order.
            assert part == [c for c in chunks if router.shard_of(c) == shard]

    def test_stripe_locality(self):
        """Every chunk of one stripe lands on the same shard."""
        router = ShardRouter(3)
        for stripe in range(50):
            shards = {router.shard_of(ChunkId(stripe, i)) for i in range(6)}
            assert len(shards) == 1

    def test_one_shard_maps_everything_to_zero(self):
        router = ShardRouter(1)
        assert all(
            router.shard_of(ChunkId(s, 0)) == 0 for s in range(100)
        )


class TestSingleShardEquivalence:
    """shards=1 degenerates exactly into the single-coordinator path."""

    @staticmethod
    def _outcome(testbed, chunks):
        return (
            testbed.journal.to_json(),
            {c: testbed.chunk_store.get(c).tobytes() for c in chunks},
            testbed.cluster.sim.now,
        )

    def test_journal_and_bytes_are_byte_identical(self):
        legacy = make_testbed(3)
        report = legacy.fail_nodes(1)
        repairer = legacy.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        legacy.run_until(lambda: repairer.done, limit=5000.0)

        sharded = make_testbed(3)
        report2 = sharded.fail_nodes(1)
        (only,) = sharded.start_sharded_repair(
            "ChameleonEC", report2.failed_chunks, shards=1
        )
        sharded.run_until(lambda: only.done, limit=5000.0)

        assert report2.failed_chunks == report.failed_chunks
        assert self._outcome(sharded, report2.failed_chunks) == self._outcome(
            legacy, report.failed_chunks
        )
        assert list(only.completed) == list(repairer.completed)

    def test_sharded_repair_requires_a_journal(self):
        testbed = Testbed.builder().scaled(0.05).with_options(
            num_nodes=12, num_clients=2, code="RS(4,2)",
            chunk_mb=16.0, num_chunks=10,
        ).build()
        report = testbed.fail_nodes(1)
        with pytest.raises(ReproError):
            testbed.start_sharded_repair(
                "ChameleonEC", report.failed_chunks, shards=2
            )


class TestTargetedCrash:
    def _crash_one_shard(self, seed=0, crash_at=0.05):
        testbed = make_testbed(seed)
        report = testbed.fail_nodes(1)
        reps = testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=2
        )
        parts = testbed.shard_router.partition(report.failed_chunks)
        target = max(range(2), key=lambda s: (len(parts[s]), -s))
        testbed.inject_coordinator_crash(crash_at, shard=target)
        testbed.run_until(lambda: reps[target].crashed, step=0.01, limit=1000.0)
        return testbed, report, reps, parts, target

    def test_sibling_shard_never_stops(self):
        testbed, report, reps, parts, target = self._crash_one_shard()
        sibling = 1 - target
        assert not reps[sibling].crashed
        # Only the dead shard is fenced; the sibling's epoch still holds.
        state = testbed.journal.state
        assert state.fenced_of(target) and not state.fenced_of(sibling)
        replacement = testbed.recover_repairer(shard=target)
        testbed.run_until(all_done(testbed), limit=5000.0)
        # The sibling finished its own partition, untouched by recovery.
        assert set(reps[sibling].completed) == set(parts[sibling])
        assert state.epoch_of(sibling) == 1
        assert state.epoch_of(target) == 2  # fenced, then restarted
        repaired = set(reps[target].completed) | set(
            replacement.completed
        ) | set(reps[sibling].completed)
        assert repaired == set(report.failed_chunks)
        assert not set(reps[target].completed) & set(replacement.completed)

    def test_recovery_plan_is_scoped_to_the_dead_shard(self):
        testbed, report, reps, parts, target = self._crash_one_shard()
        replacement = testbed.recover_repairer(shard=target)
        plan = replacement.recovery
        assert plan.shard == target
        mine = set(parts[target])
        for bucket in (plan.completed, plan.requeue, plan.blocked, plan.lost):
            assert set(bucket) <= mine
        testbed.run_until(all_done(testbed), limit=5000.0)

    def test_blast_radius_is_recorded_and_partial(self):
        testbed, report, reps, parts, target = self._crash_one_shard()
        (blast,) = testbed.crash_blasts
        assert blast["shard"] == target
        assert 0 < blast["stalled"] <= blast["open"]
        assert 0.0 < blast["blast"] < 1.0
        assert blast["stalled"] <= len(parts[target])
        testbed.recover_repairer(shard=target)
        testbed.run_until(all_done(testbed), limit=5000.0)

    def test_whole_plane_crash_still_fells_every_shard(self):
        testbed = make_testbed(0)
        report = testbed.fail_nodes(1)
        reps = testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=2
        )
        testbed.inject_coordinator_crash(0.05)  # no shard: the whole plane
        testbed.run_until(
            lambda: all(r.crashed for r in reps), step=0.01, limit=1000.0
        )
        (blast,) = testbed.crash_blasts
        assert blast["shard"] is None and blast["blast"] == 1.0
        while any(getattr(r, "crashed", False) for r in testbed.repairers):
            testbed.recover_repairer()
        testbed.run_until(all_done(testbed), limit=5000.0)
        completed = set()
        for repairer in reps + testbed.repairers:
            completed |= set(repairer.completed)
        assert completed == set(report.failed_chunks)


class TestPerShardCrashClock:
    """Crash instants are kept per shard, so overlapping failovers each
    measure their own MTTR (the scalar-clock regression ISSUE 9 fixes)."""

    def test_staggered_crashes_keep_distinct_instants(self):
        testbed = make_testbed(0)
        report = testbed.fail_nodes(1)
        reps = testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=2
        )
        testbed.inject_coordinator_crash(0.05, shard=0)
        testbed.inject_coordinator_crash(0.11, shard=1)
        testbed.run_until(
            lambda: all(r.crashed for r in reps), step=0.01, limit=1000.0
        )
        times = testbed._coordinator_crash_times
        assert set(times) == {0, 1}
        assert times[0] == pytest.approx(0.05)
        assert times[1] == pytest.approx(0.11)

    def test_each_recovery_measures_its_own_latency(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            testbed = make_testbed(0)
            report = testbed.fail_nodes(1)
            reps = testbed.start_sharded_repair(
                "ChameleonEC", report.failed_chunks, shards=2
            )
            testbed.inject_coordinator_crash(0.05, shard=0)
            testbed.inject_coordinator_crash(0.11, shard=1)
            testbed.run_until(
                lambda: all(r.crashed for r in reps), step=0.01, limit=1000.0
            )
            sim = testbed.cluster.sim
            sim.run(until=0.2)
            testbed.recover_repairer(shard=0)  # 0.15 s after its crash
            sim.run(until=0.31)
            testbed.recover_repairer(shard=1)  # 0.20 s after its crash
            latency = registry.histogram("journal.recovery.latency_s")
            assert latency.count == 2
            assert latency.min == pytest.approx(0.15)
            assert latency.max == pytest.approx(0.20)
            assert not testbed._coordinator_crash_times
            testbed.run_until(all_done(testbed), limit=5000.0)
        finally:
            set_registry(previous)


# -- the determinism battery ---------------------------------------------------

_CRASH_FREE_BYTES: dict = {}


def run_crash_free(seed, shards):
    """The reference run: same seed and shard count, no crash."""
    key = (seed, shards)
    if key not in _CRASH_FREE_BYTES:
        testbed = make_testbed(seed)
        report = testbed.fail_nodes(1)
        testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=shards
        )
        testbed.run_until(all_done(testbed), limit=5000.0)
        _CRASH_FREE_BYTES[key] = {
            chunk: testbed.chunk_store.get(chunk).tobytes()
            for chunk in report.failed_chunks
        }
    return _CRASH_FREE_BYTES[key]


def run_crash_recover(seed, crash_at, shards):
    """Crash the largest shard, recover it, finish; observable outcome."""
    testbed = make_testbed(seed)
    report = testbed.fail_nodes(1)
    reps = testbed.start_sharded_repair(
        "ChameleonEC", report.failed_chunks, shards=shards
    )
    parts = testbed.shard_router.partition(report.failed_chunks)
    target = max(range(shards), key=lambda s: (len(parts[s]), -s))
    testbed.inject_coordinator_crash(crash_at, shard=target)
    testbed.run_until(lambda: reps[target].crashed, step=0.01, limit=1000.0)
    replacement = testbed.recover_repairer(shard=target)
    testbed.run_until(all_done(testbed), limit=5000.0)
    incarnations = reps + [replacement]
    return {
        "failed": list(report.failed_chunks),
        "orders": [list(r.completed) for r in incarnations],
        "requeue": list(replacement.recovery.requeue),
        "records": [
            (r.kind, r.chunk, r.shard, r.at) for r in testbed.journal.records
        ],
        "payloads": {
            chunk: testbed.chunk_store.get(chunk).tobytes()
            for chunk in report.failed_chunks
        },
        "lost": [c for r in incarnations for c in r.lost],
        "finish": testbed.cluster.sim.now,
    }


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("crash_at", CRASH_TIMES)
def test_sharded_failover_is_deterministic_across_reruns(crash_at, shards):
    """Equal seed + crash time + shard count => identical runs."""
    for seed in SEEDS:
        first = run_crash_recover(seed, crash_at, shards)
        second = run_crash_recover(seed, crash_at, shards)
        assert first == second, (seed, crash_at, shards)


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("crash_at", CRASH_TIMES)
def test_recovered_bytes_match_the_crash_free_run(crash_at, shards):
    """A shard failover changes timing, never bytes: every chunk is
    repaired exactly once, to the same reconstruction the crash-free
    N-shard run produces."""
    for seed in SEEDS:
        outcome = run_crash_recover(seed, crash_at, shards)
        assert not outcome["lost"], (seed, crash_at, shards)
        repaired = [c for order in outcome["orders"] for c in order]
        assert len(repaired) == len(set(repaired)), (seed, crash_at, shards)
        assert set(repaired) == set(outcome["failed"]), (seed, crash_at, shards)
        reference = run_crash_free(seed, shards)
        assert outcome["payloads"] == reference, (seed, crash_at, shards)
