"""Property-based tests of the simulator core (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Flow,
    FlowScheduler,
    Resource,
    Simulator,
    Transfer,
    TransferManager,
    allocate_rates,
)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_allocation_is_feasible_and_work_conserving(seed):
    """Max-min allocation never overloads a resource, and every flow is
    limited by at least one saturated resource (work conservation)."""
    rng = np.random.default_rng(seed)
    resources = [Resource(f"r{i}", float(rng.integers(10, 1000))) for i in range(6)]
    flows = []
    for i in range(int(rng.integers(1, 12))):
        count = int(rng.integers(1, 4))
        chosen = rng.choice(len(resources), size=count, replace=False)
        flows.append(Flow(f"f{i}", 1000, tuple(resources[j] for j in chosen)))
    allocate_rates(flows)

    usage = {r.name: 0.0 for r in resources}
    for flow in flows:
        assert flow.rate >= 0
        for res in flow.resources:
            usage[res.name] += flow.rate
    for res in resources:
        assert usage[res.name] <= res.capacity * (1 + 1e-9)
    # Work conservation: each flow crosses a resource that is (nearly)
    # fully used, otherwise its rate could be raised.
    for flow in flows:
        assert any(
            usage[res.name] >= res.capacity * (1 - 1e-6) for res in flow.resources
        )


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_allocation_max_min_fairness(seed):
    """No flow can gain rate without hurting an equal-or-poorer flow:
    equivalently, two flows sharing a bottleneck get equal rates unless
    one is constrained elsewhere at a lower rate."""
    rng = np.random.default_rng(seed)
    resources = [Resource(f"r{i}", float(rng.integers(50, 500))) for i in range(4)]
    flows = []
    for i in range(int(rng.integers(2, 8))):
        count = int(rng.integers(1, 3))
        chosen = rng.choice(len(resources), size=count, replace=False)
        flows.append(Flow(f"f{i}", 1000, tuple(resources[j] for j in chosen)))
    allocate_rates(flows)
    usage = {r.name: sum(f.rate for f in flows if r in f.resources) for r in resources}
    for res in resources:
        sharers = [f for f in flows if res in f.resources]
        if not sharers or usage[res.name] < res.capacity * (1 - 1e-6):
            continue
        top = max(f.rate for f in sharers)
        for flow in sharers:
            if flow.rate < top - 1e-9:
                # The poorer flow must itself be bottlenecked elsewhere.
                assert any(
                    usage[r.name] >= r.capacity * (1 - 1e-6)
                    and flow.rate
                    <= max(x.rate for x in flows if r in x.resources) - 1e-12
                    or usage[r.name] >= r.capacity * (1 - 1e-6)
                    for r in flow.resources
                    if r is not res
                )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_bytes_conserved_through_completion(seed):
    """Every completed flow accounts exactly its size on every resource."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    sched = FlowScheduler(sim)
    resources = [Resource(f"r{i}", float(rng.integers(50, 200))) for i in range(3)]
    flows = []
    for i in range(int(rng.integers(1, 8))):
        res = resources[int(rng.integers(0, 3))]
        size = float(rng.integers(1, 500))
        flow = Flow(f"f{i}", size, (res,), tag=f"tag{i % 2}")
        flows.append(flow)
        delay = float(rng.uniform(0, 3))
        sim.schedule(delay, lambda f=flow: sched.start_flow(f))
    sim.run()
    assert all(f.done for f in flows)
    for res in resources:
        expected = sum(f.size for f in flows if res in f.resources)
        assert res.total_bytes == pytest.approx(expected, rel=1e-6, abs=1e-3)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_transfer_chains_complete_in_dependency_order(seed):
    """Random transfer DAGs always finish, respecting dependencies."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    sched = FlowScheduler(sim)
    mgr = TransferManager(sched)
    n = int(rng.integers(2, 8))
    transfers = []
    for i in range(n):
        res = Resource(f"r{i}", float(rng.integers(50, 200)))
        t = Transfer(f"t{i}", (res,), float(rng.integers(100, 400)), 50.0)
        # Depend on a random subset of earlier transfers (keeps it a DAG).
        for j in range(i):
            if rng.random() < 0.3:
                t.depends_on(transfers[j])
        transfers.append(t)
    for t in transfers:
        mgr.start(t)
    sim.run()
    for t in transfers:
        assert t.done
        for dep in t.deps:
            assert dep.completed_at <= t.completed_at + 1e-9


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=2000),
)
def test_transfer_slicing_exact(num_slices_hint, size):
    """Slice sizes always sum to the transfer size."""
    slice_size = max(1, size // num_slices_hint)
    t = Transfer("t", (), float(size), float(slice_size))
    assert sum(t.slice_sizes) == pytest.approx(float(size))
    assert t.num_slices >= 1
