"""End-to-end coordinator crash & failover through the Testbed facade.

The acceptance battery of the durable control plane: a seeded
:class:`~repro.faults.CoordinatorCrash` mid-repair, then
:meth:`Testbed.recover_repairer` replaying the journal — every chunk
repaired exactly once, byte-exact, no orphaned REPAIR_TAG flows and no
leaked progress-tracker state.
"""

import pytest

from repro.api import Testbed
from repro.errors import ReproError
from repro.metrics.linkstats import REPAIR_TAG


def make_testbed(seed=7, **journal_kwargs):
    return (
        Testbed.builder()
        .scaled(0.05)
        .with_options(
            num_nodes=12, num_clients=2, code="RS(4,2)",
            chunk_mb=16.0, num_chunks=12,
        )
        .with_seed(seed)
        .with_integrity()
        .with_journal(**journal_kwargs)
        .build()
    )


def crash_and_recover(testbed, crash_at, *, algorithm="ChameleonEC", step=0.01):
    """Fail a node, repair, crash the coordinator, recover; return both."""
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer(algorithm)
    repairer.repair(report.failed_chunks)
    testbed.inject_coordinator_crash(crash_at)
    testbed.run_until(lambda: repairer.crashed, step=step, limit=1000.0)
    replacement = testbed.recover_repairer()
    testbed.run_until(lambda: replacement.done, limit=5000.0)
    return report, repairer, replacement


class TestCrashTeardown:
    def test_crash_cancels_all_repair_flows(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.inject_coordinator_crash(0.05)
        testbed.run_until(lambda: repairer.crashed, step=0.01, limit=100.0)
        assert testbed.cluster.transfers.live_transfers(tag=REPAIR_TAG) == []
        assert not repairer.in_flight and not repairer.pending
        assert not repairer.tracker.tasks

    def test_crashed_coordinator_is_inert(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.inject_coordinator_crash(0.05)
        testbed.run_until(lambda: repairer.crashed, step=0.01, limit=100.0)
        completed = len(repairer.completed)
        # Pending timers (phase ends, watchdogs, retries) must all no-op.
        testbed.cluster.sim.run(until=testbed.cluster.sim.now + 100.0)
        assert len(repairer.completed) == completed
        assert not repairer.done  # a dead coordinator never reports success
        assert repairer.add_chunks(report.failed_chunks) == []

    def test_crash_fences_the_journal(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.inject_coordinator_crash(0.05)
        testbed.run_until(lambda: repairer.crashed, step=0.01, limit=100.0)
        assert testbed.journal.state.fenced


class TestExactlyOnceRecovery:
    @pytest.mark.parametrize("algorithm", ["ChameleonEC", "CR", "PPR"])
    def test_every_chunk_repaired_exactly_once(self, algorithm):
        testbed = make_testbed()
        report, old, new = crash_and_recover(testbed, 0.08, algorithm=algorithm)
        repaired = set(old.completed) | set(new.completed)
        assert repaired == set(report.failed_chunks)
        assert not set(old.completed) & set(new.completed)  # no double repair
        assert not new.lost and not old.lost

    def test_reconstructions_are_byte_exact(self):
        testbed = make_testbed()
        report, _, _ = crash_and_recover(testbed, 0.08)
        for chunk in report.failed_chunks:
            assert testbed.chunk_store.verify(chunk), chunk

    def test_no_orphaned_flows_or_tracker_state_after_recovery(self):
        testbed = make_testbed()
        _, old, new = crash_and_recover(testbed, 0.08)
        assert testbed.cluster.transfers.live_transfers(tag=REPAIR_TAG) == []
        for repairer in (old, new):
            tracker = getattr(repairer, "tracker", None)
            if tracker is not None:
                assert all(
                    t.transfer.done or t.transfer.cancelled
                    for t in tracker.tasks
                )

    def test_committed_chunks_are_never_reexecuted(self):
        testbed = make_testbed()
        report, old, new = crash_and_recover(testbed, 0.15)
        plan = new.recovery
        assert set(plan.completed) == set(old.completed)
        assert set(plan.requeue) == set(report.failed_chunks) - set(old.completed)
        assert set(new.completed) == set(plan.requeue)

    def test_crash_after_completion_recovers_to_noop(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.run_until(lambda: repairer.done, limit=5000.0)
        testbed.inject_coordinator_crash(1.0)
        testbed.run_until(lambda: repairer.crashed, limit=1000.0)
        replacement = testbed.recover_repairer()
        assert replacement.recovery.summary()["requeue"] == 0
        assert set(replacement.recovery.completed) == set(report.failed_chunks)
        assert replacement.done

    def test_auto_recovery_via_recover_after(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.inject_coordinator_crash(0.08, recover_after=0.5)
        testbed.run_until(
            lambda: len(testbed.repairers) == 1
            and testbed.repairers[0] is not repairer
            and testbed.repairers[0].done,
            step=0.05,
            limit=5000.0,
        )
        new = testbed.repairers[0]
        assert set(repairer.completed) | set(new.completed) == set(
            report.failed_chunks
        )
        assert not set(repairer.completed) & set(new.completed)

    def test_recovery_works_with_checkpointed_journal(self):
        testbed = make_testbed(checkpoint_interval=5)
        report, old, new = crash_and_recover(testbed, 0.08)
        assert set(old.completed) | set(new.completed) == set(report.failed_chunks)
        assert testbed.journal.compacted_records > 0


class TestRecoveryGuards:
    def test_recover_without_journal_raises(self):
        testbed = (
            Testbed.builder().scaled(0.05)
            .with_options(num_nodes=10, num_clients=0, code="RS(4,2)",
                          chunk_mb=8.0, num_chunks=4)
            .build()
        )
        with pytest.raises(ReproError, match="journal"):
            testbed.recover_repairer()

    def test_crash_injection_without_journal_raises(self):
        testbed = (
            Testbed.builder().scaled(0.05)
            .with_options(num_nodes=10, num_clients=0, code="RS(4,2)",
                          chunk_mb=8.0, num_chunks=4)
            .build()
        )
        with pytest.raises(ReproError, match="journal"):
            testbed.inject_coordinator_crash(1.0)

    def test_recover_without_crash_raises(self):
        testbed = make_testbed()
        with pytest.raises(ReproError, match="no crashed repairer"):
            testbed.recover_repairer()

    def test_replacement_keeps_algorithm_and_overrides(self):
        testbed = make_testbed()
        report = testbed.fail_nodes(1)
        repairer = testbed.make_repairer("ChameleonEC", t_phase=9.0)
        repairer.repair(report.failed_chunks)
        testbed.inject_coordinator_crash(0.05)
        testbed.run_until(lambda: repairer.crashed, step=0.01, limit=100.0)
        replacement = testbed.recover_repairer()
        assert type(replacement) is type(repairer)
        assert replacement.t_phase == 9.0
        assert replacement.journal is testbed.journal
