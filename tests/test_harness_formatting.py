"""Tests for harness result objects and table formatting edge cases."""

import pytest

from repro.experiments import RepairResult, format_table


class TestRepairResult:
    def make(self):
        return RepairResult(
            algorithm="ChameleonEC",
            trace="YCSB-A",
            repair_time=2.0,
            repaired_bytes=1e9,
            chunks=16,
            p99_latency=0.005,
            mean_latency=0.001,
            foreground_requests=1234,
        )

    def test_throughput(self):
        result = self.make()
        assert result.throughput == pytest.approx(5e8)
        assert result.throughput_mbs == pytest.approx(500.0)

    def test_zero_time_zero_throughput(self):
        result = self.make()
        result.repair_time = 0.0
        assert result.throughput == 0.0

    def test_to_dict_roundtrip(self):
        data = self.make().to_dict()
        assert data["algorithm"] == "ChameleonEC"
        assert data["throughput_mbs"] == pytest.approx(500.0)
        assert data["foreground_requests"] == 1234
        import json

        json.dumps(data)  # must be JSON-serialisable


class TestFormatTableEdgeCases:
    def test_ragged_rows_padded(self):
        table = format_table("T", ["a", "b", "c"], [[1], [1, 2, 3]])
        lines = table.splitlines()
        assert len(lines) == 5
        # Padded cells render as "-".
        assert "-" in lines[3]

    def test_long_row_not_truncated_error(self):
        # Extra columns beyond headers are preserved per-row width logic:
        # headers define the width list, so rows must not exceed them.
        table = format_table("T", ["a"], [[1]])
        assert "1" in table

    def test_mixed_types(self):
        table = format_table("T", ["x", "y"], [["label", 3.14159], [42, 1e-9]])
        assert "3.14" in table
        assert "1e-09" in table
        assert "42" in table
