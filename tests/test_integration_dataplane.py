"""End-to-end integrity: every plan the schedulers run decodes real bytes.

Generates actual stripe contents, runs full simulated repairs (baselines
and ChameleonEC, with and without stragglers), captures every repair
plan as executed — including plans mutated by re-tuning — and checks the
data flow reproduces the lost chunk bit-for-bit.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import LRCCode, RSCode
from repro.core import ChameleonRepair
from repro.monitor import BandwidthMonitor
from repro.repair import ConventionalRepair, ECPipe, PPR, RepairRunner, execute_plan
from repro.sim.flows import Flow

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(code, num_nodes=14, num_stripes=15, seed=0):
    cluster = Cluster(num_nodes=num_nodes, num_clients=1, link_bw=mbs(200))
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def stripe_payloads(code, store, seed=7, size=256):
    """Real bytes for every stripe in the store."""
    rng = np.random.default_rng(seed)
    payloads = {}
    for stripe_id in store.stripes:
        data = [rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.k)]
        payloads[stripe_id] = code.encode(data)
    return payloads


def verify_plans(plans, payloads):
    assert plans, "no plans were captured"
    for plan in plans:
        stripe = payloads[plan.chunk.stripe]
        chunk_data = {s.chunk_index: stripe[s.chunk_index] for s in plan.sources}
        repaired = execute_plan(plan, chunk_data)
        assert np.array_equal(repaired, stripe[plan.chunk.index]), (
            f"plan for {plan.chunk} decoded wrong bytes"
        )


@pytest.mark.parametrize("algo_cls", [ConventionalRepair, PPR, ECPipe])
@pytest.mark.parametrize("code", [RSCode(4, 2), LRCCode(4, 2, 2)])
def test_baseline_repairs_decode_exactly(algo_cls, code):
    cluster, store, injector = make_env(code)
    payloads = stripe_payloads(code, store)
    report = injector.fail_nodes([0])
    algorithm = algo_cls(seed=3)
    plans = []
    original = algorithm.make_plan

    def capturing(chunk, code_, inj):
        plan = original(chunk, code_, inj)
        plans.append(plan)
        return plan

    algorithm.make_plan = capturing
    runner = RepairRunner(
        cluster, store, injector, algorithm, chunk_size=CHUNK, slice_size=SLICE
    )
    runner.repair(report.failed_chunks)
    cluster.sim.run()
    assert runner.done
    verify_plans(plans, payloads)


def test_chameleon_repair_decodes_exactly():
    code = RSCode(4, 2)
    cluster, store, injector = make_env(code)
    payloads = stripe_payloads(code, store)
    monitor = BandwidthMonitor(cluster, window=1.0)
    monitor.start()
    report = injector.fail_nodes([0])
    coordinator = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=5.0,
    )
    plans = []
    original_launch = coordinator._launch

    def capturing_launch(dispatch):
        original_launch(dispatch)
        instance = coordinator.in_flight.get(dispatch.chunk)
        if instance is not None:
            plans.append(instance.plan)

    coordinator._launch = capturing_launch
    coordinator.repair(report.failed_chunks)
    while not coordinator.done and cluster.sim.now < 5000:
        cluster.sim.run(until=cluster.sim.now + 5.0)
    assert coordinator.done
    assert len(plans) >= len(report.failed_chunks)
    verify_plans(plans, payloads)


def test_chameleon_retuned_plans_decode_exactly():
    """Force stragglers so re-tuning mutates plans mid-flight, then verify."""
    code = RSCode(4, 2)
    cluster, store, injector = make_env(code, num_stripes=20, seed=5)
    payloads = stripe_payloads(code, store)
    monitor = BandwidthMonitor(cluster, window=0.5)
    monitor.start()
    report = injector.fail_nodes([0])
    coordinator = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=4.0,
        check_interval=0.2, straggler_threshold=0.2,
        enable_reordering=True, enable_retuning=True,
    )
    plans = []
    original_launch = coordinator._launch

    def capturing_launch(dispatch):
        original_launch(dispatch)
        instance = coordinator.in_flight.get(dispatch.chunk)
        if instance is not None:
            plans.append(instance.plan)

    coordinator._launch = capturing_launch
    coordinator.repair(report.failed_chunks)
    # Saturate a helper's uplink to provoke straggler handling.
    hog_node = cluster.node(1)
    hog = Flow("hog", mbs(200) * 60, (hog_node.uplink,), tag="hog")
    cluster.sim.schedule(0.2, lambda: cluster.flows.start_flow(hog))
    while not coordinator.done and cluster.sim.now < 5000:
        cluster.sim.run(until=cluster.sim.now + 2.0)
    assert coordinator.done
    # The plans list holds final (post-mutation) parent maps: re-tuning
    # mutates RepairPlan in place, so verifying now covers redirected
    # plans too.
    verify_plans(plans, payloads)
    # Metadata consistency after everything settled.
    for stripe in store.stripes.values():
        assert len(set(stripe.chunk_nodes)) == code.n
