"""Unit tests for the virtual-time tracer (repro.obs.tracer)."""

from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from repro.sim import Simulator


class TestSpans:
    def test_span_follows_virtual_clock(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.bind_clock(sim)
        span = tracer.span("work", track="lane")
        sim.schedule(3.5, lambda: span.finish())
        sim.run()
        assert span.start == 0.0
        assert span.end == 3.5
        assert span.duration == 3.5

    def test_nested_spans_record_independent_intervals(self):
        sim = Simulator()
        tracer = Tracer()
        tracer.bind_clock(sim)
        outer = tracer.span("outer")
        sim.schedule(1.0, lambda: tracer.span("inner").finish())
        sim.schedule(4.0, lambda: outer.finish())
        sim.run()
        inner = tracer.spans_named("inner")[0]
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_context_manager_closes_span(self):
        tracer = Tracer(clock=lambda: 2.0)
        with tracer.span("sync", key="v") as span:
            span.set(extra=1)
        assert span.end == 2.0
        assert span.args == {"key": "v", "extra": 1}

    def test_finish_is_idempotent(self):
        clock = {"t": 0.0}
        tracer = Tracer(clock=lambda: clock["t"])
        span = tracer.span("s")
        clock["t"] = 1.0
        span.finish(status="done")
        clock["t"] = 9.0
        span.finish(status="late")
        assert span.end == 1.0  # first close wins
        assert span.args["status"] == "late"  # but args still update

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        assert tracer.span("open").duration == 0.0

    def test_instants_and_counters_timestamped(self):
        clock = {"t": 1.0}
        tracer = Tracer(clock=lambda: clock["t"])
        tracer.instant("decide", track="sched", chunk="c0")
        clock["t"] = 2.0
        tracer.counter("bw", 42.0, track="n0.up")
        assert tracer.instants[0].ts == 1.0
        assert tracer.instants[0].args == {"chunk": "c0"}
        assert tracer.counters[0].ts == 2.0
        assert tracer.counters[0].value == 42.0

    def test_instants_named_sorted_by_time(self):
        clock = {"t": 5.0}
        tracer = Tracer(clock=lambda: clock["t"])
        tracer.instant("b")
        clock["t"] = 1.0
        tracer.instant("a")
        events = tracer.instants_named("a", "b")
        assert [e.name for e in events] == ["a", "b"]
        assert [e.ts for e in events] == [1.0, 5.0]


class TestClockRebinding:
    def test_rebinding_offsets_past_high_water(self):
        tracer = Tracer()
        first = Simulator()
        tracer.bind_clock(first)
        first.schedule(10.0, lambda: tracer.instant("end-of-run-1"))
        first.run()
        second = Simulator()  # fresh sim restarts at t=0
        tracer.bind_clock(second)
        second.schedule(2.0, lambda: tracer.instant("in-run-2"))
        second.run()
        ts1 = tracer.instants_named("end-of-run-1")[0].ts
        ts2 = tracer.instants_named("in-run-2")[0].ts
        assert ts1 == 10.0
        assert ts2 == 12.0  # sequential, not overlapping

    def test_high_water_tracks_largest_timestamp(self):
        clock = {"t": 0.0}
        tracer = Tracer(clock=lambda: clock["t"])
        clock["t"] = 7.0
        tracer.instant("x")
        assert tracer.high_water == 7.0


class TestNullTracer:
    def test_disabled_and_inert(self):
        null = NullTracer()
        assert null.enabled is False
        assert null.now() == 0.0
        assert null.span("s", anything=1) is NULL_SPAN
        null.instant("i")
        null.counter("c", 1.0)
        assert null.spans == ()
        assert null.instants == ()
        assert null.counters == ()

    def test_null_span_is_reusable_context_manager(self):
        with NULL_SPAN as span:
            assert span.set(a=1) is NULL_SPAN
            assert span.finish() is NULL_SPAN
        assert NULL_SPAN.duration == 0.0

    def test_bind_clock_noop(self):
        NullTracer().bind_clock(Simulator())  # must not raise


class TestGlobalSlot:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_returns_previous_and_none_restores(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            assert set_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER
        assert previous is NULL_TRACER

    def test_use_tracer_restores_on_exit(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER
