"""Cross-code property tests: encode/decode/repair invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import ButterflyCode, LRCCode, RSCode
from repro.gf import vec_addmul


def apply_equation(eq, stripe):
    acc = np.zeros_like(stripe[0])
    for src, coeff in eq.coefficients.items():
        vec_addmul(acc, stripe[src], coeff)
    return acc


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_lrc_decode_roundtrip_random_erasures(seed):
    rng = np.random.default_rng(seed)
    l = int(rng.choice([2, 4]))
    k = int(l * rng.integers(2, 5))
    m = int(rng.integers(1, 3))
    code = LRCCode(k, l, m)
    data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(k)]
    stripe = code.encode(data)
    # Erase up to m chunks (always safely decodable for LRC).
    erased = set(
        int(x) for x in rng.choice(code.n, size=int(rng.integers(1, m + 1)), replace=False)
    )
    available = {i: stripe[i] for i in range(code.n) if i not in erased}
    decoded = code.decode(available)
    for i in range(code.n):
        assert np.array_equal(decoded[i], stripe[i])


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_repair_equation_matches_failed_chunk_all_codes(seed):
    rng = np.random.default_rng(seed)
    codes = [RSCode(4, 2), RSCode(6, 3), LRCCode(4, 2, 2), ButterflyCode()]
    code = codes[int(rng.integers(0, len(codes)))]
    data = [rng.integers(0, 256, 16, dtype=np.uint8) for _ in range(code.k)]
    stripe = code.encode(data)
    failed = int(rng.integers(0, code.n))
    eq = code.repair_equation(failed)
    if isinstance(code, ButterflyCode):
        # Butterfly equations are traffic accounting only; bytes go
        # through the sub-chunk repair routine.
        helpers = {i: stripe[i] for i in range(code.n) if i != failed}
        assert np.array_equal(code.repair_chunk(failed, helpers), stripe[failed])
    else:
        assert np.array_equal(apply_equation(eq, stripe), stripe[failed])


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_encode_is_deterministic_and_linear(seed):
    """Encoding is a linear map: encode(a ^ b) == encode(a) ^ encode(b)."""
    rng = np.random.default_rng(seed)
    code = RSCode(int(rng.integers(2, 7)), int(rng.integers(1, 4)))
    a = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(code.k)]
    b = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(code.k)]
    xor_data = [x ^ y for x, y in zip(a, b)]
    enc_a = code.encode(a)
    enc_b = code.encode(b)
    enc_xor = code.encode(xor_data)
    for i in range(code.n):
        assert np.array_equal(enc_xor[i], enc_a[i] ^ enc_b[i])


@pytest.mark.parametrize(
    "code",
    [RSCode(2, 1), RSCode(12, 4), LRCCode(12, 3, 2), LRCCode(6, 2, 1)],
    ids=lambda c: c.name,
)
def test_wide_and_narrow_parameters(code):
    rng = np.random.default_rng(5)
    data = [rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(code.k)]
    stripe = code.encode(data)
    assert len(stripe) == code.n
    # Single-failure repair works for every position.
    for failed in range(code.n):
        eq = code.repair_equation(failed)
        assert np.array_equal(apply_equation(eq, stripe), stripe[failed])


def test_validate_stripe_catches_any_single_corruption():
    rng = np.random.default_rng(6)
    code = RSCode(4, 2)
    stripe = code.encode([rng.integers(0, 256, 8, dtype=np.uint8) for _ in range(4)])
    assert code.validate_stripe(stripe)
    for i in range(code.n):
        corrupted = [c.copy() for c in stripe]
        corrupted[i][0] ^= 0x5A
        assert not code.validate_stripe(corrupted)
