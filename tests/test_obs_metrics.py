"""Unit tests for counters/gauges/streaming histograms (repro.obs.metrics)."""

import math
import random

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_registry,
    set_registry,
)


def exact_quantile(samples, q):
    """Reference order statistic: value at rank ceil(q * n)."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_invalid_growth(self):
        with pytest.raises(ReproError):
            Histogram("h", growth=1.0)

    def test_empty(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        h = Histogram("h")
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_mean_min_max_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0
        assert h.max == 9.0

    def test_zeros_counted_as_exact_zero(self):
        h = Histogram("h")
        for v in (0.0, 0.0, 0.0, 100.0):
            h.observe(v)
        assert h.p50 == 0.0
        assert h.quantile(1.0) == 100.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_quantiles_match_sorted_list_within_bucket_error(self, q):
        # Acceptance bound: geometric buckets with growth g put any
        # estimate within a factor sqrt(g) of the exact order statistic.
        rng = random.Random(7)
        h = Histogram("h", growth=1.05)
        samples = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        for v in samples:
            h.observe(v)
        exact = exact_quantile(samples, q)
        bound = math.sqrt(h.growth)
        assert exact / bound <= h.quantile(q) <= exact * bound

    def test_quantile_clamped_to_observed_extremes(self):
        h = Histogram("h", growth=2.0)  # coarse buckets magnify midpoints
        h.observe(5.0)
        assert h.quantile(0.0) == 5.0
        assert h.quantile(1.0) == 5.0

    def test_memory_stays_bounded(self):
        h = Histogram("h")
        for i in range(10_000):
            h.observe(1.0 + (i % 100) / 100.0)
        # Samples span [1, 2): at most log(2)/log(1.05) + 1 buckets.
        assert len(h._buckets) <= 16
        assert h.count == 10_000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert list(snap) == sorted(snap)

    def test_iteration(self):
        reg = MetricsRegistry()
        reg.counter("a")
        assert [m.name for m in reg] == ["a"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullMetricsRegistry()
        assert null.enabled is False
        assert null.counter("c") is NULL_METRIC
        null.counter("c").inc()
        null.gauge("g").set(1)
        null.histogram("h").observe(2)
        assert null.histogram("h").quantile(0.5) == 0.0
        assert null.snapshot() == {}
        assert list(null) == []

    def test_global_slot_roundtrip(self):
        assert get_registry() is NULL_REGISTRY
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            assert set_registry(None) is reg
        assert get_registry() is NULL_REGISTRY
        assert previous is NULL_REGISTRY


class TestHistogramEdgeCases:
    @pytest.mark.parametrize("growth", [1.01, 1.3, 2.0])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.999])
    def test_error_bound_holds_for_any_growth(self, growth, q):
        rng = random.Random(13)
        h = Histogram("h", growth=growth)
        samples = [rng.lognormvariate(0.0, 1.5) for _ in range(3000)]
        for v in samples:
            h.observe(v)
        exact = exact_quantile(samples, q)
        bound = math.sqrt(growth)
        assert exact / bound <= h.quantile(q) <= exact * bound

    def test_all_zero_stream(self):
        h = Histogram("h")
        for _ in range(100):
            h.observe(0.0)
        assert h.count == 100
        assert h.mean == 0.0
        assert h.min == 0.0 and h.max == 0.0
        for q in (0.0, 0.5, 0.999, 1.0):
            assert h.quantile(q) == 0.0

    def test_negative_stream_treated_as_zeros_with_exact_extremes(self):
        h = Histogram("h")
        for v in (-3.0, -1.0, -2.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == -3.0 and h.max == -1.0
        # Non-positive samples share the zero bucket; quantiles report
        # the exact tracked minimum rather than a fabricated midpoint.
        assert h.quantile(0.5) == -3.0
        assert h.total == -6.0

    def test_mixed_negative_and_positive(self):
        h = Histogram("h")
        for v in (-1.0, 0.0, 4.0, 8.0):
            h.observe(v)
        assert h.quantile(0.25) == -1.0  # the non-positive mass
        assert h.quantile(1.0) == pytest.approx(8.0, rel=math.sqrt(h.growth) - 1)

    @pytest.mark.parametrize("qs", [(0.1, 0.5), (0.5, 0.9), (0.9, 0.999)])
    def test_quantile_monotonicity(self, qs):
        rng = random.Random(29)
        h = Histogram("h")
        for _ in range(2000):
            h.observe(rng.expovariate(0.2))
        q1, q2 = qs
        assert h.quantile(q1) <= h.quantile(q2)

    def test_p90_p999_properties(self):
        h = Histogram("h")
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.p90 == pytest.approx(900.0, rel=math.sqrt(h.growth) - 1 + 0.01)
        assert h.p999 == pytest.approx(999.0, rel=math.sqrt(h.growth) - 1 + 0.01)
        assert h.p50 <= h.p90 <= h.p999


class TestHistogramMerge:
    def _fill(self, values, growth=1.05):
        h = Histogram("h", growth=growth)
        for v in values:
            h.observe(v)
        return h

    def test_merge_equals_observing_the_union(self):
        rng = random.Random(41)
        a_vals = [rng.expovariate(1.0) for _ in range(500)]
        b_vals = [0.0, -2.0] + [rng.lognormvariate(0, 1) for _ in range(500)]
        a, b = self._fill(a_vals), self._fill(b_vals)
        union = self._fill(a_vals + b_vals)
        a.merge(b)
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert a.min == union.min and a.max == union.max
        assert a._buckets == union._buckets
        assert a._zeros == union._zeros
        for q in (0.5, 0.9, 0.99):
            assert a.quantile(q) == union.quantile(q)

    def test_merge_is_associative(self):
        rng = random.Random(43)
        chunks = [[rng.expovariate(0.5) for _ in range(200)] for _ in range(3)]
        left = self._fill(chunks[0])
        left.merge(self._fill(chunks[1]))
        left.merge(self._fill(chunks[2]))
        mid = self._fill(chunks[1])
        mid.merge(self._fill(chunks[2]))
        right = self._fill(chunks[0])
        right.merge(mid)
        assert left._buckets == right._buckets
        assert left.count == right.count
        assert left.total == pytest.approx(right.total)
        assert left.min == right.min and left.max == right.max

    def test_merge_empty_is_identity(self):
        a = self._fill([1.0, 2.0])
        before = (a.count, a.total, a.min, a.max, dict(a._buckets))
        a.merge(Histogram("empty"))
        assert (a.count, a.total, a.min, a.max, dict(a._buckets)) == before
        empty = Histogram("e")
        empty.merge(self._fill([5.0]))
        assert empty.count == 1 and empty.min == 5.0

    def test_merge_rejects_growth_mismatch(self):
        a = Histogram("a", growth=1.05)
        b = Histogram("b", growth=1.1)
        with pytest.raises(ReproError, match="growth"):
            a.merge(b)

    def test_snapshot_reports_deep_tail_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        snap = reg.snapshot()["h"]
        assert {"p50", "p90", "p99", "p999"} <= set(snap)
        assert snap["p90"] <= snap["p99"] <= snap["p999"]

    def test_null_metric_has_merge_and_extremes(self):
        NULL_METRIC.merge(Histogram("h"))
        assert NULL_METRIC.min == 0.0
        assert NULL_METRIC.max == 0.0
        assert NULL_METRIC.p90 == 0.0
        assert NULL_METRIC.p999 == 0.0
