"""Unit tests for counters/gauges/streaming histograms (repro.obs.metrics)."""

import math
import random

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_registry,
    set_registry,
)


def exact_quantile(samples, q):
    """Reference order statistic: value at rank ceil(q * n)."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_decrease(self):
        with pytest.raises(ReproError):
            Counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_invalid_growth(self):
        with pytest.raises(ReproError):
            Histogram("h", growth=1.0)

    def test_empty(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        h = Histogram("h")
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_mean_min_max_exact(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 9.0):
            h.observe(v)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 1.0
        assert h.max == 9.0

    def test_zeros_counted_as_exact_zero(self):
        h = Histogram("h")
        for v in (0.0, 0.0, 0.0, 100.0):
            h.observe(v)
        assert h.p50 == 0.0
        assert h.quantile(1.0) == 100.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_quantiles_match_sorted_list_within_bucket_error(self, q):
        # Acceptance bound: geometric buckets with growth g put any
        # estimate within a factor sqrt(g) of the exact order statistic.
        rng = random.Random(7)
        h = Histogram("h", growth=1.05)
        samples = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        for v in samples:
            h.observe(v)
        exact = exact_quantile(samples, q)
        bound = math.sqrt(h.growth)
        assert exact / bound <= h.quantile(q) <= exact * bound

    def test_quantile_clamped_to_observed_extremes(self):
        h = Histogram("h", growth=2.0)  # coarse buckets magnify midpoints
        h.observe(5.0)
        assert h.quantile(0.0) == 5.0
        assert h.quantile(1.0) == 5.0

    def test_memory_stays_bounded(self):
        h = Histogram("h")
        for i in range(10_000):
            h.observe(1.0 + (i % 100) / 100.0)
        # Samples span [1, 2): at most log(2)/log(1.05) + 1 buckets.
        assert len(h._buckets) <= 16
        assert h.count == 10_000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ReproError):
            reg.gauge("x")

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert list(snap) == sorted(snap)

    def test_iteration(self):
        reg = MetricsRegistry()
        reg.counter("a")
        assert [m.name for m in reg] == ["a"]


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullMetricsRegistry()
        assert null.enabled is False
        assert null.counter("c") is NULL_METRIC
        null.counter("c").inc()
        null.gauge("g").set(1)
        null.histogram("h").observe(2)
        assert null.histogram("h").quantile(0.5) == 0.0
        assert null.snapshot() == {}
        assert list(null) == []

    def test_global_slot_roundtrip(self):
        assert get_registry() is NULL_REGISTRY
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            assert set_registry(None) is reg
        assert get_registry() is NULL_REGISTRY
        assert previous is NULL_REGISTRY
