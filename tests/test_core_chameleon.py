"""Integration tests for the ChameleonEC coordinator."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import LRCCode, RSCode
from repro.core import ChameleonRepair, ChameleonRepairIO
from repro.errors import SchedulingError
from repro.monitor import BandwidthMonitor

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(code=None, num_nodes=12, num_stripes=20, seed=0, link=mbs(100), **cluster_kw):
    code = code if code is not None else RSCode(4, 2)
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=link,
        disk_read_bw=cluster_kw.pop("disk_read_bw", mbs(1000)),
        disk_write_bw=cluster_kw.pop("disk_write_bw", mbs(1000)),
    )
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    monitor = BandwidthMonitor(cluster)
    monitor.start()
    return cluster, store, injector, monitor


def run_until_done(cluster, coordinator, step=10.0, limit=50_000.0):
    while not coordinator.done and cluster.sim.now < limit:
        cluster.sim.run(until=cluster.sim.now + step)
    return cluster.sim.now


def make_chameleon(cluster, store, injector, monitor, **kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("slice_size", SLICE)
    kw.setdefault("t_phase", 10.0)
    return ChameleonRepair(cluster, store, injector, monitor, **kw)


class TestBasicRepair:
    def test_full_node_repair_completes(self):
        cluster, store, injector, monitor = make_env()
        report = injector.fail_nodes([0])
        coord = make_chameleon(cluster, store, injector, monitor)
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        assert coord.done
        assert len(coord.completed) == len(report.failed_chunks)
        assert coord.meter.throughput > 0
        for chunk in report.failed_chunks:
            assert store.node_of(chunk) != 0

    def test_stripes_keep_spanning_distinct_nodes(self):
        cluster, store, injector, monitor = make_env()
        report = injector.fail_nodes([1])
        coord = make_chameleon(cluster, store, injector, monitor)
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        for stripe in store.stripes.values():
            assert len(set(stripe.chunk_nodes)) == store.code.n

    def test_empty_batch(self):
        cluster, store, injector, monitor = make_env()
        done = []
        coord = make_chameleon(cluster, store, injector, monitor)
        coord.on("all_done", lambda c: done.append(1))
        coord.repair([])
        assert coord.done and done == [1]

    def test_double_start_rejected(self):
        cluster, store, injector, monitor = make_env()
        coord = make_chameleon(cluster, store, injector, monitor)
        coord.repair([])
        with pytest.raises(SchedulingError):
            coord.repair([])

    def test_invalid_params(self):
        cluster, store, injector, monitor = make_env()
        with pytest.raises(SchedulingError):
            make_chameleon(cluster, store, injector, monitor, t_phase=0)
        with pytest.raises(SchedulingError):
            make_chameleon(
                cluster, store, injector, monitor, multi_node_policy="bogus"
            )


class TestPhases:
    def test_multiple_phases_used_for_large_batch(self):
        cluster, store, injector, monitor = make_env(num_stripes=60, link=mbs(25))
        report = injector.fail_nodes([0])
        coord = make_chameleon(cluster, store, injector, monitor, t_phase=2.0)
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        assert coord.done
        assert coord.phase_index > 1

    def test_oversized_first_chunk_still_admitted(self):
        # A chunk whose lone repair exceeds t_phase must not starve.
        cluster, store, injector, monitor = make_env(link=mbs(5))
        report = injector.fail_nodes([0])
        coord = make_chameleon(
            cluster, store, injector, monitor, t_phase=0.5, check_interval=0.25
        )
        coord.repair(report.failed_chunks[:2])
        run_until_done(cluster, coord)
        assert coord.done


class TestMultiNodePolicies:
    @pytest.mark.parametrize("policy", ["sequential", "priority", "fastest"])
    def test_two_node_failure_repairs(self, policy):
        cluster, store, injector, monitor = make_env(num_nodes=14, num_stripes=25)
        report = injector.fail_nodes([0, 1])
        coord = make_chameleon(
            cluster, store, injector, monitor, multi_node_policy=policy
        )
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        assert coord.done
        assert len(coord.completed) == len(report.failed_chunks)

    def test_priority_orders_doubly_failed_stripes_first(self):
        cluster, store, injector, monitor = make_env(num_nodes=14, num_stripes=30)
        report = injector.fail_nodes([0, 1])
        coord = make_chameleon(cluster, store, injector, monitor)
        from collections import Counter

        per_stripe = Counter(c.stripe for c in report.failed_chunks)
        ordered = coord._order_chunks(list(report.failed_chunks))
        if max(per_stripe.values()) > 1:
            first = ordered[0]
            assert per_stripe[first.stripe] == max(per_stripe.values())


class TestStragglerHandling:
    def _run_with_straggler(self, enable_reordering, enable_retuning, seed=5):
        cluster, store, injector, monitor = make_env(
            num_stripes=30, link=mbs(100), seed=seed
        )
        report = injector.fail_nodes([0])
        # Background hog: saturate one survivor's uplink mid-repair.
        from repro.sim.flows import Flow

        hog_node = cluster.node(1)
        hog = Flow("hog", mbs(100) * 200, (hog_node.uplink,), tag="hog")
        cluster.sim.schedule(1.0, lambda: cluster.flows.start_flow(hog))
        coord = make_chameleon(
            cluster,
            store,
            injector,
            monitor,
            t_phase=8.0,
            check_interval=0.5,
            straggler_threshold=0.5,
            enable_reordering=enable_reordering,
            enable_retuning=enable_retuning,
        )
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        return coord

    def test_retuning_triggers_and_completes(self):
        coord = self._run_with_straggler(enable_reordering=False, enable_retuning=True)
        assert coord.done

    def test_reordering_triggers_and_completes(self):
        coord = self._run_with_straggler(enable_reordering=True, enable_retuning=False)
        assert coord.done

    def test_both_mechanisms_together(self):
        coord = self._run_with_straggler(enable_reordering=True, enable_retuning=True)
        assert coord.done

    def test_etrp_only_mode(self):
        coord = self._run_with_straggler(enable_reordering=False, enable_retuning=False)
        assert coord.done
        assert coord.retunes == 0 and coord.reorders == 0


class TestVariants:
    def test_lrc_repair(self):
        code = LRCCode(4, 2, 2)
        cluster, store, injector, monitor = make_env(code=code, num_nodes=14)
        report = injector.fail_nodes([0])
        coord = make_chameleon(cluster, store, injector, monitor)
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        assert coord.done

    def test_io_variant(self):
        code = RSCode(4, 2)
        cluster = Cluster(
            num_nodes=12, num_clients=0, link_bw=mbs(1000),
            disk_read_bw=mbs(50), disk_write_bw=mbs(50),
        )
        store = place_stripes(code, 15, cluster.storage_ids, chunk_size=CHUNK, seed=2)
        injector = FailureInjector(cluster, store)
        monitor = BandwidthMonitor(cluster)
        monitor.start()
        report = injector.fail_nodes([0])
        coord = ChameleonRepairIO(
            cluster, store, injector, monitor,
            chunk_size=CHUNK, slice_size=SLICE, t_phase=10.0,
        )
        assert coord.name == "ChameleonEC-IO"
        coord.repair(report.failed_chunks)
        run_until_done(cluster, coord)
        assert coord.done
