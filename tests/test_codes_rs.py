"""Unit and property tests for Reed-Solomon codes."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import RSCode, make_code
from repro.errors import CodingError


def random_data(rng, k, size=64):
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(k)]


class TestEncode:
    def test_stripe_length(self):
        code = RSCode(4, 2)
        stripe = code.encode(random_data(np.random.default_rng(0), 4))
        assert len(stripe) == 6

    def test_systematic(self):
        rng = np.random.default_rng(1)
        data = random_data(rng, 4)
        stripe = RSCode(4, 2).encode(data)
        for original, encoded in zip(data, stripe[:4]):
            assert np.array_equal(original, encoded)

    def test_wrong_count_raises(self):
        with pytest.raises(CodingError):
            RSCode(4, 2).encode(random_data(np.random.default_rng(0), 3))

    def test_unequal_lengths_raise(self):
        chunks = [np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8)]
        with pytest.raises(CodingError):
            RSCode(2, 2).encode(chunks)

    def test_bytes_input_accepted(self):
        stripe = RSCode(2, 1).encode([b"\x01\x02", b"\x03\x04"])
        assert len(stripe) == 3

    def test_validate_stripe(self):
        rng = np.random.default_rng(2)
        code = RSCode(3, 2)
        stripe = code.encode(random_data(rng, 3))
        assert code.validate_stripe(stripe)
        stripe[4] = stripe[4] ^ 1
        assert not code.validate_stripe(stripe)


class TestDecode:
    @pytest.mark.parametrize("k,m", [(2, 2), (4, 2), (6, 3), (10, 4)])
    def test_decode_from_any_k_subset_small(self, k, m):
        rng = np.random.default_rng(k * 31 + m)
        code = RSCode(k, m)
        data = random_data(rng, k, size=32)
        stripe = code.encode(data)
        n = k + m
        subsets = list(itertools.combinations(range(n), k))
        if len(subsets) > 40:
            subsets = [subsets[i] for i in rng.choice(len(subsets), 40, replace=False)]
        for subset in subsets:
            decoded = code.decode({i: stripe[i] for i in subset})
            for i in range(n):
                assert np.array_equal(decoded[i], stripe[i])

    def test_too_few_chunks_raises(self):
        code = RSCode(4, 2)
        stripe = code.encode(random_data(np.random.default_rng(3), 4))
        with pytest.raises(CodingError):
            code.decode({0: stripe[0], 1: stripe[1], 2: stripe[2]})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_decode_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(2, 8))
        m = int(rng.integers(1, 5))
        code = RSCode(k, m)
        data = random_data(rng, k, size=16)
        stripe = code.encode(data)
        keep = rng.choice(k + m, size=k, replace=False)
        decoded = code.decode({int(i): stripe[int(i)] for i in keep})
        for i in range(k):
            assert np.array_equal(decoded[i], data[i])


class TestRepairEquation:
    def test_repair_uses_k_sources(self):
        code = RSCode(10, 4)
        eq = code.repair_equation(0)
        assert len(eq.coefficients) == 10
        assert eq.read_fraction == 1.0

    def test_repair_equation_reconstructs(self):
        rng = np.random.default_rng(5)
        code = RSCode(6, 3)
        stripe = code.encode(random_data(rng, 6))
        for failed in range(9):
            eq = code.repair_equation(failed)
            acc = np.zeros_like(stripe[0])
            for src, coeff in eq.coefficients.items():
                from repro.gf import vec_addmul

                vec_addmul(acc, stripe[src], coeff)
            assert np.array_equal(acc, stripe[failed])

    def test_repair_with_restricted_available(self):
        rng = np.random.default_rng(6)
        code = RSCode(4, 2)
        stripe = code.encode(random_data(rng, 4))
        available = {1, 2, 3, 4}  # chunk 5 also lost
        eq = code.repair_equation(0, available=available)
        assert set(eq.coefficients) <= available
        acc = np.zeros_like(stripe[0])
        from repro.gf import vec_addmul

        for src, coeff in eq.coefficients.items():
            vec_addmul(acc, stripe[src], coeff)
        assert np.array_equal(acc, stripe[0])

    def test_unrepairable_raises(self):
        code = RSCode(4, 2)
        with pytest.raises(CodingError):
            code.repair_equation(0, available={1, 2, 3})

    def test_out_of_range_raises(self):
        with pytest.raises(CodingError):
            RSCode(4, 2).repair_equation(6)

    def test_traffic_chunks(self):
        eq = RSCode(10, 4).repair_equation(3)
        assert eq.traffic_chunks == 10


class TestConstruction:
    def test_vandermonde_variant(self):
        rng = np.random.default_rng(9)
        code = RSCode(4, 2, matrix="vandermonde")
        data = random_data(rng, 4)
        stripe = code.encode(data)
        decoded = code.decode({2: stripe[2], 3: stripe[3], 4: stripe[4], 5: stripe[5]})
        assert np.array_equal(decoded[0], data[0])

    def test_unknown_matrix_raises(self):
        with pytest.raises(CodingError):
            RSCode(4, 2, matrix="bogus")

    def test_invalid_params_raise(self):
        with pytest.raises(CodingError):
            RSCode(0, 2)

    def test_make_code(self):
        code = make_code("RS(10, 4)")
        assert isinstance(code, RSCode)
        assert (code.k, code.m) == (10, 4)
        assert code.name == "RS(10,4)"

    def test_make_code_rejects_garbage(self):
        with pytest.raises(CodingError):
            make_code("XOR(3)")
