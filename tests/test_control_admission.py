"""Adaptive admission control: AIMD policy, controller, equivalence.

The contract under test is twofold: the controller must *act* (back
off scrub/repair intensity on hot windows, recover on calm ones,
respect the hysteresis band and the floor), and it must act
*invisibly* when its thresholds never trigger — a controller whose
high-water mark is unreachable leaves the simulation byte-identical
to a controller-free run (the determinism acceptance criterion).
"""

import pytest

from repro.api import Testbed, TestbedBuilder
from repro.control import AdmissionController, AIMDPolicy
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.metrics.latency import LatencyRecorder
from repro.obs.timeseries import TimeseriesRecorder
from repro.sim.engine import Simulator


class TestAIMDPolicy:
    def test_defaults_valid(self):
        policy = AIMDPolicy()
        assert policy.high_water > policy.low_water > 0

    @pytest.mark.parametrize("kwargs", [
        {"high_water": 0.0},
        {"low_water": 0.0},
        {"low_water": 2.5},              # above high_water: no band
        {"backoff": 0.0},
        {"backoff": 1.0},                # multiplying by 1 never backs off
        {"recover": 0.0},
        {"floor": 0.0},
        {"floor": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            AIMDPolicy(**kwargs)

    def test_backoff_is_multiplicative(self):
        policy = AIMDPolicy(high_water=2.0, backoff=0.5)
        assert policy.step(1.0, 3.0) == 0.5
        assert policy.step(0.5, 3.0) == 0.25

    def test_backoff_clamps_at_floor(self):
        policy = AIMDPolicy(backoff=0.5, floor=0.2)
        assert policy.step(0.25, 10.0) == 0.2
        assert policy.step(0.2, 10.0) == 0.2

    def test_hysteresis_band_holds(self):
        policy = AIMDPolicy(high_water=2.0, low_water=1.25)
        for inflation in (1.25, 1.5, 2.0):
            assert policy.step(0.5, inflation) == 0.5

    def test_recovery_is_additive_and_capped(self):
        policy = AIMDPolicy(low_water=1.25, recover=0.1)
        assert policy.step(0.5, 1.0) == pytest.approx(0.6)
        assert policy.step(0.95, 1.0) == 1.0
        assert policy.step(1.0, 1.0) == 1.0


class FakeScrubber:
    def __init__(self, rate=100.0):
        self.rate = rate
        self.calls = []

    def set_rate(self, rate):
        self.rate = rate
        self.calls.append(rate)


class FakeRunner:
    def __init__(self, concurrency=8):
        self.concurrency = concurrency
        self.crashed = False
        self.calls = []

    def set_concurrency(self, concurrency):
        self.concurrency = concurrency
        self.calls.append(concurrency)


class FakeCoordinator:
    """Chameleon-shaped actuator: ``max_inflight``, no ``concurrency``."""

    def __init__(self, max_inflight=8):
        self.max_inflight = max_inflight
        self.crashed = False
        self.calls = []

    def set_concurrency(self, concurrency):
        self.max_inflight = concurrency
        self.calls.append(concurrency)


def make_loop(*, window=1.0, baseline=0.010, **kwargs):
    """A recorder + controller pair over a synthetic foreground source."""
    sim = Simulator()
    recorder = TimeseriesRecorder(sim, window=window)
    lat = LatencyRecorder("foreground")
    recorder.track_latency(lat)
    recorder.start()
    controller = AdmissionController(
        recorder, baseline_p99=baseline, **kwargs
    )
    controller.start()
    return sim, recorder, lat, controller


def feed(sim, lat, value, *, at):
    """Schedule one latency sample strictly inside a window."""
    sim.schedule(at - sim.now, lambda: lat.record(value))


class TestControllerLifecycle:
    def test_baseline_must_be_positive_or_none(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        with pytest.raises(ReproError):
            AdmissionController(recorder, baseline_p99=0.0)
        AdmissionController(recorder, baseline_p99=None)

    def test_calibration_windows_validated(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        with pytest.raises(ReproError):
            AdmissionController(recorder, calibration_windows=0)

    def test_start_requires_started_recorder(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        controller = AdmissionController(recorder, baseline_p99=0.01)
        with pytest.raises(ReproError, match="started TimeseriesRecorder"):
            controller.start()

    def test_start_twice_rejected_stop_idempotent(self):
        _, _, _, controller = make_loop()
        assert controller.started
        with pytest.raises(ReproError):
            controller.start()
        controller.stop()
        controller.stop()
        assert not controller.started


class TestControlStep:
    def test_hot_windows_back_off_all_actuators(self):
        sim, _, lat, controller = make_loop()
        scrubber, runner, coord = FakeScrubber(100.0), FakeRunner(8), FakeCoordinator(8)
        controller.attach_scrubber(scrubber)
        controller.attach_repairer(runner)
        controller.attach_repairer(coord)
        # Inflation 5x > default high_water 2.0 in two consecutive windows.
        feed(sim, lat, 0.050, at=0.5)
        feed(sim, lat, 0.050, at=1.5)
        sim.run(until=2.0)
        assert controller.level == pytest.approx(0.25)
        assert controller.backoffs == 2
        assert controller.min_level == pytest.approx(0.25)
        assert scrubber.rate == pytest.approx(25.0)
        assert runner.concurrency == 2
        assert coord.max_inflight == 2

    def test_repair_concurrency_never_below_one(self):
        sim, _, lat, controller = make_loop(
            policy=AIMDPolicy(backoff=0.5, floor=0.01)
        )
        runner = FakeRunner(4)
        controller.attach_repairer(runner)
        for w in range(6):
            feed(sim, lat, 0.050, at=w + 0.5)
        sim.run(until=6.0)
        assert controller.level < 0.25
        assert runner.concurrency == 1

    def test_hysteresis_band_does_not_actuate(self):
        sim, _, lat, controller = make_loop()
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        feed(sim, lat, 0.015, at=0.5)  # inflation 1.5: inside the band
        sim.run(until=1.0)
        assert controller.level == 1.0
        assert scrubber.calls == []
        assert controller.backoffs == controller.recoveries == 0

    def test_empty_window_holds(self):
        sim, _, _, controller = make_loop()
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        sim.run(until=3.0)  # three windows, zero foreground samples
        assert controller.level == 1.0
        assert controller.windows_seen == 3
        assert scrubber.calls == []

    def test_calm_windows_recover_additively(self):
        sim, _, lat, controller = make_loop()
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        feed(sim, lat, 0.050, at=0.5)   # backoff: 1.0 -> 0.5
        for w in range(1, 6):
            feed(sim, lat, 0.010, at=w + 0.5)  # calm: +0.1 each
        sim.run(until=6.0)
        assert controller.level == pytest.approx(1.0)
        assert controller.backoffs == 1
        assert controller.recoveries == 5
        assert controller.min_level == pytest.approx(0.5)
        assert scrubber.rate == pytest.approx(100.0)

    def test_recovery_at_full_intensity_is_a_noop(self):
        sim, _, lat, controller = make_loop()
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        feed(sim, lat, 0.010, at=0.5)  # calm at level 1.0
        sim.run(until=1.0)
        assert controller.recoveries == 0
        assert scrubber.calls == []

    def test_auto_calibration_from_first_windows(self):
        sim, _, lat, controller = make_loop(
            baseline=None, calibration_windows=2
        )
        assert not controller.armed
        feed(sim, lat, 0.010, at=0.5)
        # Window two (1.0-2.0) is empty: it must not count toward
        # calibration, so the baseline lands at the mean of the samples.
        feed(sim, lat, 0.020, at=2.5)
        sim.run(until=3.0)
        assert controller.armed
        assert controller.baseline_p99 == pytest.approx(0.015)
        # Calibrated controller now acts: 0.060 is 4x the baseline.
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        feed(sim, lat, 0.060, at=3.5)
        sim.run(until=4.0)
        assert controller.backoffs == 1

    def test_crashed_repairer_is_skipped(self):
        sim, _, lat, controller = make_loop()
        runner = FakeRunner(8)
        controller.attach_repairer(runner)
        runner.crashed = True
        feed(sim, lat, 0.050, at=0.5)
        sim.run(until=1.0)
        assert controller.level == pytest.approx(0.5)
        assert runner.calls == []  # no knob-turning on a dead coordinator

    def test_attach_at_full_level_does_not_touch_actuators(self):
        _, _, _, controller = make_loop()
        scrubber, runner = FakeScrubber(100.0), FakeRunner(8)
        controller.attach_scrubber(scrubber)
        controller.attach_repairer(runner)
        assert scrubber.calls == []
        assert runner.calls == []

    def test_attach_after_backoff_applies_current_level(self):
        sim, _, lat, controller = make_loop()
        feed(sim, lat, 0.050, at=0.5)
        sim.run(until=1.0)
        assert controller.level == pytest.approx(0.5)
        scrubber = FakeScrubber(100.0)
        controller.attach_scrubber(scrubber)
        assert scrubber.rate == pytest.approx(50.0)


class TestPerActuatorPolicies:
    def test_repair_deadline_validated(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        with pytest.raises(ReproError):
            AdmissionController(
                recorder, baseline_p99=0.01, repair_deadline=0.0
            )

    def test_default_policies_stay_lockstep(self):
        sim, _, lat, controller = make_loop()
        feed(sim, lat, 0.050, at=0.5)
        feed(sim, lat, 0.050, at=1.5)
        feed(sim, lat, 0.010, at=2.5)
        sim.run(until=3.0)
        # One shared policy and no deadline: both actuator levels move
        # together, so ``level`` reads exactly like the scalar it was.
        assert controller.scrub_level == controller.repair_level
        assert controller.level == controller.scrub_level

    def test_split_policies_act_independently(self):
        sim, _, lat, controller = make_loop(
            scrub_policy=AIMDPolicy(backoff=0.25),
            repair_policy=AIMDPolicy(backoff=0.75),
        )
        scrubber, runner = FakeScrubber(100.0), FakeRunner(8)
        controller.attach_scrubber(scrubber)
        controller.attach_repairer(runner)
        feed(sim, lat, 0.050, at=0.5)
        sim.run(until=1.0)
        # Scrub is pure background (shed hard); repair has a deadline
        # story (shed gently). One hot window, two different responses.
        assert controller.scrub_level == pytest.approx(0.25)
        assert controller.repair_level == pytest.approx(0.75)
        assert controller.level == pytest.approx(0.25)
        assert controller.backoffs == 1
        assert scrubber.rate == pytest.approx(25.0)
        assert runner.concurrency == 6

    def test_exhausted_deadline_stops_repair_backoff(self):
        sim, _, lat, controller = make_loop(repair_deadline=2.0)
        feed(sim, lat, 0.050, at=0.5)
        feed(sim, lat, 0.050, at=1.5)
        sim.run(until=2.0)
        # Window one closes with full headroom (normal 0.5 backoff);
        # window two closes exactly at the deadline (zero headroom), so
        # repair is not sacrificed further while scrub keeps shedding.
        assert controller.scrub_level == pytest.approx(0.25)
        assert controller.repair_level == pytest.approx(0.5)
        assert controller.backoffs == 2

    def test_past_deadline_repair_never_backs_off(self):
        sim, _, lat, controller = make_loop(repair_deadline=0.5)
        runner = FakeRunner(8)
        controller.attach_repairer(runner)
        feed(sim, lat, 0.050, at=0.75)
        sim.run(until=1.0)
        # The deadline predates the first breach: headroom is zero and
        # repair holds at full intensity while scrub takes the cut.
        assert controller.repair_level == pytest.approx(1.0)
        assert controller.scrub_level == pytest.approx(0.5)
        assert runner.calls == []

    def test_tempered_repair_still_recovers(self):
        sim, _, lat, controller = make_loop(repair_deadline=2.0)
        feed(sim, lat, 0.050, at=0.5)
        feed(sim, lat, 0.050, at=1.5)
        feed(sim, lat, 0.010, at=2.5)
        feed(sim, lat, 0.010, at=3.5)
        sim.run(until=4.0)
        # Calm windows creep both levels back up by ``recover`` each.
        assert controller.repair_level == pytest.approx(0.7)
        assert controller.scrub_level == pytest.approx(0.45)
        assert controller.recoveries == 2


def _drive_scenario(config: ExperimentConfig, *, controller: bool):
    """The fixed scripted run from the timeseries equivalence test, with
    an (unreachable-threshold) admission controller optionally riding it."""
    testbed = Testbed.build(config)
    testbed.enable_timeseries(window=0.5)
    if controller:
        # A baseline three orders of magnitude above any real P99 keeps
        # inflation ~0 forever: the controller sees only calm windows at
        # level 1.0, where recovery is a no-op.
        testbed.enable_admission_control(baseline_p99=1e6, window=0.5)
    testbed.start_foreground()
    testbed.cluster.sim.run(until=1.0)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)
    testbed.run_until(lambda: repairer.done, step=0.5)
    if controller:
        testbed.controller.stop()
    testbed.timeseries.stop()
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=0.5)
    resources = {}
    for node in testbed.cluster.storage_nodes + testbed.cluster.clients:
        for res in node.all_resources():
            resources[res.name] = dict(res.bytes_by_tag)
    return {
        "finished_at": repairer.meter.finished_at,
        "repaired_bytes": repairer.meter.repaired_bytes,
        "latency_samples": list(testbed.latency.samples),
        "resources": resources,
        "latency_series": testbed.timeseries.to_dict(prefix="lat."),
        "bandwidth_series": testbed.timeseries.to_dict(prefix="bw."),
    }


class TestDeterminismEquivalence:
    def test_idle_controller_does_not_perturb_the_simulation(self):
        """The acceptance criterion: a controller whose thresholds never
        trigger leaves timing, latency samples, per-tag byte counters,
        and the recorded series byte-identical to a controller-free run."""
        config = ExperimentConfig.scaled(0.05, chunk_mb=16.0)
        with_ctl = _drive_scenario(config, controller=True)
        without = _drive_scenario(config, controller=False)
        assert with_ctl == without


class TestTestbedWiring:
    def test_enable_is_idempotent(self):
        testbed = Testbed.build(ExperimentConfig.scaled(0.05, chunk_mb=16.0))
        first = testbed.enable_admission_control(baseline_p99=0.01)
        second = testbed.enable_admission_control(baseline_p99=0.01)
        assert first is second is testbed.controller

    def test_builder_installs_controller(self):
        testbed = (TestbedBuilder()
                   .scaled(0.05)
                   .with_options(chunk_mb=16.0)
                   .with_timeseries(window=0.5)
                   .with_admission_control(baseline_p99=0.01)
                   .build())
        assert testbed.controller is not None
        assert testbed.controller.started
        # The recorder kept the builder's cadence; the controller follows.
        assert testbed.timeseries.window == 0.5

    def test_new_repairers_and_scrubber_attach_automatically(self):
        testbed = (TestbedBuilder()
                   .scaled(0.05)
                   .with_options(chunk_mb=16.0)
                   .with_integrity()
                   .with_admission_control(baseline_p99=0.01, window=0.5)
                   .build())
        controller = testbed.controller
        assert controller._scrubbers == [] and controller._repairers == []
        testbed.start_scrubber(rate_mbs=50.0)
        repairer = testbed.make_repairer("ChameleonEC")
        assert [s for s, _ in controller._scrubbers] == [testbed.scrubber]
        assert [r for r, _ in controller._repairers] == [repairer]
