"""Tests for the Fig. 2 reliability model."""

import math

import pytest

from repro.analysis import ReliabilityModel, loss_probability_curve
from repro.errors import ReproError


class TestReliabilityModel:
    def test_repair_duration(self):
        model = ReliabilityModel()
        # 96 TB at 100 MB/s.
        assert model.repair_duration(100e6) == pytest.approx(96e12 / 100e6)

    def test_failure_probability_monotone_in_duration(self):
        model = ReliabilityModel()
        assert model.failure_probability(10.0) < model.failure_probability(1e6)
        assert 0 <= model.failure_probability(1.0) < 1

    def test_loss_probability_decreases_with_throughput(self):
        model = ReliabilityModel(k=10, m=4)
        slow = model.data_loss_probability(50e6)
        fast = model.data_loss_probability(800e6)
        assert slow > fast > 0

    def test_more_parity_lowers_loss(self):
        weak = ReliabilityModel(k=10, m=2)
        strong = ReliabilityModel(k=10, m=4)
        assert strong.data_loss_probability(100e6) < weak.data_loss_probability(100e6)

    def test_limits(self):
        model = ReliabilityModel()
        # Instant repair: essentially no loss window.
        assert model.data_loss_probability(1e18) == pytest.approx(0.0, abs=1e-12)

    def test_mttdl_trend_inverse(self):
        model = ReliabilityModel()
        assert model.mttdl_trend(800e6) > model.mttdl_trend(50e6)

    def test_invalid_params(self):
        with pytest.raises(ReproError):
            ReliabilityModel(k=0)
        with pytest.raises(ReproError):
            ReliabilityModel(node_capacity_bytes=0)
        with pytest.raises(ReproError):
            ReliabilityModel().repair_duration(0)

    def test_binomial_identity(self):
        # With f -> probabilities, the survive terms must sum below 1.
        model = ReliabilityModel(k=4, m=2)
        p = model.data_loss_probability(10e6)
        assert 0 < p < 1

    def test_matches_closed_form_small_case(self):
        # k=1, m=1: loss iff the single peer fails during repair.
        model = ReliabilityModel(k=1, m=1)
        tau = model.repair_duration(100e6)
        f = 1 - math.exp(-tau / model.node_lifetime_seconds)
        assert model.data_loss_probability(100e6) == pytest.approx(f)


class TestCurve:
    def test_curve_shape(self):
        curve = loss_probability_curve([50, 100, 200])
        assert len(curve) == 3
        probs = [p for _, p in curve]
        assert probs[0] > probs[1] > probs[2]

    def test_custom_model(self):
        curve = loss_probability_curve([100], ReliabilityModel(k=6, m=3))
        assert curve[0][0] == 100
