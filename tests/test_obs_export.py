"""Tests for Chrome-trace export and the plain-text run report."""

import json
from collections import defaultdict

from repro.obs.export import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import build_report
from repro.obs.tracer import Tracer


def make_tracer():
    clock = {"t": 0.0}
    tracer = Tracer(clock=lambda: clock["t"])
    return tracer, clock


def sample_tracer():
    tracer, clock = make_tracer()
    flow = tracer.span("flow", track=("n0.up", "n1.down"), size=1000)
    sched = tracer.span("phase", track="scheduler", index=0)
    clock["t"] = 1.0
    tracer.instant("plan.chosen", track="scheduler", chunk="s0/c1")
    tracer.counter("bw.foreground", 125.0, track="n0.up")
    clock["t"] = 2.5
    flow.finish()
    sched.finish(admitted=3)
    return tracer


class TestChromeExport:
    def test_document_round_trips_through_json(self, tmp_path):
        tracer = sample_tracer()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == count
        assert document == chrome_trace(tracer)

    def test_timestamps_monotone_per_track(self):
        events = chrome_trace_events(sample_tracer())
        by_tid = defaultdict(list)
        for e in events:
            if e["ph"] != "M":
                by_tid[e["tid"]].append(e["ts"])
        assert by_tid  # at least one real track
        for series in by_tid.values():
            assert series == sorted(series)

    def test_multi_track_span_emitted_once_per_track(self):
        events = chrome_trace_events(sample_tracer())
        flows = [e for e in events if e["name"] == "flow"]
        assert {e["cat"] for e in flows} == {"n0.up", "n1.down"}
        assert all(e["ph"] == "X" for e in flows)
        assert all(e["dur"] == 2_500_000 for e in flows)  # 2.5 s in us
        # The two copies must land on different rows (threads).
        assert len({e["tid"] for e in flows}) == 2

    def test_track_metadata_names_every_thread(self):
        events = chrome_trace_events(sample_tracer())
        named = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(named) == {"n0.up", "n1.down", "scheduler"}
        used_tids = {e["tid"] for e in events if e["ph"] != "M"}
        assert used_tids <= set(named.values())
        # Logical lanes sort ahead of per-node resource rows.
        assert named["scheduler"] < named["n0.up"]

    def test_instants_and_counters_shapes(self):
        events = chrome_trace_events(sample_tracer())
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["s"] == "t"
        assert instant["args"] == {"chunk": "s0/c1"}
        (counter,) = [e for e in events if e["ph"] == "C"]
        assert counter["args"] == {"value": 125.0}

    def test_open_span_closed_at_high_water(self):
        tracer, clock = make_tracer()
        tracer.span("open", track="lane")
        clock["t"] = 4.0
        tracer.instant("later", track="lane")
        (span,) = [e for e in chrome_trace_events(tracer) if e["name"] == "open"]
        assert span["dur"] == 4_000_000

    def test_non_json_args_coerced(self):
        tracer, _ = make_tracer()
        class Opaque:
            def __str__(self):
                return "opaque"
        tracer.instant(
            "e", track="t",
            obj=Opaque(), items=[1, Opaque()], table={1: 2.5},
        )
        events = chrome_trace_events(tracer)
        args = [e for e in events if e["name"] == "e"][0]["args"]
        json.dumps(args)  # must not raise
        assert args == {"obj": "opaque", "items": [1, "opaque"], "table": {"1": 2.5}}

    def test_empty_tracer_still_valid(self):
        document = chrome_trace(Tracer())
        json.dumps(document)
        assert [e["ph"] for e in document["traceEvents"]] == ["M"]


class TestBuildReport:
    def test_empty(self):
        assert "(no observations recorded)" in build_report(Tracer())

    def test_sections_rendered(self):
        tracer, clock = make_tracer()
        run = tracer.span("experiment.run", track="harness",
                          algorithm="ChameleonEC", trace="YCSB-A")
        phase = tracer.span("phase", track="scheduler", index=0)
        task = tracer.span("repair.task", track="repair",
                           chunk="s0/c1", destination=5)
        tracer.instant("plan.chosen", track="scheduler", chunk="s0/c1")
        clock["t"] = 1.5
        tracer.instant("straggler.detected", track="scheduler", task="dl")
        task.finish()
        phase.finish(admitted=2, completed=2, retunes=1, reorders=0)
        run.finish(repair_time=1.5, chunks=2)
        registry = MetricsRegistry()
        registry.counter("chameleon.retunes").inc()
        registry.histogram("repair.duration_s").observe(1.5)

        report = build_report(tracer, registry)
        assert "Runs" in report
        assert "ChameleonEC" in report
        assert "Per-phase breakdown" in report
        assert "Slowest repair tasks" in report
        assert "s0/c1" in report
        assert "Scheduler decisions" in report
        assert "straggler.detected" in report
        assert "Metrics" in report
        assert "chameleon.retunes" in report

    def test_decision_log_truncated(self):
        tracer, _ = make_tracer()
        for i in range(50):
            tracer.instant("plan.chosen", track="scheduler", chunk=str(i))
        report = build_report(tracer, max_decisions=10)
        assert "Scheduler decisions (10 of 50)" in report

    def test_open_tasks_excluded_from_slowest(self):
        tracer, _ = make_tracer()
        tracer.span("repair.task", track="repair", chunk="open")
        assert "Slowest repair tasks" not in build_report(tracer)
