"""Network partitions: cut semantics, stall/heal, seeded wave generation."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.faults import FaultTimeline, NetworkPartition
from repro.metrics.linkstats import REPAIR_TAG

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(num_nodes=12):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), 20, cluster.storage_ids,
                          chunk_size=CHUNK, seed=0)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def make_transfer(cluster, src=1, dst=2, size=200 * MB):
    transfer = cluster.make_transfer(
        src, dst, size, SLICE, tag=REPAIR_TAG, read_disk=True,
        name=f"rep-{src}->{dst}",
    )
    cluster.transfers.start(transfer)
    return transfer


class TestTopologyCut:
    def test_reachability_follows_partitions(self):
        cluster, _, _ = make_env()
        assert cluster.reachable(1, 2)
        pid = cluster.apply_partition([[1, 3]])
        assert not cluster.reachable(1, 2)
        assert cluster.reachable(1, 3)  # same side of the cut
        assert cluster.reachable(2, 4)  # both in implicit group 0
        cluster.heal_partition(pid)
        assert cluster.reachable(1, 2)

    def test_cross_cut_transfer_stalls_and_resumes(self):
        cluster, _, _ = make_env()
        crossing = make_transfer(cluster, src=1, dst=2)
        within = make_transfer(cluster, src=3, dst=4)
        cluster.sim.run(until=0.2)
        pid = cluster.apply_partition([[1]])
        assert crossing.stalled
        assert not within.stalled
        # The cut does not make progress for the stalled flow.
        cluster.sim.run(until=5.0)
        assert crossing.active
        cluster.heal_partition(pid)
        assert not crossing.stalled
        cluster.sim.run()
        assert not crossing.active and not within.active

    def test_overlapping_partition_keeps_transfer_stalled(self):
        cluster, _, _ = make_env()
        transfer = make_transfer(cluster, src=1, dst=2)
        cluster.sim.run(until=0.2)
        first = cluster.apply_partition([[1]])
        second = cluster.apply_partition([[1, 5]])
        cluster.heal_partition(first)
        # Still cut by the second partition: the release must re-park it.
        assert transfer.stalled
        cluster.heal_partition(second)
        cluster.sim.run()
        assert not transfer.active

    def test_node_in_two_groups_rejected(self):
        cluster, _, _ = make_env()
        with pytest.raises(SimulationError):
            cluster.apply_partition([[1, 2], [2, 3]])

    def test_heal_unknown_partition_rejected(self):
        cluster, _, _ = make_env()
        with pytest.raises(SimulationError):
            cluster.heal_partition(999)


class TestTimelinePartitions:
    def test_partition_event_emits_and_heals(self):
        cluster, _, injector = make_env()
        transfer = make_transfer(cluster, src=1, dst=2)
        seen = []
        timeline = FaultTimeline().partition(0.5, [[1, 3]], duration=2.0)
        timeline.on(
            "partitioned",
            lambda _t, event, stalled: seen.append(("cut", stalled)),
        )
        timeline.on("healed", lambda _t, event: seen.append(("healed", None)))
        timeline.arm(cluster, injector)
        cluster.sim.run(until=1.0)
        assert seen == [("cut", [transfer])]
        assert transfer.stalled
        cluster.sim.run(until=3.0)
        assert seen[-1] == ("healed", None)
        assert not transfer.stalled
        cluster.sim.run()
        assert not transfer.active

    def test_generator_same_seed_same_waves(self):
        def build(seed):
            tl = FaultTimeline(seed=seed).partitions(
                nodes=list(range(10)), horizon=30.0, count=4,
            )
            return [
                (e.at, e.groups, e.duration)
                for e in tl.sorted_events()
                if isinstance(e, NetworkPartition)
            ]

        assert build(7) == build(7)
        assert build(7) != build(8)
        assert len(build(7)) == 4

    def test_generator_validation(self):
        tl = FaultTimeline()
        with pytest.raises(SimulationError):
            tl.partitions(nodes=[1, 2], horizon=0.0)
        with pytest.raises(SimulationError):
            tl.partitions(nodes=[1, 2], horizon=10.0, count=0)
        with pytest.raises(SimulationError):
            tl.partitions(nodes=[1], horizon=10.0)
        with pytest.raises(SimulationError):
            tl.partition(0.0, [[1]], duration=0.0)

    def test_partition_composes_with_churn(self):
        cluster, _, injector = make_env()
        timeline = (
            FaultTimeline(seed=3)
            .partition(0.5, [[2, 4]], duration=1.0)
            .straggler(0.2, 5, duration=1.0)
        )
        timeline.arm(cluster, injector)
        cluster.sim.run(until=5.0)
        assert cluster.reachable(2, 1)
