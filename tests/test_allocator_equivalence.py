"""Randomized equivalence: incremental allocator vs from-scratch oracle.

The incremental :class:`RateAllocator` must produce rates identical (to
1e-9) to a full :func:`allocate_rates` pass after *every* mutation of a
randomized sequence — flow arrivals, flow departures, and capacity
changes — across hundreds of seeds. A second battery drives two complete
:class:`FlowScheduler` simulations (one per allocator) through the same
random scenario and compares completion times.

The columnar kernel carries a stronger contract: twin batteries below
hold :class:`ColumnarRateAllocator` and :class:`ColumnarFlowScheduler`
to *exact* (``==``, not approx) equality against the dict path — same
mutation stream, bit-identical rates and completion timelines.
"""

import numpy as np
import pytest

from repro.sim import (
    ColumnarFlowScheduler,
    ColumnarRateAllocator,
    Flow,
    FlowScheduler,
    FromScratchAllocator,
    RateAllocator,
    Resource,
    Simulator,
    allocate_rates,
)

NUM_SEEDS = 220
MUTATIONS_PER_SEED = 12


class StubFlow:
    """Bare allocator client: resources + a rate slot."""

    __slots__ = ("name", "resources", "rate")

    def __init__(self, name, resources):
        self.name = name
        self.resources = tuple(resources)
        self.rate = 0.0

    def __repr__(self):  # pragma: no cover - assertion messages only
        return f"<StubFlow {self.name} rate={self.rate}>"


def _random_mutation(rng, alloc, live, resources, next_id):
    """Apply one random mutation; returns the updated next flow id."""
    roll = rng.random()
    if roll < 0.5 or not live:
        # Arrival crossing 0-3 random resources (0 => unbounded flow;
        # duplicates allowed on purpose to exercise dedup).
        count = int(rng.integers(0, 4))
        chosen = [resources[int(i)] for i in rng.integers(0, len(resources), count)]
        flow = StubFlow(f"f{next_id}", chosen)
        live.append(flow)
        alloc.add_flow(flow)
        return next_id + 1
    if roll < 0.8:
        flow = live.pop(int(rng.integers(0, len(live))))
        alloc.remove_flow(flow)
        return next_id
    res = resources[int(rng.integers(0, len(resources)))]
    res.set_capacity(float(rng.integers(1, 1000)))
    alloc.mark_dirty(res)
    return next_id


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_incremental_matches_from_scratch(seed):
    rng = np.random.default_rng(seed)
    resources = [
        Resource(f"r{i}", float(rng.integers(10, 1000)))
        for i in range(int(rng.integers(2, 8)))
    ]
    alloc = RateAllocator()
    live = []
    next_id = 0
    for _ in range(MUTATIONS_PER_SEED):
        next_id = _random_mutation(rng, alloc, live, resources, next_id)
        alloc.recompute()
        incremental = {flow: flow.rate for flow in live}
        allocate_rates(live)  # overwrites every rate from scratch
        for flow in live:
            assert incremental[flow] == pytest.approx(flow.rate, abs=1e-9), (
                f"seed={seed} flow={flow.name}: "
                f"incremental={incremental[flow]} scratch={flow.rate}"
            )
            flow.rate = incremental[flow]  # restore for the next round


def _twin_mutation(rng, d_alloc, c_alloc, d_live, c_live, resources, next_id):
    """Apply one random mutation identically to the dict and columnar sides.

    Twin StubFlows (one per allocator) share the same Resource objects:
    the dict allocator ignores kernel bindings and the columnar kernel's
    capacity mirror keeps ``set_capacity`` visible to both.
    """
    roll = rng.random()
    if roll < 0.5 or not d_live:
        count = int(rng.integers(0, 4))
        picks = rng.integers(0, len(resources), count)
        chosen = tuple(resources[int(i)] for i in picks)
        d_flow = StubFlow(f"f{next_id}", chosen)
        c_flow = StubFlow(f"f{next_id}", chosen)
        d_live.append(d_flow)
        c_live.append(c_flow)
        d_alloc.add_flow(d_flow)
        c_alloc.add_flow(c_flow)
        return next_id + 1
    if roll < 0.8:
        idx = int(rng.integers(0, len(d_live)))
        d_alloc.remove_flow(d_live.pop(idx))
        c_alloc.remove_flow(c_live.pop(idx))
        return next_id
    res = resources[int(rng.integers(0, len(resources)))]
    res.set_capacity(float(rng.integers(1, 1000)))
    d_alloc.mark_dirty(res)
    c_alloc.mark_dirty(res)
    return next_id


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_columnar_matches_dict_bit_for_bit(seed):
    """The numpy kernel reproduces the dict allocator *exactly*.

    After every mutation both sides recompute; the changed-flow lists
    must match name-for-name and every live rate must be ``==`` — no
    tolerance — across all 220 seeds. This is the gate that lets the
    columnar path replace the dict path without perturbing a single
    published number.
    """
    rng = np.random.default_rng(seed)
    resources = [
        Resource(f"r{i}", float(rng.integers(10, 1000)))
        for i in range(int(rng.integers(2, 8)))
    ]
    d_alloc = RateAllocator()
    c_alloc = ColumnarRateAllocator()
    d_live, c_live = [], []
    next_id = 0
    for _ in range(MUTATIONS_PER_SEED):
        next_id = _twin_mutation(
            rng, d_alloc, c_alloc, d_live, c_live, resources, next_id
        )
        d_changed = d_alloc.recompute()
        c_changed = c_alloc.recompute()
        assert [f.name for f in d_changed] == [f.name for f in c_changed], (
            f"seed={seed}: touched flows diverge"
        )
        for d, c in zip(d_live, c_live):
            assert d.rate == c.rate, (
                f"seed={seed} flow={d.name}: dict={d.rate!r} columnar={c.rate!r}"
            )


def _run_scenario(seed, make_scheduler):
    """One random flow workload on a scheduler; returns completions and
    final per-resource byte totals."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    sched = make_scheduler(sim)
    resources = [Resource(f"r{i}", float(rng.integers(50, 500))) for i in range(5)]
    flows = []
    for i in range(25):
        count = int(rng.integers(1, 3))
        chosen = rng.choice(len(resources), size=count, replace=False)
        flow = Flow(f"f{i}", float(rng.integers(50, 800)),
                    tuple(resources[int(j)] for j in chosen))
        flows.append(flow)
        start_at = float(rng.uniform(0, 5))
        sim.schedule(start_at, lambda f=flow: sched.start_flow(f))
        if rng.random() < 0.2:
            # Cancel strictly after the start (cancelling an already
            # completed flow is a no-op, which is fine here).
            sim.schedule(
                start_at + float(rng.uniform(0.01, 6)),
                lambda f=flow: sched.cancel_flow(f),
            )
    throttled = resources[0]
    sim.schedule(3.0, lambda: (throttled.set_capacity(30.0),
                               sched.capacity_changed(throttled)))
    sim.run()
    return (
        [(f.name, f.cancelled, f.completed_at) for f in flows],
        [(r.name, r.total_bytes) for r in resources],
    )


@pytest.mark.parametrize("seed", range(30))
def test_scheduler_end_to_end_equivalence(seed):
    """Identical completion timelines under both allocators."""
    fast, _ = _run_scenario(
        seed, lambda sim: FlowScheduler(sim, allocator=RateAllocator())
    )
    oracle, _ = _run_scenario(
        seed, lambda sim: FlowScheduler(sim, allocator=FromScratchAllocator())
    )
    for (name, cancelled, done_at), (oname, ocancelled, odone_at) in zip(fast, oracle):
        assert name == oname
        assert cancelled == ocancelled
        if odone_at is None:
            assert done_at is None
        else:
            assert done_at == pytest.approx(odone_at, abs=1e-6)


@pytest.mark.parametrize("seed", range(30))
def test_columnar_scheduler_end_to_end_exact(seed):
    """ColumnarFlowScheduler replays the dict scheduler bit-for-bit.

    The full (name, cancelled, completed_at) timeline must be *exactly*
    equal — completion instants included — and per-resource byte totals
    agree to float accumulation-order noise (the columnar fold sums in a
    different order, so bytes get an ulp-level tolerance while times,
    which both paths derive from the same rate arithmetic, get none).
    """
    dict_flows, dict_bytes = _run_scenario(
        seed, lambda sim: FlowScheduler(sim, allocator=RateAllocator())
    )
    col_flows, col_bytes = _run_scenario(
        seed, lambda sim: ColumnarFlowScheduler(sim)
    )
    assert dict_flows == col_flows
    for (name, d_total), (cname, c_total) in zip(dict_bytes, col_bytes):
        assert name == cname
        assert d_total == pytest.approx(c_total, rel=1e-9, abs=1e-6)


def test_remove_unknown_flow_is_noop():
    alloc = RateAllocator()
    flow = StubFlow("ghost", (Resource("r", 10.0),))
    alloc.remove_flow(flow)  # never added
    assert len(alloc) == 0
    assert alloc.recompute() == []


def test_double_add_is_idempotent():
    res = Resource("r", 100.0)
    alloc = RateAllocator()
    flow = StubFlow("f", (res,))
    alloc.add_flow(flow)
    alloc.add_flow(flow)
    assert len(alloc) == 1
    alloc.recompute()
    assert flow.rate == pytest.approx(100.0)


def test_untouched_component_keeps_rates():
    """Flows outside the dirty component must not be re-rated."""
    ra, rb = Resource("a", 100.0), Resource("b", 60.0)
    fa, fb = StubFlow("fa", (ra,)), StubFlow("fb", (rb,))
    alloc = RateAllocator()
    alloc.add_flow(fa)
    alloc.add_flow(fb)
    alloc.recompute()
    assert (fa.rate, fb.rate) == (pytest.approx(100.0), pytest.approx(60.0))
    # Poison fb's rate, then mutate only fa's component: fb must keep the
    # poisoned value, proving it sat outside the recomputed component.
    fb.rate = -1.0
    fa2 = StubFlow("fa2", (ra,))
    alloc.add_flow(fa2)
    touched = alloc.recompute()
    assert set(touched) == {fa, fa2}
    assert fa.rate == pytest.approx(50.0)
    assert fa2.rate == pytest.approx(50.0)
    assert fb.rate == -1.0
