"""Randomized equivalence: incremental allocator vs from-scratch oracle.

The incremental :class:`RateAllocator` must produce rates identical (to
1e-9) to a full :func:`allocate_rates` pass after *every* mutation of a
randomized sequence — flow arrivals, flow departures, and capacity
changes — across hundreds of seeds. A second battery drives two complete
:class:`FlowScheduler` simulations (one per allocator) through the same
random scenario and compares completion times.
"""

import numpy as np
import pytest

from repro.sim import (
    Flow,
    FlowScheduler,
    FromScratchAllocator,
    RateAllocator,
    Resource,
    Simulator,
    allocate_rates,
)

NUM_SEEDS = 220
MUTATIONS_PER_SEED = 12


class StubFlow:
    """Bare allocator client: resources + a rate slot."""

    __slots__ = ("name", "resources", "rate")

    def __init__(self, name, resources):
        self.name = name
        self.resources = tuple(resources)
        self.rate = 0.0

    def __repr__(self):  # pragma: no cover - assertion messages only
        return f"<StubFlow {self.name} rate={self.rate}>"


def _random_mutation(rng, alloc, live, resources, next_id):
    """Apply one random mutation; returns the updated next flow id."""
    roll = rng.random()
    if roll < 0.5 or not live:
        # Arrival crossing 0-3 random resources (0 => unbounded flow;
        # duplicates allowed on purpose to exercise dedup).
        count = int(rng.integers(0, 4))
        chosen = [resources[int(i)] for i in rng.integers(0, len(resources), count)]
        flow = StubFlow(f"f{next_id}", chosen)
        live.append(flow)
        alloc.add_flow(flow)
        return next_id + 1
    if roll < 0.8:
        flow = live.pop(int(rng.integers(0, len(live))))
        alloc.remove_flow(flow)
        return next_id
    res = resources[int(rng.integers(0, len(resources)))]
    res.set_capacity(float(rng.integers(1, 1000)))
    alloc.mark_dirty(res)
    return next_id


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_incremental_matches_from_scratch(seed):
    rng = np.random.default_rng(seed)
    resources = [
        Resource(f"r{i}", float(rng.integers(10, 1000)))
        for i in range(int(rng.integers(2, 8)))
    ]
    alloc = RateAllocator()
    live = []
    next_id = 0
    for _ in range(MUTATIONS_PER_SEED):
        next_id = _random_mutation(rng, alloc, live, resources, next_id)
        alloc.recompute()
        incremental = {flow: flow.rate for flow in live}
        allocate_rates(live)  # overwrites every rate from scratch
        for flow in live:
            assert incremental[flow] == pytest.approx(flow.rate, abs=1e-9), (
                f"seed={seed} flow={flow.name}: "
                f"incremental={incremental[flow]} scratch={flow.rate}"
            )
            flow.rate = incremental[flow]  # restore for the next round


def _run_scenario(seed, allocator):
    """One random flow workload on a FlowScheduler; returns completions."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    sched = FlowScheduler(sim, allocator=allocator)
    resources = [Resource(f"r{i}", float(rng.integers(50, 500))) for i in range(5)]
    flows = []
    for i in range(25):
        count = int(rng.integers(1, 3))
        chosen = rng.choice(len(resources), size=count, replace=False)
        flow = Flow(f"f{i}", float(rng.integers(50, 800)),
                    tuple(resources[int(j)] for j in chosen))
        flows.append(flow)
        start_at = float(rng.uniform(0, 5))
        sim.schedule(start_at, lambda f=flow: sched.start_flow(f))
        if rng.random() < 0.2:
            # Cancel strictly after the start (cancelling an already
            # completed flow is a no-op, which is fine here).
            sim.schedule(
                start_at + float(rng.uniform(0.01, 6)),
                lambda f=flow: sched.cancel_flow(f),
            )
    throttled = resources[0]
    sim.schedule(3.0, lambda: (throttled.set_capacity(30.0),
                               sched.capacity_changed(throttled)))
    sim.run()
    return [(f.name, f.cancelled, f.completed_at) for f in flows]


@pytest.mark.parametrize("seed", range(30))
def test_scheduler_end_to_end_equivalence(seed):
    """Identical completion timelines under both allocators."""
    fast = _run_scenario(seed, RateAllocator())
    oracle = _run_scenario(seed, FromScratchAllocator())
    for (name, cancelled, done_at), (oname, ocancelled, odone_at) in zip(fast, oracle):
        assert name == oname
        assert cancelled == ocancelled
        if odone_at is None:
            assert done_at is None
        else:
            assert done_at == pytest.approx(odone_at, abs=1e-6)


def test_remove_unknown_flow_is_noop():
    alloc = RateAllocator()
    flow = StubFlow("ghost", (Resource("r", 10.0),))
    alloc.remove_flow(flow)  # never added
    assert len(alloc) == 0
    assert alloc.recompute() == []


def test_double_add_is_idempotent():
    res = Resource("r", 100.0)
    alloc = RateAllocator()
    flow = StubFlow("f", (res,))
    alloc.add_flow(flow)
    alloc.add_flow(flow)
    assert len(alloc) == 1
    alloc.recompute()
    assert flow.rate == pytest.approx(100.0)


def test_untouched_component_keeps_rates():
    """Flows outside the dirty component must not be re-rated."""
    ra, rb = Resource("a", 100.0), Resource("b", 60.0)
    fa, fb = StubFlow("fa", (ra,)), StubFlow("fb", (rb,))
    alloc = RateAllocator()
    alloc.add_flow(fa)
    alloc.add_flow(fb)
    alloc.recompute()
    assert (fa.rate, fb.rate) == (pytest.approx(100.0), pytest.approx(60.0))
    # Poison fb's rate, then mutate only fa's component: fb must keep the
    # poisoned value, proving it sat outside the recomputed component.
    fb.rate = -1.0
    fa2 = StubFlow("fa2", (ra,))
    alloc.add_flow(fa2)
    touched = alloc.recompute()
    assert set(touched) == {fa, fa2}
    assert fa.rate == pytest.approx(50.0)
    assert fa2.rate == pytest.approx(50.0)
    assert fb.rate == -1.0
