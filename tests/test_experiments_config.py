"""Tests for experiment configuration and the testbed it builds."""

import pytest

from repro.cluster import gbps, mbs
from repro.errors import ReproError
from repro.api import Testbed
from repro.experiments import ALL_ALGORITHMS, ExperimentConfig


class TestConfig:
    def test_paper_defaults(self):
        cfg = ExperimentConfig.paper()
        assert cfg.num_nodes == 20
        assert cfg.num_clients == 4
        assert cfg.link_bw == pytest.approx(gbps(10))
        assert cfg.disk_bw == pytest.approx(mbs(500))
        assert cfg.code == "RS(10,4)"
        assert cfg.chunk_size == 64e6
        assert cfg.slice_size == 1e6
        assert cfg.num_chunks == 200
        assert cfg.t_phase == 20.0

    def test_scaled_shrinks_batch(self):
        cfg = ExperimentConfig.scaled(0.1)
        assert cfg.num_chunks == 20
        assert cfg.requests_per_client is None
        assert cfg.t_phase < 20.0

    def test_scaled_overrides(self):
        cfg = ExperimentConfig.scaled(0.1, code="LRC(8,2,2)", link_gbps=1.0)
        assert cfg.code == "LRC(8,2,2)"
        assert cfg.link_bw == pytest.approx(gbps(1.0))

    def test_with_replaces_fields(self):
        cfg = ExperimentConfig.paper().with_(num_chunks=10)
        assert cfg.num_chunks == 10
        assert cfg.num_nodes == 20

    def test_invalid_scale(self):
        with pytest.raises(ReproError):
            ExperimentConfig.scaled(0.0)
        with pytest.raises(ReproError):
            ExperimentConfig.scaled(1.5)

    def test_invalid_fields(self):
        with pytest.raises(ReproError):
            ExperimentConfig(num_nodes=1)
        with pytest.raises(ReproError):
            ExperimentConfig(chunk_mb=0)
        with pytest.raises(ReproError):
            ExperimentConfig(num_chunks=0)


class TestTestbedSubstrate:
    def make(self, **overrides):
        return Testbed.build(ExperimentConfig.scaled(0.03, **overrides))

    def test_builds_cluster_and_store(self):
        scenario = self.make()
        assert len(scenario.cluster.storage_nodes) == 20
        assert len(scenario.store) >= scenario.config.num_chunks

    def test_fail_nodes_trims_to_num_chunks(self):
        scenario = self.make()
        report = scenario.fail_nodes(1)
        assert len(report.failed_chunks) == scenario.config.num_chunks

    def test_every_algorithm_constructible(self):
        scenario = self.make()
        scenario.fail_nodes(1)
        for name in ALL_ALGORITHMS:
            repairer = scenario.make_repairer(name)
            assert repairer is not None

    def test_unknown_algorithm_rejected(self):
        scenario = self.make()
        with pytest.raises(ReproError):
            scenario.make_repairer("FancyRepair9000")

    def test_etrp_disables_rescheduling(self):
        scenario = self.make()
        etrp = scenario.make_repairer("ETRP")
        assert etrp.enable_reordering is False
        assert etrp.enable_retuning is False
        assert etrp.name == "ETRP"

    def test_io_variant_flag(self):
        scenario = self.make()
        io = scenario.make_repairer("ChameleonEC-IO")
        assert io.dispatcher.io_aware is True

    def test_foreground_round_trip(self):
        scenario = self.make()
        scenario.start_foreground()
        scenario.cluster.sim.run(until=1.0)
        assert any(c.issued > 0 for c in scenario.clients)
        scenario.stop_foreground()
        scenario.cluster.sim.run(until=3.0)
        assert scenario.foreground_done()
        assert scenario.latency.count > 0

    def test_transition_segments(self):
        scenario = self.make()
        scenario.start_foreground(
            transition_segments=[(1.0, "YCSB-A"), (1.0, "Memcached")]
        )
        gen = scenario.clients[0].generator
        assert gen.active_generator(0.5).name == "YCSB-A"
        assert gen.active_generator(1.5).name == "Memcached"
        scenario.stop_foreground()
