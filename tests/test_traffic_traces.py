"""Unit tests for the four synthetic trace generators."""

import numpy as np
import pytest

from repro.cluster import KB
from repro.errors import SimulationError
from repro.sim import Simulator
from repro.traffic import (
    TransitioningTrace,
    facebook_etc,
    ibm_object_store,
    make_trace,
    memcached_twitter,
    uniform_trace,
    ycsb_a,
)


def op_mix(generator, n=4000):
    ops = [generator.next_request().op for _ in range(n)]
    return ops.count("read") / n


class TestYCSBA:
    def test_balanced_mix(self):
        assert op_mix(ycsb_a(seed=1)) == pytest.approx(0.5, abs=0.05)

    def test_fixed_value_size(self):
        gen = ycsb_a(seed=2)
        sizes = {gen.next_request().size for _ in range(100)}
        assert sizes == {512 * KB}

    def test_zipfian_keys(self):
        gen = ycsb_a(num_keys=1000, seed=3)
        keys = [gen.next_request().key for _ in range(3000)]
        assert sum(1 for k in keys if k < 10) / len(keys) > 0.2


class TestIBM:
    def test_read_heavy(self):
        assert op_mix(ibm_object_store(seed=4)) == pytest.approx(0.78, abs=0.05)

    def test_wildly_varied_sizes(self):
        gen = ibm_object_store(seed=5)
        sizes = [gen.next_request().size for _ in range(2000)]
        assert min(sizes) < 1000
        assert max(sizes) > 10e6
        assert max(sizes) <= 256e6  # capped for simulation scale


class TestMemcached:
    def test_get_set_mix(self):
        assert op_mix(memcached_twitter(seed=6)) == pytest.approx(0.63, abs=0.05)

    def test_small_values(self):
        gen = memcached_twitter(seed=7)
        sizes = [gen.next_request().size for _ in range(20_000)]
        assert np.mean(sizes) == pytest.approx(20_134, rel=0.2)


class TestFacebookETC:
    def test_read_dominated(self):
        assert op_mix(facebook_etc(seed=8)) == pytest.approx(30 / 31, abs=0.02)

    def test_pareto_values(self):
        gen = facebook_etc(seed=9)
        sizes = [gen.next_request().size for _ in range(3000)]
        assert max(sizes) > 20 * np.median(sizes)


class TestFactoryAndMisc:
    def test_make_trace_all_names(self):
        for name in ("YCSB-A", "IBM-OS", "Memcached", "Facebook-ETC"):
            gen = make_trace(name, seed=1)
            assert gen.name == name
            req = gen.next_request()
            assert req.op in ("read", "update") and req.size > 0

    def test_make_trace_unknown(self):
        with pytest.raises(SimulationError):
            make_trace("NoSuchTrace")

    def test_requests_iterator_count(self):
        gen = uniform_trace(seed=10)
        assert len(list(gen.requests(25))) == 25

    def test_invalid_read_ratio(self):
        from repro.traffic.traces import TraceGenerator
        from repro.traffic import FixedSize, UniformSampler

        with pytest.raises(SimulationError):
            TraceGenerator(
                "bad", read_ratio=1.5,
                key_sampler=UniformSampler(10), size_sampler=FixedSize(1),
            )

    def test_deterministic_with_seed(self):
        a = [ycsb_a(seed=42).next_request() for _ in range(5)]
        b = [ycsb_a(seed=42).next_request() for _ in range(5)]
        assert a == b


class TestTransitioningTrace:
    def test_switches_generator_over_time(self):
        sim = Simulator()
        t = TransitioningTrace(
            sim, [(10.0, ycsb_a(seed=1)), (10.0, memcached_twitter(seed=2))]
        )
        assert t.active_generator(5.0).name == "YCSB-A"
        assert t.active_generator(15.0).name == "Memcached"
        # Cycles after the last segment.
        assert t.active_generator(25.0).name == "YCSB-A"

    def test_uses_sim_clock(self):
        sim = Simulator()
        t = TransitioningTrace(
            sim, [(1.0, ycsb_a(seed=1)), (1.0, ibm_object_store(seed=2))]
        )
        sim.schedule(1.5, lambda: None)
        sim.run()
        assert t.active_generator().name == "IBM-OS"

    def test_name_concatenates(self):
        sim = Simulator()
        t = TransitioningTrace(sim, [(1.0, ycsb_a()), (1.0, facebook_etc())])
        assert t.name == "YCSB-A+Facebook-ETC"

    def test_empty_segments_rejected(self):
        with pytest.raises(SimulationError):
            TransitioningTrace(Simulator(), [])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SimulationError):
            TransitioningTrace(Simulator(), [(0.0, ycsb_a())])
