"""Unit tests for straggler reactions: detection -> reorder/retune/replan."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import ChameleonRepair
from repro.monitor import BandwidthMonitor

CHUNK = 8 * MB
SLICE = 1 * MB


def make_coord(**kw):
    code = RSCode(4, 2)
    cluster = Cluster(num_nodes=12, num_clients=1, link_bw=mbs(100))
    store = place_stripes(code, 20, cluster.storage_ids, chunk_size=CHUNK, seed=3)
    injector = FailureInjector(cluster, store)
    monitor = BandwidthMonitor(cluster, window=0.5)
    monitor.start()
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("slice_size", SLICE)
    kw.setdefault("t_phase", 10.0)
    coord = ChameleonRepair(cluster, store, injector, monitor, **kw)
    return cluster, store, injector, coord


def find_relay_edge(coord):
    """An (instance, transfer) pair whose downloader is a relay."""
    for instance in coord.in_flight.values():
        for uploader, downloader in instance.plan.edges():
            if downloader != instance.plan.destination:
                return instance, instance.uploads[uploader]
    return None, None


class TestRetune:
    def test_retune_redirects_and_tracks(self):
        cluster, store, injector, coord = make_coord(
            enable_reordering=False, enable_retuning=True
        )
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks)
        cluster.sim.run(until=cluster.sim.now + 0.01)
        instance, transfer = find_relay_edge(coord)
        if transfer is None:
            pytest.skip("dispatch produced no relays this seed")
        # Force the straggler path directly.
        from repro.monitor.progress import TrackedTask

        task = TrackedTask(transfer, expected_finish=0.0, chunk_key=instance)
        before = coord.retunes
        coord._handle_straggler(task)
        # Either replanned (barely started) or retuned.
        assert coord.retunes > before or coord.replans > 0
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 5.0)
        assert coord.done

    def test_retune_not_useful_when_upload_done(self):
        cluster, store, injector, coord = make_coord()
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks)
        cluster.sim.run(until=cluster.sim.now + 0.01)
        instance, transfer = find_relay_edge(coord)
        if transfer is None:
            pytest.skip("no relays this seed")
        downloader = instance.downloader_of(transfer)
        relay_upload = instance.uploads[downloader]
        relay_upload.completed_at = cluster.sim.now  # pretend it finished
        assert coord._retune_is_useful(instance, transfer, downloader) is False

    def test_retune_not_useful_when_mostly_transferred(self):
        cluster, store, injector, coord = make_coord()
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks)
        cluster.sim.run(until=cluster.sim.now + 0.01)
        instance, transfer = find_relay_edge(coord)
        if transfer is None:
            pytest.skip("no relays this seed")
        transfer.completed_slices = transfer.num_slices - 1
        downloader = instance.downloader_of(transfer)
        assert coord._retune_is_useful(instance, transfer, downloader) is False


class TestReorder:
    def test_pause_downstream_only(self):
        cluster, store, injector, coord = make_coord(
            enable_reordering=True, enable_retuning=False
        )
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks)
        cluster.sim.run(until=cluster.sim.now + 0.01)
        instance, transfer = find_relay_edge(coord)
        if transfer is None:
            pytest.skip("no relays this seed")
        paused = instance.pause_downstream(transfer)
        # Everything paused sits on the straggler's downstream path.
        uploader = next(n for n, t in instance.uploads.items() if t is transfer)
        path = set()
        node = instance.plan.parent[uploader]
        while node != instance.plan.destination:
            path.add(node)
            node = instance.plan.parent[node]
        for t in paused:
            owner = next(n for n, x in instance.uploads.items() if x is t)
            assert owner in path
        for t in paused:
            cluster.transfers.resume(t)
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 5.0)
        assert coord.done

    def test_wake_resumes_paused_instance(self):
        cluster, store, injector, coord = make_coord()
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks)
        cluster.sim.run(until=cluster.sim.now + 0.01)
        instance = next(iter(coord.in_flight.values()))
        instance.pause()
        coord._paused.append(instance)
        coord._wake(instance)
        assert instance not in coord._paused
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 5.0)
        assert coord.done


class TestDetectionLoop:
    def test_expectations_tracked_per_transfer(self):
        cluster, store, injector, coord = make_coord()
        report = injector.fail_nodes([0])
        coord.repair(report.failed_chunks[:3])
        cluster.sim.run(until=cluster.sim.now + 0.01)
        tracked = coord.tracker.pending_tasks()
        launched = sum(len(i.uploads) for i in coord.in_flight.values())
        assert len(tracked) == launched
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 5.0)

    def test_counters_start_at_zero(self):
        cluster, store, injector, coord = make_coord()
        assert (coord.retunes, coord.reorders, coord.replans) == (0, 0, 0)
