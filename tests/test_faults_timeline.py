"""Unit tests for the seedable fault timeline (repro.faults)."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.faults import (
    BandwidthDegradation,
    FaultTimeline,
    FlowInterruption,
    NodeCrash,
    TransientStraggler,
)
from repro.metrics.linkstats import REPAIR_TAG

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(num_nodes=12):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), 20, cluster.storage_ids,
                          chunk_size=CHUNK, seed=0)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def make_repair_transfer(cluster, src=1, dst=2, size=500 * MB):
    transfer = cluster.make_transfer(
        src, dst, size, SLICE, tag=REPAIR_TAG, read_disk=True,
        name=f"rep-{src}->{dst}",
    )
    cluster.transfers.start(transfer)
    return transfer


class TestBuilding:
    def test_fluent_builders_accumulate_events(self):
        tl = (
            FaultTimeline(seed=1)
            .crash(2.0, 3)
            .degrade(1.0, 4, factor=0.5, duration=2.0)
            .straggler(3.0, 5, duration=1.0)
            .interrupt_flow(4.0)
        )
        kinds = [type(e) for e in tl.sorted_events()]
        assert kinds == [
            BandwidthDegradation, NodeCrash, TransientStraggler, FlowInterruption,
        ]

    def test_validation(self):
        tl = FaultTimeline()
        with pytest.raises(SimulationError):
            tl.crash(-1.0, 0)
        with pytest.raises(SimulationError):
            tl.degrade(0.0, 0, factor=0.0, duration=1.0)
        with pytest.raises(SimulationError):
            tl.degrade(0.0, 0, factor=0.5, duration=0.0)
        with pytest.raises(SimulationError):
            tl.degrade(0.0, 0, factor=0.5, duration=1.0, resources=("nic",))
        with pytest.raises(SimulationError):
            tl.straggler(0.0, 0, duration=1.0, severity=2.0)
        with pytest.raises(SimulationError):
            tl.interrupt_flow(0.0, count=0)
        with pytest.raises(SimulationError):
            tl.churn(nodes=[], horizon=10.0)
        with pytest.raises(SimulationError):
            tl.churn(nodes=[1, 2], horizon=10.0, crashes=3)

    def test_same_seed_same_churn_schedule(self):
        def build(seed):
            return FaultTimeline(seed=seed).churn(
                nodes=list(range(10)), horizon=20.0,
                crashes=2, stragglers=3, degradations=2, interruptions=1,
            )

        a, b = build(7), build(7)
        assert a.sorted_events() == b.sorted_events()
        c = build(8)
        assert c.sorted_events() != a.sorted_events()

    def test_crash_targets_drawn_without_replacement(self):
        tl = FaultTimeline(seed=3).churn(nodes=[0, 1, 2], horizon=5.0, crashes=3)
        crashed = [e.node_id for e in tl.events if isinstance(e, NodeCrash)]
        assert sorted(crashed) == [0, 1, 2]


class TestArming:
    def test_cannot_arm_twice_or_add_after_arm(self):
        cluster, _, injector = make_env()
        tl = FaultTimeline().straggler(1.0, 2, duration=1.0)
        tl.arm(cluster, injector)
        assert tl.armed
        with pytest.raises(SimulationError):
            tl.arm(cluster, injector)
        with pytest.raises(SimulationError):
            tl.straggler(2.0, 3, duration=1.0)

    def test_crash_requires_injector(self):
        cluster, _, _ = make_env()
        tl = FaultTimeline().crash(1.0, 2)
        with pytest.raises(SimulationError, match="FailureInjector"):
            tl.arm(cluster)

    def test_offsets_are_relative_to_arm_time(self):
        cluster, _, injector = make_env()
        cluster.sim.run(until=5.0)
        tl = FaultTimeline().crash(2.0, 3)
        tl.arm(cluster, injector)
        cluster.sim.run(until=6.9)
        assert cluster.node(3).alive
        cluster.sim.run(until=7.1)
        assert not cluster.node(3).alive


class TestDegradation:
    def test_degrade_then_recover_restores_capacity(self):
        cluster, _, injector = make_env()
        node = cluster.node(4)
        base = node.uplink.capacity
        tl = FaultTimeline().degrade(1.0, 4, factor=0.25, duration=2.0)
        tl.arm(cluster, injector)
        cluster.sim.run(until=1.5)
        assert node.uplink.capacity == pytest.approx(base * 0.25)
        assert node.downlink.capacity == pytest.approx(base * 0.25)
        cluster.sim.run(until=3.5)
        assert node.uplink.capacity == pytest.approx(base)
        assert node.downlink.capacity == pytest.approx(base)

    def test_overlapping_degradations_compose_and_unwind(self):
        cluster, _, injector = make_env()
        node = cluster.node(4)
        base = node.uplink.capacity
        tl = (
            FaultTimeline()
            .degrade(1.0, 4, factor=0.5, duration=4.0, resources=("uplink",))
            .degrade(2.0, 4, factor=0.5, duration=1.0, resources=("uplink",))
        )
        tl.arm(cluster, injector)
        cluster.sim.run(until=2.5)
        assert node.uplink.capacity == pytest.approx(base * 0.25)
        cluster.sim.run(until=3.5)  # inner fault recovered, outer still active
        assert node.uplink.capacity == pytest.approx(base * 0.5)
        cluster.sim.run(until=5.5)
        assert node.uplink.capacity == pytest.approx(base)

    def test_straggler_throttles_links_for_duration(self):
        cluster, _, injector = make_env()
        node = cluster.node(6)
        base = node.uplink.capacity
        tl = FaultTimeline().straggler(1.0, 6, duration=2.0, severity=0.1)
        tl.arm(cluster, injector)
        events = []
        tl.on("degraded", lambda t, **kw: events.append(("deg", kw["kind"])))
        tl.on("recovered", lambda t, **kw: events.append(("rec", kw["kind"])))
        cluster.sim.run(until=1.5)
        assert node.uplink.capacity == pytest.approx(base * 0.1)
        cluster.sim.run(until=4.0)
        assert node.uplink.capacity == pytest.approx(base)
        assert events == [("deg", "straggler"), ("rec", "straggler")]


class TestCrashAndInterruption:
    def test_crash_fails_repair_transfers_crossing_the_node(self):
        cluster, _, injector = make_env()
        hit = make_repair_transfer(cluster, src=3, dst=5)
        unrelated = make_repair_transfer(cluster, src=7, dst=8)
        foreground = cluster.make_transfer(3, 6, CHUNK, SLICE, tag="foreground")
        cluster.transfers.start(foreground)
        tl = FaultTimeline().crash(1.0, 3)
        tl.arm(cluster, injector)
        crashes = []
        tl.on("node_crashed", lambda t, **kw: crashes.append(kw))
        cluster.sim.run(until=1.5)
        assert not cluster.node(3).alive
        assert hit.failed and "crashed" in hit.failure_reason
        assert not unrelated.failed
        assert not foreground.failed  # foreground continues degraded
        assert len(crashes) == 1
        assert crashes[0]["node_id"] == 3
        assert hit in crashes[0]["failed_transfers"]
        assert crashes[0]["report"].failed_nodes == [3]

    def test_crash_is_idempotent(self):
        cluster, _, injector = make_env()
        tl = FaultTimeline().crash(1.0, 3).crash(2.0, 3)
        tl.arm(cluster, injector)
        crashes = []
        tl.on("node_crashed", lambda t, **kw: crashes.append(kw["node_id"]))
        cluster.sim.run(until=3.0)
        assert crashes == [3]  # the second crash finds a dead node: no event

    def test_interruption_kills_only_repair_flows(self):
        cluster, _, injector = make_env()
        repair = make_repair_transfer(cluster, src=1, dst=2)
        foreground = cluster.make_transfer(1, 4, CHUNK, SLICE, tag="foreground")
        cluster.transfers.start(foreground)
        tl = FaultTimeline(seed=5).interrupt_flow(1.0)
        tl.arm(cluster, injector)
        interrupted = []
        tl.on("flow_interrupted", lambda t, **kw: interrupted.extend(kw["transfers"]))
        cluster.sim.run(until=1.5)
        assert repair.failed
        assert not foreground.failed
        assert interrupted == [repair]

    def test_interruption_with_no_live_repairs_is_a_noop(self):
        cluster, _, injector = make_env()
        tl = FaultTimeline().interrupt_flow(1.0)
        tl.arm(cluster, injector)
        cluster.sim.run(until=2.0)
        assert tl.injected  # executed without raising


class TestDeterministicInjection:
    def test_same_seed_interrupts_same_victims(self):
        def run(seed):
            cluster, _, injector = make_env()
            transfers = [
                make_repair_transfer(cluster, src=i, dst=i + 4, size=100 * MB)
                for i in range(4)
            ]
            tl = FaultTimeline(seed=seed).interrupt_flow(0.5, count=2)
            tl.arm(cluster, injector)
            cluster.sim.run(until=1.0)
            return [i for i, t in enumerate(transfers) if t.failed]

        assert run(9) == run(9)


class TestFluctuate:
    def test_builds_only_degradations_inside_the_horizon(self):
        tl = FaultTimeline(seed=5).fluctuate(
            nodes=list(range(8)), horizon=20.0, period=5.0,
            amplitude=(0.4, 0.8), fraction=0.5,
        )
        assert tl.events
        for event in tl.events:
            assert isinstance(event, BandwidthDegradation)
            assert 0.0 <= event.at < 20.0
            assert event.at + event.duration <= 20.0 + 1e-9
            assert 0.4 <= event.factor <= 0.8

    def test_wave_count_and_victims_per_wave(self):
        tl = FaultTimeline(seed=5).fluctuate(
            nodes=list(range(10)), horizon=20.0, period=5.0, fraction=0.4,
        )
        # 4 waves x round(0.4 * 10) victims.
        assert len(tl.events) == 4 * 4

    def test_same_seed_same_waves(self):
        def build(seed):
            return FaultTimeline(seed=seed).fluctuate(
                nodes=list(range(6)), horizon=10.0, period=2.5,
            ).sorted_events()

        assert build(11) == build(11)
        assert build(11) != build(12)

    def test_validation(self):
        tl = FaultTimeline()
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[1], horizon=0.0, period=1.0)
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[1], horizon=5.0, period=6.0)
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[], horizon=5.0, period=1.0)
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[1], horizon=5.0, period=1.0, amplitude=(0.0, 0.5))
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[1], horizon=5.0, period=1.0, amplitude=(0.9, 0.5))
        with pytest.raises(SimulationError):
            tl.fluctuate(nodes=[1], horizon=5.0, period=1.0, fraction=0.0)

    def test_armed_waves_throttle_then_restore_capacity(self):
        cluster, _, injector = make_env()
        node = cluster.storage_nodes[3]
        base = node.uplink.capacity
        tl = FaultTimeline(seed=2).fluctuate(
            nodes=[3], horizon=4.0, period=2.0, amplitude=(0.5, 0.5),
            fraction=1.0,
        )
        tl.arm(cluster, injector)
        first = tl.sorted_events()[0]
        cluster.sim.run(until=first.at + 0.5 * first.duration)
        assert node.uplink.capacity == pytest.approx(0.5 * base)
        cluster.sim.run(until=10.0)
        assert node.uplink.capacity == pytest.approx(base)
