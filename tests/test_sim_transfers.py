"""Tests for sliced transfers and pipeline dependencies."""

import pytest

from repro.errors import SimulationError
from repro.obs.tracer import Tracer, use_tracer
from repro.sim import FlowScheduler, Resource, Simulator, Transfer, TransferManager


def make_env():
    sim = Simulator()
    sched = FlowScheduler(sim)
    return sim, sched, TransferManager(sched)


class TestBasics:
    def test_slicing(self):
        t = Transfer("t", (), 100, 30)
        assert t.num_slices == 4
        assert sum(t.slice_sizes) == pytest.approx(100)

    def test_single_transfer_duration(self):
        sim, sched, mgr = make_env()
        r = Resource("link", 100.0)
        t = Transfer("t", (r,), 1000, 100)
        mgr.start(t)
        sim.run()
        assert t.done
        assert t.completed_at == pytest.approx(10.0)

    def test_invalid_sizes_raise(self):
        with pytest.raises(SimulationError):
            Transfer("t", (), 0, 10)
        with pytest.raises(SimulationError):
            Transfer("t", (), 10, 0)

    def test_self_dependency_rejected(self):
        t = Transfer("t", (), 10, 10)
        with pytest.raises(SimulationError):
            t.depends_on(t)

    def test_bytes_completed_progress(self):
        sim, sched, mgr = make_env()
        r = Resource("link", 100.0)
        t = Transfer("t", (r,), 1000, 250)
        mgr.start(t)
        sim.run(until=5.1)
        assert t.bytes_completed == pytest.approx(500.0)


class TestPipelining:
    def test_chain_pipelines_slices(self):
        # Two-hop chain over independent links: with S slices the chain
        # takes (S + 1)/S of the single-hop time, not 2x (ECPipe's O(1)).
        sim, sched, mgr = make_env()
        up1, down2 = Resource("up1", 100.0), Resource("down2", 100.0)
        up2, down3 = Resource("up2", 100.0), Resource("down3", 100.0)
        hop1 = Transfer("hop1", (up1, down2), 1000, 100)
        hop2 = Transfer("hop2", (up2, down3), 1000, 100)
        hop2.depends_on(hop1)
        mgr.start(hop1)
        mgr.start(hop2)
        sim.run()
        assert hop1.completed_at == pytest.approx(10.0)
        assert hop2.completed_at == pytest.approx(11.0)

    def test_unsliced_chain_serialises(self):
        sim, sched, mgr = make_env()
        hop1 = Transfer("hop1", (Resource("a", 100.0),), 1000, 1000)
        hop2 = Transfer("hop2", (Resource("b", 100.0),), 1000, 1000)
        hop2.depends_on(hop1)
        mgr.start(hop1)
        mgr.start(hop2)
        sim.run()
        assert hop2.completed_at == pytest.approx(20.0)

    def test_combine_waits_for_all_inputs(self):
        # A relay output slice waits on the same slice of every input.
        sim, sched, mgr = make_env()
        fast = Transfer("fast", (Resource("f", 200.0),), 1000, 100)
        slow = Transfer("slow", (Resource("s", 50.0),), 1000, 100)
        out = Transfer("out", (Resource("o", 1000.0),), 1000, 100)
        out.depends_on(fast)
        out.depends_on(slow)
        for t in (fast, slow, out):
            mgr.start(t)
        sim.run()
        # Slow input finishes at 20s; output's last slice needs it.
        assert out.completed_at == pytest.approx(20.0 + 0.1, rel=0.05)

    def test_dependent_released_late_catches_up(self):
        sim, sched, mgr = make_env()
        hop1 = Transfer("hop1", (Resource("a", 100.0),), 1000, 100)
        hop2 = Transfer("hop2", (Resource("b", 100.0),), 1000, 100)
        hop2.depends_on(hop1)
        mgr.start(hop1)
        sim.schedule(15.0, lambda: mgr.start(hop2))
        sim.run()
        # hop1 fully done by t=10; hop2 runs unthrottled from 15 to 25.
        assert hop2.completed_at == pytest.approx(25.0)


class TestControl:
    def test_pause_and_resume(self):
        sim, sched, mgr = make_env()
        r = Resource("link", 100.0)
        t = Transfer("t", (r,), 1000, 100)
        mgr.start(t)
        sim.schedule(3.05, lambda: mgr.pause(t))
        sim.schedule(10.0, lambda: mgr.resume(t))
        sim.run()
        # ~4 slices by pause (in-flight finishes), 6 remaining after 10s.
        assert t.completed_at == pytest.approx(16.0, abs=0.2)

    def test_cancel_stops_and_unblocks_dependents(self):
        sim, sched, mgr = make_env()
        hop1 = Transfer("hop1", (Resource("a", 10.0),), 1000, 100)
        hop2 = Transfer("hop2", (Resource("b", 100.0),), 1000, 100)
        hop2.depends_on(hop1)
        mgr.start(hop1)
        mgr.start(hop2)
        sim.schedule(5.0, lambda: mgr.cancel(hop1))
        sim.run()
        assert hop1.cancelled and not hop1.done
        # hop2 free to run after cancel: finishes within ~10s of t=5.
        assert hop2.done
        assert hop2.completed_at == pytest.approx(15.0, abs=0.5)

    def test_on_slice_callbacks(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 400, 100)
        seen = []
        t.on_slice.append(lambda tr, i: seen.append(i))
        mgr.start(t)
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_start_cancelled_raises(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 100, 100)
        mgr.cancel(t)
        with pytest.raises(SimulationError):
            mgr.start(t)

    def test_double_start_is_noop(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 100, 100)
        mgr.start(t)
        mgr.start(t)
        sim.run()
        assert t.done


class TestPauseResumeGuards:
    """pause/resume act only on live released transfers (regression:
    they used to flip state and emit trace instants for transfers that
    were done, cancelled, or never released)."""

    def _instants(self, tracer, name):
        return [e for e in tracer.instants if e.name == name]

    def test_pause_done_transfer_no_state_no_trace(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 100, 100)
        mgr.start(t)
        sim.run()
        assert t.done
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.pause(t)
        assert not t.paused
        assert self._instants(tracer, "transfer.paused") == []

    def test_pause_cancelled_transfer_no_state_no_trace(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 1000, 100)
        mgr.start(t)
        sim.run(until=1.0)
        mgr.cancel(t)
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.pause(t)
        assert not t.paused
        assert self._instants(tracer, "transfer.paused") == []

    def test_pause_unreleased_transfer_is_noop(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 100, 100)
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.pause(t)
        assert not t.paused
        assert self._instants(tracer, "transfer.paused") == []
        mgr.start(t)  # unaffected by the earlier bogus pause
        sim.run()
        assert t.done

    def test_resume_finished_while_paused_no_trace(self):
        # The in-flight slice may be the last one: the transfer finishes
        # while parked; a later resume must not trace or relaunch.
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 200, 100)
        mgr.start(t)
        sim.schedule(1.5, lambda: mgr.pause(t))
        sim.run()
        assert t.done and t.paused
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.resume(t)
        assert self._instants(tracer, "transfer.resumed") == []

    def test_resume_cancelled_while_paused_no_trace(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 1000, 100)
        mgr.start(t)
        sim.schedule(1.5, lambda: mgr.pause(t))
        sim.run(until=3.0)
        mgr.cancel(t)
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.resume(t)
        assert t.paused  # flag untouched; transfer is dead anyway
        assert self._instants(tracer, "transfer.resumed") == []

    def test_pause_resume_roundtrip_traces_once_each(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 1000, 100)
        tracer = Tracer(clock=lambda: sim.now)
        with use_tracer(tracer):
            mgr.start(t)
            sim.schedule(1.5, lambda: mgr.pause(t))
            sim.schedule(2.0, lambda: mgr.pause(t))  # double pause: one event
            sim.schedule(4.0, lambda: mgr.resume(t))
            sim.schedule(4.5, lambda: mgr.resume(t))  # double resume: one event
            sim.run()
        assert t.done
        assert len(self._instants(tracer, "transfer.paused")) == 1
        assert len(self._instants(tracer, "transfer.resumed")) == 1

    def test_cancel_is_idempotent_and_skips_done(self):
        sim, sched, mgr = make_env()
        t = Transfer("t", (Resource("r", 100.0),), 100, 100)
        mgr.start(t)
        sim.run()
        mgr.cancel(t)  # done: no-op
        assert t.done and not t.cancelled
        t2 = Transfer("t2", (Resource("r2", 100.0),), 1000, 100)
        mgr.start(t2)
        sim.run(until=t.completed_at + 1.0)
        mgr.cancel(t2)
        mgr.cancel(t2)  # second cancel: no-op
        assert t2.cancelled and not t2.done
