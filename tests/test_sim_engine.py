"""Unit tests for the event queue and simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_fifo_at_equal_time(self):
        q = EventQueue()
        order = []
        q.push(1.0, order.append, "a")
        q.push(1.0, order.append, "b")
        while q:
            e = q.pop()
            e.callback(*e.args)
        assert order == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        assert q.pop().time == 1.0

    def test_cancel_skipped(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        e.cancel()
        assert q.pop() is None

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 2.0

    def test_len_counts_live_only(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        assert len(q) == 1


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        end = sim.run(until=4.0)
        assert end == 4.0
        assert sim.pending_events() == 1

    def test_run_until_with_empty_queue_advances(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 3.0]

    def test_stop_halts_loop(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_event_cancellation(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append(1))
        event.cancel()
        sim.run()
        assert seen == []


class TestStopDuringBoundedRun:
    """stop() inside run(until=...) leaves the clock at the stopping
    event — never clamped forward to ``until`` (regression: the
    drained-queue path used to clamp while the pending-events path did
    not, so callers saw inconsistent end times)."""

    def test_stop_with_pending_events_keeps_clock(self):
        sim = Simulator()
        sim.schedule(2.0, sim.stop)
        sim.schedule(5.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 2.0
        assert sim.now == 2.0
        assert sim.pending_events() == 1

    def test_stop_with_drained_queue_keeps_clock(self):
        # The stopping event is the last one: queue is empty afterwards,
        # but a stopped run still must not jump ahead to ``until``.
        sim = Simulator()
        sim.schedule(2.0, sim.stop)
        end = sim.run(until=10.0)
        assert end == 2.0
        assert sim.now == 2.0

    def test_unstopped_drained_run_still_clamps(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        end = sim.run(until=10.0)
        assert end == 10.0

    def test_run_resumes_after_stop(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, sim.stop)
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run(until=10.0)
        end = sim.run(until=10.0)
        assert seen == [5.0]
        assert end == 10.0
