"""Recovery machinery under injected faults: retry, re-plan, graceful loss.

Covers the acceptance criteria of the fault subsystem: a full-node repair
survives a mid-repair helper crash plus a transient straggler with zero lost
chunks, and a crash beyond the code's fault tolerance degrades to a reported
``ToleranceExceeded`` outcome instead of an unhandled exception.
"""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import ChameleonRepair
from repro.errors import SchedulingError
from repro.faults import FaultTimeline
from repro.monitor import BandwidthMonitor
from repro.repair import PPR, ConventionalRepair, RepairRunner

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(num_nodes=12, m=2, stripes=20):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, m), stripes, cluster.storage_ids,
                          chunk_size=CHUNK, seed=0)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def make_runner(cluster, store, injector, strategy=None, **kwargs):
    return RepairRunner(
        cluster, store, injector, strategy or ConventionalRepair(seed=1),
        chunk_size=CHUNK, slice_size=SLICE, **kwargs,
    )


def make_chameleon(cluster, store, injector, **kwargs):
    monitor = BandwidthMonitor(cluster)
    monitor.start()
    return ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=10.0, **kwargs,
    )


def run_until_done(cluster, repairer, limit=50_000.0, step=10.0):
    while not repairer.done and cluster.sim.now < limit:
        cluster.sim.run(until=cluster.sim.now + step)
    return repairer.done


class TestCrashRecovery:
    @pytest.mark.parametrize("kind", ["runner", "chameleon"])
    def test_helper_crash_plus_straggler_repairs_everything(self, kind):
        """The headline scenario: crash a helper and throttle another node
        mid-repair; every chunk must still come back, via retries and the
        adopted chunks of the crashed node."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        if kind == "runner":
            repairer = make_runner(cluster, store, injector)
        else:
            repairer = make_chameleon(cluster, store, injector)
        retries, adopted, failed = [], [], []
        repairer.on("retry", lambda r, chunk, attempt: retries.append(chunk))
        repairer.on("chunks_added", lambda r, chunks: adopted.extend(chunks))
        repairer.on("chunk_failed", lambda r, **kw: failed.append(kw["chunk"]))

        crash_reports = []
        timeline = (
            FaultTimeline(seed=4)
            .crash(0.5, 5)
            .straggler(0.7, 7, duration=2.0, severity=0.1)
        )

        def on_crash(t, node_id, report, failed_transfers):
            crash_reports.append(report)
            repairer.add_chunks(report.failed_chunks)

        timeline.on("node_crashed", on_crash)
        timeline.arm(cluster, injector)

        repairer.repair(report.failed_chunks)
        assert run_until_done(cluster, repairer)
        assert repairer.lost == []
        assert repairer.tolerance_exceeded is None
        assert len(crash_reports) == 1
        # Chunks already in flight toward the crashed node are retried, not
        # adopted, so adoption covers the rest of the crash report.
        assert adopted
        assert set(adopted) <= set(crash_reports[0].failed_chunks)
        # The crash killed in-flight work on node 5: retries were needed.
        assert retries and failed
        expected = set(report.failed_chunks) | set(adopted)
        assert set(repairer.completed) == expected

    def test_destination_crash_mid_repair(self):
        """Crashing a node that is receiving repaired chunks must fail and
        re-plan those repairs, not silently complete them."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector)
        timeline = FaultTimeline(seed=2).crash(0.5, 1)
        timeline.on(
            "node_crashed",
            lambda t, node_id, report, failed_transfers:
                repairer.add_chunks(report.failed_chunks),
        )
        timeline.arm(cluster, injector)
        repairer.repair(report.failed_chunks)
        assert run_until_done(cluster, repairer)
        assert repairer.lost == []
        for chunk in repairer.completed:
            assert cluster.node(store.node_of(chunk)).alive

    def test_beyond_tolerance_reports_instead_of_raising(self):
        """RS(4,2) with three dead nodes: unrepairable chunks become ``lost``
        and the run finishes with a ToleranceExceeded outcome attached."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector)
        outcomes = []
        repairer.on("tolerance_exceeded", lambda r, outcome: outcomes.append(outcome))
        timeline = FaultTimeline(seed=1).crash(0.5, 6).crash(0.6, 7).crash(0.7, 8)
        timeline.on(
            "node_crashed",
            lambda t, node_id, report, failed_transfers:
                repairer.add_chunks(report.failed_chunks),
        )
        timeline.arm(cluster, injector)
        repairer.repair(report.failed_chunks)
        assert run_until_done(cluster, repairer)  # no exception escapes
        assert repairer.tolerance_exceeded is not None
        assert repairer.lost
        # The event fires once, on the first loss; the attribute keeps
        # tracking subsequent losses.
        assert len(outcomes) == 1
        assert set(outcomes[0].lost_chunks) <= set(repairer.lost)
        out = repairer.tolerance_exceeded
        assert set(out.failed_nodes) >= {0, 6, 7}
        assert set(out.lost_chunks) == set(repairer.lost)

    def test_beyond_tolerance_chameleon(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        coord = make_chameleon(cluster, store, injector)
        timeline = FaultTimeline(seed=1).crash(0.5, 6).crash(0.6, 7).crash(0.7, 8)
        timeline.on(
            "node_crashed",
            lambda t, node_id, report, failed_transfers:
                coord.add_chunks(report.failed_chunks),
        )
        timeline.arm(cluster, injector)
        coord.repair(report.failed_chunks)
        assert run_until_done(cluster, coord)
        assert coord.tolerance_exceeded is not None
        assert coord.lost


class TestRetryMachinery:
    @pytest.mark.parametrize("kind", ["runner", "chameleon"])
    def test_chunk_timeout_forces_retry_with_backoff(self, kind):
        """An unattainable timeout fires the watchdog; retries are spaced
        by exponential backoff and the chunk is eventually lost after
        max_retries attempts (the plan itself never gets a chance)."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[:1]
        kwargs = dict(max_retries=2, retry_backoff=1.0, chunk_timeout=0.01)
        if kind == "runner":
            repairer = make_runner(cluster, store, injector, **kwargs)
        else:
            repairer = make_chameleon(cluster, store, injector, **kwargs)
        retry_times = []
        repairer.on(
            "retry",
            lambda r, **kw: retry_times.append(cluster.sim.now),
        )
        repairer.repair(chunk)
        run_until_done(cluster, repairer, limit=100.0)
        assert repairer.done
        assert repairer.lost == list(chunk)
        assert len(retry_times) == 2
        # Backoff doubles: second retry waits ~2x the first.
        gap1 = retry_times[0]
        gap2 = retry_times[1] - retry_times[0]
        assert gap2 > gap1

    @pytest.mark.parametrize("kind", ["runner", "chameleon"])
    def test_max_backoff_caps_the_exponential_delay(self, kind):
        """Regression: the retry delay doubled without bound
        (``retry_backoff * 2**(attempts-1)``), so a high-attempt chunk
        could out-wait its own deadline. With ``max_backoff`` the cap
        must bind: gaps grow until the ceiling, then stay flat."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[:1]
        kwargs = dict(max_retries=4, retry_backoff=1.0, max_backoff=1.5,
                      chunk_timeout=0.01)
        if kind == "runner":
            repairer = make_runner(cluster, store, injector, **kwargs)
        else:
            repairer = make_chameleon(cluster, store, injector, **kwargs)
        retry_times = []
        repairer.on("retry", lambda r, **kw: retry_times.append(cluster.sim.now))
        repairer.repair(chunk)
        run_until_done(cluster, repairer, limit=100.0)
        assert repairer.done
        assert len(retry_times) == 4
        gaps = [b - a for a, b in zip(retry_times, retry_times[1:])]
        # Uncapped the gaps would be ~2.0, 4.0, 8.0; capped they flatten.
        assert all(gap == pytest.approx(1.5, abs=0.05) for gap in gaps)

    @pytest.mark.parametrize("kind", ["runner", "chameleon"])
    def test_max_backoff_validated(self, kind):
        cluster, store, injector = make_env()
        maker = make_runner if kind == "runner" else make_chameleon
        with pytest.raises(SchedulingError):
            maker(cluster, store, injector, max_backoff=0.0)
        with pytest.raises(SchedulingError):
            maker(cluster, store, injector, max_backoff=-1.0)

    def test_repair_succeeds_with_generous_timeout(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector, chunk_timeout=500.0)
        repairer.repair(report.failed_chunks)
        assert run_until_done(cluster, repairer)
        assert repairer.lost == []
        assert repairer.retries == 0

    def test_ppr_retry_path(self):
        """Multi-stage PPR plans also recover from a mid-repair crash."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector, strategy=PPR(seed=3))
        timeline = FaultTimeline(seed=6).crash(1.0, 4)
        timeline.on(
            "node_crashed",
            lambda t, node_id, report, failed_transfers:
                repairer.add_chunks(report.failed_chunks),
        )
        timeline.arm(cluster, injector)
        repairer.repair(report.failed_chunks)
        assert run_until_done(cluster, repairer)
        assert repairer.lost == []


class TestRetryTimeoutInteraction:
    """Regression battery for the watchdog/retry identity guards.

    A watchdog scheduled at launch time holds a reference to that
    attempt's :class:`PlanInstance`. Once a retry relaunches the chunk,
    the stale timer must not shoot down the new attempt, a duplicate
    failure report for the dead instance must not schedule a second
    retry, and a spurious retry timer must not double-launch — the
    ``in_flight.get(chunk) is instance`` identity guards and the
    ``_retry_wait`` membership check are what these tests pin down.
    """

    def test_stale_watchdog_spares_the_relaunched_attempt(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        repairer = make_runner(
            cluster, store, injector, chunk_timeout=500.0, retry_backoff=0.5
        )
        repairer.repair([chunk])
        first = repairer.in_flight[chunk]
        first.fail("injected helper loss")
        cluster.sim.run(until=cluster.sim.now + 1.0)  # past the backoff
        second = repairer.in_flight[chunk]
        assert second is not first
        # The attempt-1 watchdog fires long after the relaunch: the
        # identity guard must keep it away from attempt 2.
        repairer._check_timeout(chunk, first)
        assert repairer.in_flight.get(chunk) is second
        assert run_until_done(cluster, repairer)
        assert repairer.completed == [chunk] and repairer.lost == []
        assert repairer.retries == 1

    def test_watchdog_is_inert_after_completion(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        repairer = make_runner(cluster, store, injector, chunk_timeout=500.0)
        repairer.repair([chunk])
        instance = repairer.in_flight[chunk]
        assert run_until_done(cluster, repairer)
        failed = []
        repairer.on("chunk_failed", lambda r, **kw: failed.append(kw["chunk"]))
        repairer._check_timeout(chunk, instance)
        assert failed == [] and repairer.completed == [chunk]

    def test_duplicate_failure_report_cannot_double_retry(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        repairer = make_runner(cluster, store, injector, retry_backoff=0.5)
        repairer.repair([chunk])
        first = repairer.in_flight[chunk]
        first.fail("injected")
        assert chunk in repairer._retry_wait
        # A second failure report for the same dead instance (a watchdog
        # racing the flow-failure callback) must be dropped, not queue a
        # second backoff timer.
        repairer._instance_failed(chunk, first, "duplicate report")
        cluster.sim.run(until=cluster.sim.now + 1.0)
        assert repairer.retries == 1
        assert repairer.in_flight.get(chunk) is not None
        assert run_until_done(cluster, repairer)
        assert repairer.completed == [chunk]

    def test_spurious_retry_timer_is_a_noop(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        repairer = make_runner(cluster, store, injector)
        repairer.repair([chunk])
        instance = repairer.in_flight[chunk]
        repairer._retry(chunk)  # chunk never entered _retry_wait
        assert repairer.retries == 0
        assert repairer.in_flight[chunk] is instance
        assert chunk not in repairer.pending

    def test_all_done_fires_exactly_once_when_retries_exhaust(self):
        """Losing the last chunks through the retry path must emit
        ``all_done`` exactly once (the ``_finished`` latch): _retry can
        reach _finish through a failed launch and again on its way out."""
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunks = report.failed_chunks[:3]
        repairer = make_runner(
            cluster, store, injector,
            max_retries=1, retry_backoff=0.2, chunk_timeout=0.01,
        )
        done_events = []
        repairer.on("all_done", lambda r: done_events.append(cluster.sim.now))
        repairer.repair(chunks)
        run_until_done(cluster, repairer, limit=100.0, step=1.0)
        assert repairer.done
        assert set(repairer.lost) == set(chunks)
        assert len(done_events) == 1


class TestAddChunks:
    def test_add_before_start_rejected(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector)
        with pytest.raises(SchedulingError):
            repairer.add_chunks(report.failed_chunks)

    def test_add_deduplicates(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        repairer = make_runner(cluster, store, injector)
        repairer.repair(report.failed_chunks)
        adopted = repairer.add_chunks(report.failed_chunks)
        assert adopted == []  # everything already pending or in flight

    def test_add_after_done_reopens_the_batch(self):
        cluster, store, injector = make_env()
        repairer = make_runner(cluster, store, injector)
        repairer.repair([])
        cluster.sim.run()
        assert repairer.done
        first_elapsed = repairer.meter.elapsed
        report = injector.fail_nodes([2])
        adopted = repairer.add_chunks(report.failed_chunks)
        assert adopted == list(report.failed_chunks)
        assert not repairer.done
        assert run_until_done(cluster, repairer)
        assert set(repairer.completed) >= set(report.failed_chunks)
        assert repairer.meter.elapsed > first_elapsed
