"""Background scrubber: paced scanning, detection, repair hand-off."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    FailureInjector,
    MB,
    drop_node_chunks,
    encode_and_load,
    mbs,
    place_stripes,
)
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.integrity import IntegrityLedger, Scrubber
from repro.repair import ConventionalRepair, DataPlane, RepairRunner

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(num_nodes=12, num_stripes=10, seed=0):
    cluster = Cluster(num_nodes=num_nodes, num_clients=0, link_bw=mbs(200))
    store = place_stripes(RSCode(4, 2), num_stripes, cluster.storage_ids,
                          chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    chunk_store = encode_and_load(store, payload_size=64, seed=seed + 1)
    return cluster, store, injector, chunk_store


def make_scrubber(cluster, store, injector, chunk_store, *, rate_mbs=80.0, **kw):
    return Scrubber(cluster, store, chunk_store, injector,
                    rate=mbs(rate_mbs), slice_size=SLICE, **kw)


class TestLifecycle:
    def test_validation(self):
        cluster, store, injector, cs = make_env()
        with pytest.raises(SimulationError):
            make_scrubber(cluster, store, injector, cs, rate_mbs=0)
        with pytest.raises(SimulationError):
            make_scrubber(cluster, store, injector, cs, passes=0)

    def test_cannot_start_twice(self):
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs)
        scrubber.start()
        with pytest.raises(SimulationError):
            scrubber.start()

    def test_stop_halts_scanning(self):
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs)
        scrubber.start()
        cluster.sim.run(until=1.0)
        scrubber.stop()
        assert not scrubber.running
        scanned = scrubber.chunks_scanned
        assert 0 < scanned < len(cs)
        cluster.sim.run(until=5.0)
        # The in-flight scrub may still land; nothing new is issued.
        assert scrubber.chunks_scanned <= scanned + 1
        settled = scrubber.chunks_scanned
        cluster.sim.run(until=10.0)
        assert scrubber.chunks_scanned == settled


class TestScanning:
    def test_one_pass_scans_every_chunk_in_order(self):
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs, passes=1)
        order = []
        scrubber.on("chunk_scrubbed", lambda s, **kw: order.append(kw["chunk"]))
        passes = []
        scrubber.on("pass_complete", lambda s, **kw: passes.append(kw["passes"]))
        scrubber.start()
        cluster.sim.run()
        assert scrubber.chunks_scanned == len(cs)
        assert order == list(cs.chunks())  # deterministic (stripe, index) order
        assert passes == [1] and scrubber.passes_completed == 1
        assert not scrubber.running  # max_passes reached

    def test_scan_is_paced_at_the_target_rate(self):
        # 8 MB chunks at 80 MB/s = one scan per 0.1 s of virtual time;
        # a full pass over 60 chunks should take about 6 s, not less.
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs,
                                 rate_mbs=80.0, passes=1)
        scrubber.start()
        cluster.sim.run()
        expected = len(cs) * CHUNK / mbs(80.0)
        assert cluster.sim.now == pytest.approx(expected, rel=0.1)

    def test_set_rate_repaces_a_live_scan(self):
        """Regression: ``_interval`` was frozen at construction, so a
        rate change was silently ignored. Halving the rate mid-pass must
        double the spacing of subsequent scans and stretch the pass."""
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs,
                                 rate_mbs=80.0, passes=1)
        scrubber.start()
        cluster.sim.run(until=1.0)
        half_pace = scrubber.chunks_scanned
        scrubber.set_rate(mbs(40.0))
        assert scrubber.rate == mbs(40.0)
        cluster.sim.run()
        # 10 scans in the first second (80 MB/s over 8 MB chunks), the
        # remaining 50 at 5/s: about 11 s total instead of 6 s.
        expected = 1.0 + (len(cs) - half_pace) * CHUNK / mbs(40.0)
        assert cluster.sim.now == pytest.approx(expected, rel=0.1)

    def test_set_rate_validation(self):
        cluster, store, injector, cs = make_env()
        scrubber = make_scrubber(cluster, store, injector, cs)
        with pytest.raises(SimulationError):
            scrubber.set_rate(0.0)
        with pytest.raises(SimulationError):
            scrubber.set_rate(-5.0)

    def test_skips_quarantined_and_missing_chunks(self):
        cluster, store, injector, cs = make_env()
        chunks = list(cs.chunks())
        injector.quarantine(chunks[0])
        cs.drop(chunks[1])
        scrubber = make_scrubber(cluster, store, injector, cs, passes=1)
        seen = []
        scrubber.on("chunk_scrubbed", lambda s, **kw: seen.append(kw["chunk"]))
        scrubber.start()
        cluster.sim.run()
        assert chunks[0] not in seen
        assert chunks[1] not in seen
        assert scrubber.chunks_scanned == len(chunks) - 2

    def test_skips_dead_node_chunks(self):
        cluster, store, injector, cs = make_env()
        report = injector.fail_nodes([0])
        lost = drop_node_chunks(cs, store, 0)
        assert lost
        scrubber = make_scrubber(cluster, store, injector, cs, passes=1)
        seen = []
        scrubber.on("chunk_scrubbed", lambda s, **kw: seen.append(kw["chunk"]))
        scrubber.start()
        cluster.sim.run()
        assert not set(report.failed_chunks) & set(seen)
        assert scrubber.chunks_scanned == len(cs)


class TestDetection:
    def test_detects_quarantines_and_records(self):
        cluster, store, injector, cs = make_env()
        ledger = IntegrityLedger(cluster.sim)
        victims = list(cs.chunks())[5:7]
        rng = np.random.default_rng(3)
        for victim in victims:
            cs.corrupt(victim, rng=rng)
            ledger.record_injection(victim, "corruption")
        scrubber = make_scrubber(cluster, store, injector, cs,
                                 ledger=ledger, passes=1)
        hits = []
        scrubber.on("corruption_detected", lambda s, **kw: hits.append(kw["chunk"]))
        scrubber.start()
        cluster.sim.run()
        assert scrubber.detected == victims == hits
        assert all(injector.is_quarantined(v) for v in victims)
        summary = ledger.summary()
        assert summary["detected"] == summary["injected"] == 2
        assert all(r.detected_by == "scrub" for r in ledger.records.values())
        assert all(latency > 0 for latency in ledger.detection_latencies())

    def test_detection_enqueues_to_started_repairer(self):
        cluster, store, injector, cs = make_env()
        report = injector.fail_nodes([0])
        drop_node_chunks(cs, store, 0)
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=2),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        plane = DataPlane(cs, store, injector)
        plane.attach(runner)
        victim = next(c for c in cs.chunks())
        cs.corrupt(victim, rng=np.random.default_rng(4))
        scrubber = make_scrubber(cluster, store, injector, cs,
                                 rate_mbs=200.0, passes=1)
        scrubber.attach(runner)
        runner.repair(report.failed_chunks)
        scrubber.start()
        cluster.sim.run()
        assert runner.done
        assert victim in scrubber.detected
        # The detection flowed through add_chunks into a verified repair:
        assert victim in plane.repaired
        assert cs.matches_truth(victim)
        assert not injector.is_quarantined(victim)  # released on write-back
        plane.verify(deep=True)  # end-of-run audit: nothing unsound remains

    def test_quarantined_detection_not_rescanned(self):
        # Once detected, a still-broken chunk is skipped on later passes
        # (repair owns it) — so it is counted exactly once.
        cluster, store, injector, cs = make_env(num_stripes=4)
        victim = next(iter(cs.chunks()))
        cs.corrupt(victim, rng=np.random.default_rng(5))
        scrubber = make_scrubber(cluster, store, injector, cs,
                                 rate_mbs=400.0, passes=3)
        scrubber.start()
        cluster.sim.run()
        assert scrubber.passes_completed == 3
        assert scrubber.detected == [victim]
