"""Unit tests for chunk-ordering policies, admission, and re-scheduling
internals of the ChameleonEC coordinator."""

import pytest

from repro.cluster import ChunkId, Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import ChameleonRepair
from repro.errors import SchedulingError
from repro.monitor import BandwidthMonitor

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(num_nodes=14, num_stripes=25, seed=0, link=mbs(100)):
    code = RSCode(4, 2)
    cluster = Cluster(num_nodes=num_nodes, num_clients=1, link_bw=link)
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    monitor = BandwidthMonitor(cluster, window=1.0)
    monitor.start()
    return cluster, store, injector, monitor


def make_coord(cluster, store, injector, monitor, **kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("slice_size", SLICE)
    kw.setdefault("t_phase", 5.0)
    return ChameleonRepair(cluster, store, injector, monitor, **kw)


class TestOrderingPolicies:
    def test_sequential_keeps_input_order(self):
        cluster, store, injector, monitor = make_env()
        coord = make_coord(
            cluster, store, injector, monitor, multi_node_policy="sequential"
        )
        chunks = [ChunkId(3, 0), ChunkId(1, 1), ChunkId(2, 2)]
        assert coord._order_chunks(list(chunks)) == chunks

    def test_priority_groups_multi_failure_stripes_first(self):
        cluster, store, injector, monitor = make_env()
        coord = make_coord(cluster, store, injector, monitor, multi_node_policy="priority")
        chunks = [ChunkId(1, 0), ChunkId(2, 0), ChunkId(2, 1), ChunkId(3, 0)]
        ordered = coord._order_chunks(chunks)
        assert ordered[0].stripe == 2 and ordered[1].stripe == 2

    def test_fastest_prefers_cheaper_repairs(self):
        # LRC data chunks (local repair, k/l sources) come before global
        # parity chunks (k sources) under the "fastest" policy.
        from repro.codes import LRCCode

        code = LRCCode(4, 2, 2)
        cluster = Cluster(num_nodes=14, num_clients=0)
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=CHUNK, seed=1)
        injector = FailureInjector(cluster, store)
        monitor = BandwidthMonitor(cluster)
        coord = ChameleonRepair(
            cluster, store, injector, monitor,
            chunk_size=CHUNK, slice_size=SLICE, multi_node_policy="fastest",
        )
        cheap = ChunkId(0, 0)   # data chunk: local repair, 2 sources
        costly = ChunkId(1, 6)  # global parity: k = 4 sources
        ordered = coord._order_chunks([costly, cheap])
        assert ordered[0] == cheap

    def test_max_inflight_validation(self):
        cluster, store, injector, monitor = make_env()
        with pytest.raises(SchedulingError):
            make_coord(cluster, store, injector, monitor, max_inflight=0)


class TestAdmission:
    def test_inflight_cap_respected(self):
        cluster, store, injector, monitor = make_env(num_stripes=40, link=mbs(20))
        report = injector.fail_nodes([0])
        coord = make_coord(
            cluster, store, injector, monitor, max_inflight=3, t_phase=30.0
        )
        coord.repair(report.failed_chunks)
        max_seen = 0
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 0.25)
            max_seen = max(max_seen, len(coord.in_flight))
        assert coord.done
        assert max_seen <= 3

    def test_set_concurrency_retargets_inflight_cap(self):
        cluster, store, injector, monitor = make_env(num_stripes=40, link=mbs(20))
        report = injector.fail_nodes([0])
        coord = make_coord(
            cluster, store, injector, monitor, max_inflight=2, t_phase=30.0
        )
        coord.repair(report.failed_chunks)
        before = dict(coord.in_flight)
        coord.set_concurrency(1)
        # Lowering never cancels: the in-flight repairs keep running.
        assert coord.in_flight == before
        coord.set_concurrency(5)
        assert len(coord.in_flight) > len(before)
        with pytest.raises(SchedulingError):
            coord.set_concurrency(0)
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert coord.done
        assert len(coord.completed) == len(report.failed_chunks)

    def test_refill_happens_within_phase(self):
        cluster, store, injector, monitor = make_env(num_stripes=40, link=mbs(50))
        report = injector.fail_nodes([0])
        coord = make_coord(
            cluster, store, injector, monitor, max_inflight=2, t_phase=1000.0
        )
        coord.repair(report.failed_chunks)
        while not coord.done and cluster.sim.now < 2000:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert coord.done
        # All chunks repaired in a single phase despite the tiny cap.
        assert coord.phase_index == 1
        assert len(coord.completed) == len(report.failed_chunks)

    def test_phase_budget_defers_chunks(self):
        # Tiny t_phase + slow links: only a prefix fits per phase.
        cluster, store, injector, monitor = make_env(num_stripes=40, link=mbs(10))
        report = injector.fail_nodes([0])
        coord = make_coord(cluster, store, injector, monitor, t_phase=1.0)
        coord.repair(report.failed_chunks)
        while not coord.done and cluster.sim.now < 5000:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert coord.done
        assert coord.phase_index > 1


class TestReplanInternals:
    def test_replan_only_once_per_chunk(self):
        cluster, store, injector, monitor = make_env()
        report = injector.fail_nodes([0])
        coord = make_coord(cluster, store, injector, monitor)
        coord.repair(report.failed_chunks[:2])
        cluster.sim.run(until=cluster.sim.now + 0.01)
        chunk, instance = next(iter(coord.in_flight.items()))
        transfer = next(iter(instance.uploads.values()))
        assert coord._replan(instance, transfer) is True
        new_instance = coord.in_flight.get(chunk)
        if new_instance is not None:
            t2 = next(iter(new_instance.uploads.values()))
            assert coord._replan(new_instance, t2) is False
        while not coord.done and cluster.sim.now < 500:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert coord.done

    def test_replan_skipped_when_mostly_done(self):
        cluster, store, injector, monitor = make_env()
        report = injector.fail_nodes([0])
        coord = make_coord(cluster, store, injector, monitor)
        coord.repair(report.failed_chunks[:1])
        # Run until the chunk is nearly complete, then try to replan.
        chunk, instance = next(iter(coord.in_flight.items()))
        while (
            sum(t.bytes_completed for t in instance.uploads.values())
            < 0.5 * sum(t.size for t in instance.uploads.values())
            and cluster.sim.now < 100
        ):
            cluster.sim.run(until=cluster.sim.now + 0.05)
        transfer = next(iter(instance.uploads.values()))
        assert coord._replan(instance, transfer) is False
        while not coord.done and cluster.sim.now < 500:
            cluster.sim.run(until=cluster.sim.now + 1.0)
        assert coord.done
