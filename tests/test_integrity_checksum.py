"""Checksum layer and bit-rot timeline: nothing silent stays silent.

The load-bearing property of the whole integrity subsystem is that the
per-chunk CRC catches *any* single-byte change — a seeded exhaustive
sweep below flips every byte of every stored chunk and demands a
detection each time. The ``rot()`` schedule mirrors ``churn()``'s
determinism contract: same seed, bit-for-bit identical damage.
"""

import numpy as np
import pytest

from repro.cluster import (
    ChunkId,
    ChunkStore,
    Cluster,
    FailureInjector,
    MB,
    encode_and_load,
    mbs,
    place_stripes,
)
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.faults import FaultTimeline, LatentSectorError, SilentCorruption
from repro.integrity import payload_checksum

CHUNK = 16 * MB


def make_env(num_nodes=12, num_stripes=10, seed=0):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), num_stripes, cluster.storage_ids,
                          chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    chunk_store = encode_and_load(store, payload_size=64, seed=seed + 1)
    return cluster, store, injector, chunk_store


class TestChecksumLayer:
    def test_put_records_checksum_and_verifies(self):
        cs = ChunkStore()
        chunk = ChunkId(0, 0)
        payload = np.arange(32, dtype=np.uint8)
        cs.put(chunk, payload, truth=True)
        assert cs.checksum(chunk) == payload_checksum(payload)
        assert cs.verify(chunk)
        assert cs.matches_checksum(chunk, payload)

    def test_put_copies_the_payload(self):
        # Regression: put() must not alias the caller's buffer — later
        # caller-side mutation would silently change "stored" bytes.
        cs = ChunkStore()
        chunk = ChunkId(0, 0)
        payload = np.zeros(16, dtype=np.uint8)
        cs.put(chunk, payload, truth=True)
        payload[0] = 0xFF
        assert cs.get(chunk)[0] == 0
        assert cs.verify(chunk)

    def test_put_coerces_dtype(self):
        cs = ChunkStore()
        chunk = ChunkId(0, 0)
        cs.put(chunk, np.arange(8, dtype=np.int64), truth=True)
        assert cs.get(chunk).dtype == np.uint8

    def test_every_single_byte_flip_is_caught(self):
        # Exhaustive: every chunk, every byte position, a seeded non-zero
        # XOR — the CRC must flag all of them, and a restore must clear.
        _, _, _, cs = make_env(num_stripes=4)
        rng = np.random.default_rng(42)
        for chunk in cs.chunks():
            original = cs.get(chunk).copy()
            for pos in range(original.size):
                tampered = original.copy()
                tampered[pos] ^= int(rng.integers(1, 256))
                cs.put(chunk, tampered)
                assert not cs.verify(chunk), (chunk, pos)
                assert not cs.matches_checksum(chunk, tampered), (chunk, pos)
            cs.put(chunk, original)
            assert cs.verify(chunk), chunk

    def test_corrupt_flips_distinct_bytes_and_is_detected(self):
        _, _, _, cs = make_env()
        chunk = next(iter(cs.chunks()))
        before = cs.get(chunk).copy()
        positions = cs.corrupt(chunk, rng=np.random.default_rng(7), flips=5)
        after = cs.get(chunk)
        assert positions == sorted(set(positions)) and len(positions) == 5
        changed = np.flatnonzero(before != after)
        assert sorted(changed.tolist()) == positions
        assert not cs.verify(chunk)
        assert not cs.matches_truth(chunk)
        # The recorded checksum is untouched: it is the detection oracle.
        assert cs.checksum(chunk) == payload_checksum(before)

    def test_unreadable_chunk_fails_verification(self):
        _, _, _, cs = make_env()
        chunk = next(iter(cs.chunks()))
        assert cs.verify(chunk)
        cs.mark_unreadable(chunk)
        assert cs.is_unreadable(chunk)
        assert not cs.verify(chunk)
        # A fresh (repair) write-back clears the latent sector error.
        cs.put(chunk, cs.truth(chunk))
        assert not cs.is_unreadable(chunk)
        assert cs.verify(chunk)

    def test_checksum_survives_drop(self):
        # A lost payload keeps its checksum: it is the write-back oracle.
        _, _, _, cs = make_env()
        chunk = next(iter(cs.chunks()))
        recorded = cs.checksum(chunk)
        truth = cs.truth(chunk)
        cs.drop(chunk)
        assert not cs.has(chunk)
        assert cs.checksum(chunk) == recorded
        assert cs.matches_checksum(chunk, truth)

    def test_no_checksum_is_vacuously_sound(self):
        cs = ChunkStore()
        chunk = ChunkId(3, 1)
        assert cs.matches_checksum(chunk, np.zeros(4, dtype=np.uint8))


class TestRotSchedule:
    def chunks(self, n=30):
        return [ChunkId(s, i) for s in range(n // 3) for i in range(3)]

    def test_same_seed_same_rot_schedule(self):
        def build(seed):
            return FaultTimeline(seed=seed).rot(
                chunks=self.chunks(), horizon=20.0,
                corruptions=4, sector_errors=3, flips=2,
            )

        a, b = build(11), build(11)
        assert a.sorted_events() == b.sorted_events()
        c = build(12)
        assert c.sorted_events() != a.sorted_events()

    def test_rot_damages_distinct_chunks(self):
        tl = FaultTimeline(seed=5).rot(
            chunks=self.chunks(), horizon=10.0, corruptions=5, sector_errors=5,
        )
        victims = [e.chunk for e in tl.events]
        assert len(victims) == len(set(victims)) == 10
        kinds = {type(e) for e in tl.events}
        assert kinds == {SilentCorruption, LatentSectorError}

    def test_rot_max_per_stripe_caps_stripe_damage(self):
        chunks = self.chunks(30)  # 10 stripes x 3 chunks
        for seed in range(8):
            tl = FaultTimeline(seed=seed).rot(
                chunks=chunks, horizon=10.0, corruptions=6, sector_errors=4,
                max_per_stripe=1,
            )
            stripes = [e.chunk.stripe for e in tl.events]
            assert len(stripes) == 10
            assert len(set(stripes)) == 10  # no stripe hit twice

    def test_rot_max_per_stripe_infeasible_raises(self):
        with pytest.raises(SimulationError, match="per stripe"):
            FaultTimeline(seed=1).rot(
                chunks=self.chunks(30), horizon=10.0, corruptions=11,
                max_per_stripe=1,  # only 10 stripes available
            )

    def test_rot_validation(self):
        tl = FaultTimeline()
        with pytest.raises(SimulationError):
            tl.rot(chunks=[], horizon=10.0, corruptions=1)
        with pytest.raises(SimulationError):
            tl.rot(chunks=self.chunks(3), horizon=10.0,
                   corruptions=2, sector_errors=2)
        with pytest.raises(SimulationError):
            tl.rot(chunks=self.chunks(), horizon=0.0, corruptions=1)

    def test_arming_corruption_requires_chunk_store(self):
        cluster, _, injector, _ = make_env()
        tl = FaultTimeline().corrupt(1.0, ChunkId(0, 0))
        with pytest.raises(SimulationError, match="ChunkStore"):
            tl.arm(cluster, injector)

    def test_same_seed_flips_the_same_bytes(self):
        # Bit-for-bit deterministic injection: two identical worlds rot
        # identically, down to the byte positions flipped.
        def run(seed):
            cluster, _, injector, cs = make_env(seed=3)
            tl = FaultTimeline(seed=seed).rot(
                chunks=list(cs.chunks()), horizon=5.0,
                corruptions=4, sector_errors=2, flips=3,
            )
            tl.arm(cluster, injector, chunk_store=cs)
            damage = []
            tl.on("corrupted",
                  lambda t, **kw: damage.append((kw["chunk"], tuple(kw["positions"]))))
            tl.on("sector_error",
                  lambda t, **kw: damage.append((kw["chunk"], "unreadable")))
            cluster.sim.run(until=6.0)
            assert len(damage) == 6
            return damage

        assert run(21) == run(21)
        assert run(22) != run(21)

    def test_injected_corruption_fails_verification(self):
        cluster, _, injector, cs = make_env()
        victim = next(iter(cs.chunks()))
        tl = (
            FaultTimeline(seed=9)
            .corrupt(1.0, victim, flips=2)
            .sector_error(2.0, None)  # random victim at execution time
        )
        tl.arm(cluster, injector, chunk_store=cs)
        cluster.sim.run(until=3.0)
        assert not cs.verify(victim)
        unsound = [c for c in cs.chunks() if not cs.verify(c)]
        assert len(unsound) == 2  # the explicit victim + the random one
