"""Unit tests for Algorithm 1 (tunable repair-plan establishment)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ChunkId, Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import TaskDispatcher, build_parent_map, build_plan
from repro.core.tasks import ChunkDispatch
from repro.monitor import BandwidthMonitor
from repro.repair import execute_plan

CHUNK = 16 * MB


def make_dispatch(source_downloads, dest_downloads, destination=99):
    """Hand-craft a ChunkDispatch with the given download distribution."""
    participants = sorted(source_downloads)
    return ChunkDispatch(
        chunk=ChunkId(0, 0),
        destination=destination,
        participants=participants,
        chunk_indices={n: i + 1 for i, n in enumerate(participants)},
        source_downloads={n: d for n, d in source_downloads.items() if d > 0},
        dest_downloads=dest_downloads,
    )


class TestParentMap:
    def test_star_when_all_downloads_at_destination(self):
        d = make_dispatch({1: 0, 2: 0, 3: 0, 4: 0}, dest_downloads=4)
        parent = build_parent_map(d)
        assert parent == {1: 99, 2: 99, 3: 99, 4: 99}

    def test_paper_example_figure9(self):
        # Fig. 8/9: sources N1, N3, N4, N7; N3 has two downloads, N4 one;
        # destination (N6) has one. The plan pairs the no-download
        # sources into the relays and N3's leftover upload feeds N6.
        d = make_dispatch({1: 0, 3: 2, 4: 1, 7: 0}, dest_downloads=1, destination=6)
        parent = build_parent_map(d)
        # Exactly one edge into the destination.
        assert sum(1 for v in parent.values() if v == 6) == 1
        # N3 receives two uploads, N4 one.
        incoming = {}
        for x, y in parent.items():
            incoming[y] = incoming.get(y, 0) + 1
        assert incoming[3] == 2
        assert incoming[4] == 1

    def test_every_source_uploads_exactly_once(self):
        d = make_dispatch({1: 1, 2: 1, 3: 0, 4: 0}, dest_downloads=2)
        parent = build_parent_map(d)
        assert set(parent) == {1, 2, 3, 4}

    def test_fewest_downloads_paired_first(self):
        d = make_dispatch({1: 0, 2: 1, 3: 1}, dest_downloads=1)
        # downloads: 2 at sources + 1 dest = 3 = uploads count (3 sources).
        parent = build_parent_map(d)
        # Node 2 (fewest downloads, lowest id on ties) is targeted first.
        assert parent[1] == 2
        assert parent[2] == 3
        assert parent[3] == 99

    def test_single_source(self):
        d = make_dispatch({5: 0}, dest_downloads=1)
        assert build_parent_map(d) == {5: 99}

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_distributions_form_valid_trees(self, k, seed):
        # Any dispatch with r uploads, r downloads (dest >= 1) must yield
        # a valid in-tree: every source reaches the destination.
        rng = np.random.default_rng(seed)
        nodes = list(range(1, k + 1))
        dest_downloads = int(rng.integers(1, k + 1))
        remaining = k - dest_downloads
        downloads = {n: 0 for n in nodes}
        # Spread remaining downloads so at least one source stays at zero.
        eligible = nodes[:-1] if k > 1 else nodes
        for _ in range(remaining):
            downloads[int(rng.choice(eligible))] += 1
        d = make_dispatch(downloads, dest_downloads)
        parent = build_parent_map(d)
        for start in nodes:
            seen, cur = set(), start
            while cur != 99:
                assert cur not in seen
                seen.add(cur)
                cur = parent[cur]
        assert sum(1 for v in parent.values() if v == 99) == dest_downloads


class TestBuildPlan:
    def make_env(self):
        code = RSCode(4, 2)
        cluster = Cluster(num_nodes=12, num_clients=0, link_bw=mbs(100))
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=CHUNK, seed=1)
        injector = FailureInjector(cluster, store)
        monitor = BandwidthMonitor(cluster)
        dispatcher = TaskDispatcher(injector, monitor, chunk_size=CHUNK)
        return code, cluster, store, injector, dispatcher

    def test_dispatched_plan_decodes_correctly(self):
        code, cluster, store, injector, dispatcher = self.make_env()
        report = injector.fail_nodes([0])
        rng = np.random.default_rng(3)
        data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(code.k)]
        stripe_bytes = code.encode(data)
        dispatcher.begin_phase()
        for chunk in report.failed_chunks[:5]:
            dispatch = dispatcher.dispatch_chunk(chunk, code)
            plan = build_plan(dispatch, code, injector)
            chunk_data = {s.chunk_index: stripe_bytes[s.chunk_index] for s in plan.sources}
            repaired = execute_plan(plan, chunk_data)
            assert np.array_equal(repaired, stripe_bytes[chunk.index])

    def test_plan_download_counts_match_dispatch(self):
        code, cluster, store, injector, dispatcher = self.make_env()
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        # Congest destinations to force relays.
        chunk = report.failed_chunks[0]
        for node in injector.candidate_destinations(chunk):
            dispatcher.load.down[node] += 8
        dispatch = dispatcher.dispatch_chunk(chunk, code)
        plan = build_plan(dispatch, code, injector)
        counts = plan.download_counts()
        for node, expected in dispatch.source_downloads.items():
            assert counts.get(node, 0) == expected
        assert counts[plan.destination] == dispatch.dest_downloads
