"""End-to-end chaos suite + SLO gate (repro.experiments.exp17_chaos)."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.exp17_chaos import (
    CHUNK_MB,
    HEADERS,
    probe_specs,
    rows,
    run_one,
    verdict_payload,
    write_bench,
)
from repro.slo import SLOSpec


def _config():
    return ExperimentConfig.scaled(0.05, seed=0, chunk_mb=CHUNK_MB,
                                   trace="YCSB-A")


@pytest.fixture(scope="module")
def chaos_pair():
    """The same seeded chaos run executed twice, for equivalence checks."""
    return run_one(_config()), run_one(_config())


class TestGate:
    def test_gate_passes_under_composed_chaos(self, chaos_pair):
        run, _ = chaos_pair
        assert run.gate.passed, [b.to_dict() for b in run.gate.breaches]
        assert [v.spec.kind for v in run.gate.verdicts] == [
            "foreground_p99_inflation",
            "repair_deadline",
            "detection_latency",
            "zero_loss",
        ]

    def test_every_corruption_detected_and_restored(self, chaos_pair):
        run, _ = chaos_pair
        assert run.injected > 0
        assert run.detected == run.injected
        assert run.restored == run.injected

    def test_zero_loss_observed_zero(self, chaos_pair):
        run, _ = chaos_pair
        assert run.gate.verdict("chaos.zero-loss").observed == 0.0

    def test_per_tag_attribution_saw_all_three_classes(self, chaos_pair):
        run, _ = chaos_pair
        assert run.repair_bw_peak_mbs > 0
        assert run.scrub_bw_peak_mbs > 0
        assert run.foreground_bw_mean_mbs > 0


class TestProbeBreaches:
    def test_tight_probe_always_breaches(self, chaos_pair):
        """The acceptance criterion: an intentionally-tight spec yields
        at least one breach record carrying a virtual timestamp."""
        run, _ = chaos_pair
        assert run.probe.breaches
        for breach in run.probe.breaches:
            assert breach.time > 0.0
            assert breach.observed > breach.threshold

    def test_instant_repair_deadline_is_among_the_breaches(self, chaos_pair):
        run, _ = chaos_pair
        verdict = run.probe.verdict("probe.repair-instant")
        assert not verdict.passed
        (breach,) = verdict.breaches
        # The breach observes the full repair time and lands at the
        # virtual finish timestamp (after the repair ran that long).
        assert breach.observed == pytest.approx(run.repair_time)
        assert breach.time >= breach.observed

    def test_probe_specs_are_valid_specs(self):
        assert all(isinstance(s, SLOSpec) for s in probe_specs())


class TestDeterminism:
    def test_same_seed_same_verdict_document(self, chaos_pair):
        """Two same-seed runs serialise to byte-identical JSON."""
        first, second = chaos_pair
        a = verdict_payload({"YCSB-A": first}, scale=0.05, seed=0)
        b = verdict_payload({"YCSB-A": second}, scale=0.05, seed=0)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestBenchDocument:
    def test_write_bench_round_trips(self, chaos_pair, tmp_path):
        run, _ = chaos_pair
        path = tmp_path / "BENCH_chaos.json"
        payload = write_bench({"YCSB-A": run}, str(path), scale=0.05, seed=0)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))
        assert on_disk["experiment"] == "exp17_chaos"
        assert on_disk["schema_version"] == 1
        assert on_disk["passed"] is True
        assert on_disk["probe_breaches_total"] > 0
        block = on_disk["traces"]["YCSB-A"]
        assert set(block) == {"passed", "slos", "tight_probe", "summary"}
        breach = block["tight_probe"]["verdicts"][1]["breaches"][0]
        assert breach["time"] > 0.0

    def test_rows_match_headers(self, chaos_pair):
        run, _ = chaos_pair
        (row,) = rows({"YCSB-A": run})
        assert len(row) == len(HEADERS)
        assert row[1] == "PASS"


class TestTestbedSLOWiring:
    def test_evaluate_without_declared_slos_raises(self):
        from repro.api import Testbed

        testbed = Testbed.build(ExperimentConfig.scaled(0.05))
        with pytest.raises(ReproError, match="no SLOs declared"):
            testbed.evaluate_slos()

    def test_builder_with_slos_accumulates(self):
        from repro.api import TestbedBuilder

        testbed = (TestbedBuilder()
                   .scaled(0.05)
                   .with_slos(SLOSpec("a", "zero_loss", 0.0))
                   .with_slos(SLOSpec("b", "repair_deadline", 100.0))
                   .build())
        report = testbed.evaluate_slos()
        assert [v.spec.name for v in report.verdicts] == ["a", "b"]
        assert report.passed
