"""Targeted columnar-kernel unit tests.

The randomized batteries in ``test_allocator_equivalence.py`` hold the
columnar path to bit-identical behaviour over hundreds of seeds; the
tests here pin down the specific edge cases a random walk is unlikely
to land on — zero-byte and zero-rate flows, mid-window cancellation,
duplicate resource membership, slot compaction under churn, the live
byte view, and the kernel's binding errors.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    ColumnarFlowScheduler,
    ColumnarRateAllocator,
    Flow,
    FlowKernel,
    FlowScheduler,
    RateAllocator,
    Resource,
    Simulator,
)


def both_schedulers():
    """The dict reference and the columnar challenger, as factories."""
    return [
        ("dict", lambda sim: FlowScheduler(sim, allocator=RateAllocator())),
        ("columnar", lambda sim: ColumnarFlowScheduler(sim)),
    ]


class TestKernelBinding:
    def test_register_resource_is_idempotent(self):
        kernel = FlowKernel()
        res = Resource("r", 10.0)
        slot = kernel.register_resource(res)
        assert kernel.register_resource(res) == slot
        assert kernel.res_objects[slot] is res

    def test_resource_cannot_bind_to_two_kernels(self):
        res = Resource("r", 10.0)
        FlowKernel().register_resource(res)
        with pytest.raises(SimulationError, match="already bound"):
            FlowKernel().register_resource(res)

    def test_capacity_setter_mirrors_into_kernel(self):
        kernel = FlowKernel()
        res = Resource("r", 10.0)
        slot = kernel.register_resource(res)
        res.set_capacity(42.0)
        assert kernel.res_capacity[slot] == 42.0
        res.capacity = 7.0
        assert kernel.res_capacity[slot] == 7.0

    def test_scheduler_rejects_mismatched_allocator_kernel(self):
        with pytest.raises(SimulationError, match="different kernel"):
            ColumnarFlowScheduler(
                Simulator(),
                allocator=ColumnarRateAllocator(),
                kernel=FlowKernel(),
            )


class TestZeroCases:
    def test_zero_byte_flow_completes_at_start_instant(self):
        done = {}
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            res = Resource("r", 100.0)
            flow = Flow("empty", 0.0, (res,))
            sim.schedule(1.5, lambda f=flow: sched.start_flow(f))
            sim.run()
            done[label] = flow.completed_at
        assert done["columnar"] == done["dict"] == 1.5

    def test_settle_at_zero_rate_moves_nothing(self):
        kernel = FlowKernel()
        res = Resource("r", 10.0)
        flow = Flow("stalled", 100.0, (res,))
        slot = kernel.attach(flow)
        assert kernel.rate[slot] == 0.0
        kernel.settle(np.array([slot]), 5.0)
        assert kernel.remaining[slot] == 100.0
        assert kernel.settled_at[slot] == 5.0
        assert kernel.min_eta() == float("inf")
        assert kernel.due_slots(1e9).size == 0


class TestMidWindowCancel:
    def test_mid_window_cancel_matches_dict_exactly(self):
        """Cancel one of two competitors mid-window: the survivor's
        completion time and both tags' byte totals must match the dict
        path (times exactly, bytes to accumulation-order noise)."""
        results = {}
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            res = Resource("r", 100.0)
            keep = Flow("keep", 400.0, (res,), tag="keep")
            gone = Flow("gone", 400.0, (res,), tag="gone")
            sched.start_flow(keep)
            sched.start_flow(gone)
            sim.schedule(3.0, lambda: sched.cancel_flow(gone))
            sim.run()
            results[label] = (keep.completed_at, gone.cancelled,
                              res.bytes_for("keep"), res.bytes_for("gone"))
        d, c = results["dict"], results["columnar"]
        assert c[0] == d[0] == 5.5  # 150 by t=3 at 50/s, 250 more at 100/s
        assert c[1] is True and d[1] is True
        assert c[2] == pytest.approx(d[2], rel=1e-12)
        # The cancelled flow's partial progress is still accounted.
        assert c[3] == pytest.approx(d[3], rel=1e-12)
        assert d[3] == pytest.approx(150.0)

    def test_cancel_before_any_progress(self):
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            res = Resource("r", 100.0)
            flow = Flow("f", 50.0, (res,))
            sched.start_flow(flow)
            sched.cancel_flow(flow)  # same instant, zero elapsed
            sim.run()
            assert flow.cancelled, label
            assert flow.completed_at is None, label
            assert res.total_bytes == 0.0, label


class TestDuplicateResourceMembership:
    def test_duplicate_occurrences_charge_bytes_per_occurrence(self):
        """A resource listed twice bounds the rate once (dedup) but is
        charged bytes once per occurrence — on both paths."""
        results = {}
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            res = Resource("r", 100.0)
            flow = Flow("dup", 200.0, (res, res), tag="x")
            sched.start_flow(flow)
            sim.run()
            results[label] = (flow.completed_at, res.bytes_for("x"))
        d, c = results["dict"], results["columnar"]
        assert c[0] == d[0] == 2.0  # rate 100, not 50: membership dedups
        assert c[1] == pytest.approx(d[1], rel=1e-12)
        assert d[1] == pytest.approx(400.0)  # bytes charged twice


class TestCompactionUnderChurn:
    @staticmethod
    def _churn(make_scheduler):
        """One long-lived flow plus 120 short sequential flows: enough
        attach/detach churn to force slot growth and compaction."""
        sim = Simulator()
        sched = make_scheduler(sim)
        res = Resource("r", 100.0)
        slow = Flow("slow", 30_000.0, (res,))
        sched.start_flow(slow)
        shorts = []
        for i in range(120):
            f = Flow(f"s{i}", 10.0, (res,))
            shorts.append(f)
            sim.schedule(1.0 + i * 2.0, lambda f=f: sched.start_flow(f))
        sim.run()
        return [f.completed_at for f in [slow, *shorts]]

    def test_compaction_preserves_timeline_exactly(self):
        kernel = FlowKernel(capacity=16)
        dict_timeline = self._churn(
            lambda sim: FlowScheduler(sim, allocator=RateAllocator())
        )
        col_timeline = self._churn(
            lambda sim: ColumnarFlowScheduler(sim, kernel=kernel)
        )
        assert col_timeline == dict_timeline
        # 121 flows passed through, yet compaction kept the slot space
        # bounded by the live population, not the total churn.
        assert kernel.hi <= 64
        assert kernel.n_alive == 0

    def test_cancel_after_compaction_conserves_bytes(self):
        """Cancelling a flow that survived several compaction cycles must
        still detach the right row and fold its progress back.

        The resource runs at full capacity the whole time (the long flow
        absorbs whatever the shorts leave), so after the cancel at t=500
        total accounted bytes must equal capacity x elapsed exactly.
        """
        sim = Simulator()
        kernel = FlowKernel(capacity=16)
        sched = ColumnarFlowScheduler(sim, kernel=kernel)
        res = Resource("r", 100.0)
        slow = Flow("slow", 1e9, (res,))
        sched.start_flow(slow)
        for i in range(80):
            f = Flow(f"s{i}", 10.0, (res,))
            sim.schedule(1.0 + i * 2.0, lambda f=f: sched.start_flow(f))
        sim.schedule(500.0, lambda: sched.cancel_flow(slow))
        sim.run()
        assert slow.cancelled
        assert kernel.n_alive == 0
        assert res.total_bytes == pytest.approx(500.0 * 100.0)


class TestLiveByteView:
    def test_mid_flight_byte_view_matches_dict(self):
        """While flows are still moving, the kernel-backed byte view must
        agree with the dict path's settled counters."""
        results = {}
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            res = Resource("r", 100.0)
            a = Flow("a", 500.0, (res,), tag="fg")
            b = Flow("b", 500.0, (res,), tag="bg")
            sched.start_flow(a)
            sched.start_flow(b)
            sim.run(until=2.0)
            sched.settle_now()
            results[label] = dict(res.bytes_by_tag)
        d, c = results["dict"], results["columnar"]
        assert set(d) == set(c)
        for tag in d:
            assert c[tag] == pytest.approx(d[tag], rel=1e-12), tag
        assert d["fg"] == pytest.approx(100.0)  # 2s at a 50/50 split

    def test_byte_view_is_a_snapshot_not_the_counter(self):
        """The kernel-attached view must not hand out the mutable dict."""
        sim = Simulator()
        sched = ColumnarFlowScheduler(sim)
        res = Resource("r", 100.0)
        sched.start_flow(Flow("f", 500.0, (res,), tag="x"))
        sim.run(until=1.0)
        view = res.bytes_by_tag
        view["x"] = 1e9
        assert res.bytes_for("x") != 1e9


class TestEtaOrdering:
    def test_tied_etas_fire_in_the_same_order_on_both_paths(self):
        """Flows finishing at the same instant must fire completions in
        the same deterministic order on both paths (heap push-seq on the
        dict path, eta_seq lexsort on the columnar path)."""
        orders = {}
        for label, make in both_schedulers():
            sim = Simulator()
            sched = make(sim)
            finished = []
            for i in range(4):
                res = Resource(f"r{i}", 100.0)
                flow = Flow(f"f{i}", 200.0, (res,))
                flow.on_complete.append(lambda f: finished.append(f.name))
                sched.start_flow(flow)
            sim.run()
            orders[label] = finished
        assert orders["columnar"] == orders["dict"]
        assert sorted(orders["dict"]) == ["f0", "f1", "f2", "f3"]
