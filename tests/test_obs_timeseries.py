"""Virtual-time series sampling (repro.obs.timeseries + Simulator.every)."""

import pytest

from repro.api import Testbed, TestbedBuilder
from repro.errors import ReproError, SimulationError
from repro.experiments.config import ExperimentConfig
from repro.metrics.latency import LatencyRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Series, TimeseriesRecorder, _window_delta
from repro.sim.engine import Simulator


class TestSeries:
    def test_append_and_views(self):
        s = Series("x")
        s.append(1.0, 10.0)
        s.append(2.0, 30.0)
        assert len(s) == 2
        assert s.last == 30.0
        assert s.max() == 30.0
        assert s.mean() == 20.0
        assert s.to_dict() == {
            "name": "x", "times": [1.0, 2.0], "values": [10.0, 30.0]
        }

    def test_empty_views(self):
        s = Series("x")
        assert s.last == 0.0
        assert s.max() == 0.0
        assert s.mean() == 0.0


class TestPeriodicHook:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        hook = sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]
        assert hook.fires == 3

    def test_cancel_stops_firing(self):
        sim = Simulator()
        ticks = []
        hook = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=2.5)
        hook.cancel()
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert hook.cancelled

    def test_callback_may_cancel_its_own_hook(self):
        sim = Simulator()
        ticks = []
        hook = sim.every(1.0, lambda: (ticks.append(sim.now), hook.cancel()))
        sim.run(until=5.0)
        assert ticks == [1.0]

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


class TestRecorderSampling:
    def test_window_must_be_positive(self):
        with pytest.raises(ReproError):
            TimeseriesRecorder(Simulator(), window=0.0)

    def test_counter_becomes_rate(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        requests = registry.counter("requests")
        recorder.start()
        sim.schedule(0.5, lambda: requests.inc(10))
        sim.schedule(1.5, lambda: requests.inc(4))
        sim.run(until=2.0)
        assert recorder.get("rate.requests").values == [10.0, 4.0]
        assert recorder.get("rate.requests").times == [1.0, 2.0]

    def test_gauge_sampled_point_in_time(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        depth = registry.gauge("queue.depth")
        recorder.start()
        sim.schedule(0.2, lambda: depth.set(7))
        sim.schedule(1.2, lambda: depth.set(3))
        sim.run(until=2.0)
        assert recorder.get("gauge.queue.depth").values == [7.0, 3.0]

    def test_histogram_window_deltas_are_windowed(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        hist = registry.histogram("lat")
        recorder.start()
        sim.schedule(0.5, lambda: [hist.observe(v) for v in (1.0, 2.0, 3.0)])
        sim.schedule(1.5, lambda: hist.observe(100.0))
        sim.run(until=2.0)
        counts = recorder.get("hist.lat.count").values
        means = recorder.get("hist.lat.mean").values
        assert counts == [3.0, 1.0]
        assert means[0] == pytest.approx(2.0)
        # Window two's mean reflects only the 100.0 sample, not the
        # cumulative distribution.
        assert means[1] == pytest.approx(100.0)
        assert recorder.get("hist.lat.p99").values[1] == pytest.approx(
            100.0, rel=0.06
        )

    def test_metrics_created_after_start_are_picked_up(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        recorder.start()
        sim.schedule(1.5, lambda: registry.counter("late").inc(6))
        sim.run(until=3.0)
        # First window closes before the counter exists; the rate series
        # still reports the full delta in the window it first appears.
        assert 6.0 in recorder.get("rate.late").values

    def test_latency_percentiles_per_window(self):
        sim = Simulator()
        recorder = TimeseriesRecorder(sim, window=1.0)
        lat = LatencyRecorder("fg")
        recorder.track_latency(lat, percentiles=(50.0, 99.0))
        recorder.start()
        sim.schedule(0.5, lambda: [lat.record(v) for v in (0.1, 0.2, 0.3)])
        sim.run(until=2.0)
        assert recorder.get("lat.fg.count").values == [3.0, 0.0]
        assert recorder.get("lat.fg.p50").values[0] == pytest.approx(0.2)
        # An empty window samples 0.0 (and its count says why).
        assert recorder.get("lat.fg.p50").values[1] == 0.0

    def test_duplicate_latency_source_rejected(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        lat = LatencyRecorder("fg")
        recorder.track_latency(lat)
        with pytest.raises(ReproError):
            recorder.track_latency(lat)

    def test_start_twice_rejected_and_stop_idempotent(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        recorder.start()
        assert recorder.started
        with pytest.raises(ReproError):
            recorder.start()
        recorder.stop()
        recorder.stop()
        assert not recorder.started

    def test_stop_closes_final_partial_window_with_true_rate(self):
        """Regression: activity between the last window boundary and
        ``stop()`` used to vanish, and a hypothetical closing sample
        would have divided by the full window, deflating the rate. The
        partial window must close on stop and scale by actual elapsed
        span: 3 increments over 0.5s = 6.0/s, not 3.0/s."""
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        requests = registry.counter("requests")
        recorder.start()
        sim.schedule(0.5, lambda: requests.inc(10))
        sim.schedule(2.2, lambda: requests.inc(3))
        sim.run(until=2.5)
        recorder.stop()
        series = recorder.get("rate.requests")
        assert series.times == [1.0, 2.0, 2.5]
        assert series.values == [10.0, 0.0, 6.0]

    def test_stop_at_boundary_does_not_emit_empty_window(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        registry.counter("requests").inc()
        recorder.start()
        sim.run(until=2.0)
        windows = recorder.windows_closed
        recorder.stop()  # sim.now == the last boundary: nothing to close
        assert recorder.windows_closed == windows
        assert recorder.get("rate.requests").times == [1.0, 2.0]

    def test_latest_and_last_close(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        requests = registry.counter("requests")
        assert recorder.last_close is None
        assert recorder.latest("rate.requests") == 0.0
        assert recorder.latest("rate.requests", default=-1.0) == -1.0
        recorder.start()
        sim.schedule(0.5, lambda: requests.inc(4))
        sim.run(until=1.0)
        assert recorder.last_close == 1.0
        assert recorder.latest("rate.requests") == 4.0

    def test_unknown_series_raises_with_hint(self):
        recorder = TimeseriesRecorder(Simulator(), window=1.0)
        with pytest.raises(ReproError, match="no timeseries"):
            recorder.get("rate.nope")

    def test_to_dict_prefix_filter(self):
        sim = Simulator()
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(sim, window=1.0)
        recorder.track_registry(registry)
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        recorder.start()
        sim.run(until=1.0)
        assert set(recorder.to_dict()) == {"rate.a", "gauge.b"}
        assert set(recorder.to_dict(prefix="rate.")) == {"rate.a"}


class TestWindowDeltaInvariants:
    def test_window_counts_sum_to_cumulative(self):
        from repro.obs.metrics import Histogram
        from repro.obs.timeseries import _HistShadow

        hist = Histogram("h")
        shadow = _HistShadow(0, 0.0, 0, {})
        total_windowed = 0
        values = [0.0, 0.5, 1.0, 2.0, 40.0, 0.0, 7.5, 1e6]
        for i, v in enumerate(values):
            hist.observe(v)
            if i % 3 == 2:
                delta = _window_delta(hist, shadow)
                total_windowed += delta.count
                shadow = _HistShadow(
                    hist.count, hist.total, hist._zeros, dict(hist._buckets)
                )
        delta = _window_delta(hist, shadow)
        total_windowed += delta.count
        assert total_windowed == hist.count

    def test_delta_extremes_clamped_to_cumulative(self):
        from repro.obs.metrics import Histogram
        from repro.obs.timeseries import _HistShadow

        hist = Histogram("h")
        hist.observe(5.0)
        shadow = _HistShadow(
            hist.count, hist.total, hist._zeros, dict(hist._buckets)
        )
        hist.observe(6.0)
        delta = _window_delta(hist, shadow)
        assert delta.count == 1
        assert delta.min >= hist.min
        assert delta.max <= hist.max


class TestPerTagAttribution:
    def test_repair_and_scrub_shares_break_out(self):
        testbed = (TestbedBuilder()
                   .scaled(0.05)
                   .with_options(chunk_mb=16.0)
                   .with_timeseries(window=0.5)
                   .with_integrity()
                   .build())
        testbed.start_foreground()
        testbed.cluster.sim.run(until=1.0)
        report = testbed.fail_nodes(1)
        testbed.start_scrubber(rate_mbs=100.0)
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.run_until(lambda: repairer.done, step=0.5)
        testbed.scrubber.stop()
        testbed.stop_foreground()
        testbed.run_until(testbed.foreground_done, step=0.5)
        ts = testbed.timeseries
        assert ts.get("bw.total.foreground").max() > 0
        assert ts.get("bw.total.repair").max() > 0
        assert ts.get("bw.total.scrub").max() > 0
        # Before the failure, no repair bytes moved anywhere.
        repair_bw = ts.get("bw.total.repair")
        pre_failure = [v for t, v in zip(repair_bw.times, repair_bw.values)
                       if t <= 1.0]
        assert all(v == 0.0 for v in pre_failure)
        # Per-resource series exist for every cluster resource.
        some_node = testbed.cluster.storage_nodes[0]
        uplink = some_node.uplink.name
        assert f"bw.{uplink}.repair" in ts.names()


def _drive_scenario(config: ExperimentConfig, *, timeseries: bool):
    """One fixed scripted run; returns its observable outcome state."""
    testbed = Testbed.build(config)
    if timeseries:
        testbed.enable_timeseries(window=0.5)
    testbed.start_foreground()
    testbed.cluster.sim.run(until=1.0)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)
    testbed.run_until(lambda: repairer.done, step=0.5)
    if timeseries:
        testbed.timeseries.stop()
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=0.5)
    resources = {}
    for node in testbed.cluster.storage_nodes + testbed.cluster.clients:
        for res in node.all_resources():
            resources[res.name] = dict(res.bytes_by_tag)
    return {
        "finished_at": repairer.meter.finished_at,
        "repaired_bytes": repairer.meter.repaired_bytes,
        "latency_samples": list(testbed.latency.samples),
        "resources": resources,
    }


class TestDeterminismEquivalence:
    def test_sampling_does_not_perturb_the_simulation(self):
        """The acceptance criterion: a run with the recorder installed is
        byte-identical (timing, latency samples, per-tag byte counters)
        to a sampler-free run."""
        config = ExperimentConfig.scaled(0.05, chunk_mb=16.0)
        with_ts = _drive_scenario(config, timeseries=True)
        without = _drive_scenario(config, timeseries=False)
        assert with_ts == without
