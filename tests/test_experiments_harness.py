"""Integration tests: the experiment harness end to end (tiny scale)."""

import pytest

from repro.errors import ReproError
from repro.experiments import (
    ExperimentConfig,
    format_table,
    run_repair_experiment,
    run_sim_until,
    run_trace_only,
    run_trace_with_repair,
)

TINY = dict(scale=0.03)


def tiny_config(**overrides):
    return ExperimentConfig.scaled(0.03, **overrides)


class TestRunRepairExperiment:
    def test_with_foreground(self):
        result = run_repair_experiment(tiny_config(), "CR")
        assert result.chunks == 6
        assert result.throughput > 0
        assert result.repair_time > 0
        assert result.p99_latency > 0
        assert result.foreground_requests > 0

    def test_without_foreground(self):
        result = run_repair_experiment(tiny_config(), "ChameleonEC", foreground=False)
        assert result.trace == "none"
        assert result.p99_latency == 0.0
        assert result.throughput > 0

    def test_multi_node(self):
        result = run_repair_experiment(
            tiny_config(), "ChameleonEC", failed_nodes=2, foreground=False
        )
        assert result.throughput > 0

    def test_trace_override(self):
        result = run_repair_experiment(tiny_config(), "CR", trace="Memcached")
        assert result.trace == "Memcached"

    def test_throughput_mbs_property(self):
        result = run_repair_experiment(tiny_config(), "CR", foreground=False)
        assert result.throughput_mbs == pytest.approx(result.throughput / 1e6)


class TestTraceTiming:
    def test_trace_only_and_with_repair(self):
        cfg = tiny_config()
        baseline = run_trace_only(cfg, requests_per_client=80)
        assert baseline > 0
        with_repair, result = run_trace_with_repair(
            cfg, "CR", requests_per_client=80
        )
        assert with_repair > 0
        assert result.chunks == 6
        # Repair contention cannot make the trace *faster* by much.
        assert with_repair >= baseline * 0.9


class TestRunSimUntil:
    def test_timeout_raises(self):
        from repro.api import Testbed

        scenario = Testbed.build(tiny_config())
        with pytest.raises(ReproError):
            run_sim_until(scenario.cluster, lambda: False, step=1.0, limit=5.0)

    def test_timeout_is_a_runtime_error_with_guidance(self):
        """Hitting the virtual-time limit raises ConvergenceError — a
        RuntimeError callers can catch generically — whose message names
        the limit, the clock, and the likely causes."""
        from repro.errors import ConvergenceError
        from repro.api import Testbed

        scenario = Testbed.build(tiny_config())
        with pytest.raises(ConvergenceError) as excinfo:
            run_sim_until(scenario.cluster, lambda: False, step=1.0, limit=5.0)
        assert isinstance(excinfo.value, RuntimeError)
        assert isinstance(excinfo.value, ReproError)
        message = str(excinfo.value)
        assert "5.0" in message  # the limit that was hit
        assert "limit" in message
        assert "crashed coordinator" in message  # points at the usual stall

    def test_skips_to_next_event_instead_of_stepping(self):
        # A single event far in the future: the old fixed-step loop
        # needed distance/step run() calls; the new loop jumps straight
        # to the event.
        from repro.sim import Simulator

        class FakeCluster:
            sim = Simulator()

        fired = []
        FakeCluster.sim.schedule(10_000.0, lambda: fired.append(1))
        calls = 0
        original_run = FakeCluster.sim.run

        def counting_run(until=None):
            nonlocal calls
            calls += 1
            return original_run(until=until)

        FakeCluster.sim.run = counting_run
        end = run_sim_until(FakeCluster(), lambda: bool(fired), step=5.0)
        assert fired and end >= 10_000.0
        assert calls <= 2

    def test_empty_queue_advances_clock_to_satisfy_time_predicate(self):
        from repro.sim import Simulator

        class FakeCluster:
            sim = Simulator()

        cluster = FakeCluster()
        end = run_sim_until(cluster, lambda: cluster.sim.now >= 50.0, limit=100.0)
        assert end == 100.0
        assert cluster.sim.now == 100.0

    def test_empty_queue_with_unsatisfiable_predicate_raises(self):
        from repro.sim import Simulator

        class FakeCluster:
            sim = Simulator()

        with pytest.raises(ReproError):
            run_sim_until(FakeCluster(), lambda: False, limit=10.0)

    def test_peek_next_time(self):
        from repro.sim import Simulator

        sim = Simulator()
        assert sim.peek_next_time() is None
        event = sim.schedule(3.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        assert sim.peek_next_time() == 3.0
        event.cancel()
        assert sim.peek_next_time() == 7.0
        sim.run()
        assert sim.peek_next_time() is None


class TestFormatTable:
    def test_layout(self):
        table = format_table("T", ["a", "bb"], [[1, 2.5], ["x", 0.001]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        table = format_table("T", ["col"], [])
        assert "col" in table

    def test_float_formatting(self):
        assert "0.001" in format_table("t", ["x"], [[0.001]])
        assert "1.23e+04" in format_table("t", ["x"], [[12345.6]])
