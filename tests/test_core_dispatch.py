"""Unit tests for ChameleonEC task dispatch (Section III-A)."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import ButterflyCode, LRCCode, RSCode
from repro.core import TaskDispatcher, repair_candidates
from repro.errors import SchedulingError
from repro.monitor import BandwidthMonitor

CHUNK = 16 * MB


def make_env(code=None, num_nodes=12, num_stripes=10, seed=0):
    code = code if code is not None else RSCode(4, 2)
    cluster = Cluster(num_nodes=num_nodes, num_clients=0, link_bw=mbs(100))
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    monitor = BandwidthMonitor(cluster)
    dispatcher = TaskDispatcher(injector, monitor, chunk_size=CHUNK)
    return cluster, store, injector, monitor, dispatcher


class TestCandidates:
    def test_rs_all_survivors_candidates(self):
        code = RSCode(4, 2)
        survivors = {i: 100 + i for i in range(1, 6)}
        cands, required = repair_candidates(code, 0, survivors)
        assert cands == survivors
        assert required == 4

    def test_rs_insufficient_survivors(self):
        code = RSCode(4, 2)
        with pytest.raises(SchedulingError):
            repair_candidates(code, 0, {1: 101, 2: 102, 3: 103})

    def test_lrc_local_candidates_fixed(self):
        code = LRCCode(4, 2, 2)
        survivors = {i: 100 + i for i in range(1, 8)}
        cands, required = repair_candidates(code, 0, survivors)
        assert required == 2  # k/l = 2 sources
        assert set(cands) <= {1, 4}  # group member + local parity

    def test_butterfly_candidates(self):
        code = ButterflyCode()
        survivors = {1: 101, 2: 102, 3: 103}
        cands, required = repair_candidates(code, 0, survivors)
        assert required == 3
        assert set(cands) == {1, 2, 3}


class TestDispatch:
    def test_task_conservation(self):
        cluster, store, injector, monitor, dispatcher = make_env()
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        d = dispatcher.dispatch_chunk(report.failed_chunks[0], store.code)
        # 2k tasks: k uploads (one per participant), k downloads.
        assert d.total_uploads == store.code.k
        assert d.total_downloads == store.code.k
        assert d.dest_downloads >= 1
        assert len(d.participants) == store.code.k
        assert len(set(d.participants)) == store.code.k

    def test_destination_not_in_stripe(self):
        cluster, store, injector, monitor, dispatcher = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        dispatcher.begin_phase()
        d = dispatcher.dispatch_chunk(chunk, store.code)
        assert d.destination not in store.stripes[chunk.stripe].nodes()
        assert cluster.node(d.destination).alive

    def test_min_time_first_destination_prefers_idle(self):
        cluster, store, injector, monitor, dispatcher = make_env(num_nodes=14)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        candidates = injector.candidate_destinations(chunk)
        # Pre-load every candidate but one with phase downloads.
        dispatcher.begin_phase()
        idle = candidates[-1]
        for c in candidates:
            if c != idle:
                dispatcher.load.down[c] += 5
        assert dispatcher.select_destination(chunk) == idle

    def test_loads_accumulate_across_chunks(self):
        cluster, store, injector, monitor, dispatcher = make_env(num_stripes=30)
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        for chunk in report.failed_chunks[:5]:
            dispatcher.dispatch_chunk(chunk, store.code)
        assert sum(dispatcher.load.up.values()) == 5 * store.code.k
        assert sum(dispatcher.load.down.values()) == 5 * store.code.k

    def test_begin_phase_resets(self):
        cluster, store, injector, monitor, dispatcher = make_env()
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        dispatcher.dispatch_chunk(report.failed_chunks[0], store.code)
        dispatcher.begin_phase()
        assert sum(dispatcher.load.up.values()) == 0

    def test_estimated_time_positive_and_sane(self):
        cluster, store, injector, monitor, dispatcher = make_env()
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        d = dispatcher.dispatch_chunk(report.failed_chunks[0], store.code)
        # One chunk over idle 100 MB/s links: at most a few chunk-times.
        assert 0 < d.estimated_time < 10 * CHUNK / mbs(100) * store.code.k

    def test_relay_merging_second_download_adds_no_upload(self):
        # Force relays by making the destination's downlink expensive:
        # many pre-assigned downloads at every possible destination.
        cluster, store, injector, monitor, dispatcher = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        dispatcher.begin_phase()
        for node in injector.candidate_destinations(chunk):
            dispatcher.load.down[node] += 10
        d = dispatcher.dispatch_chunk(chunk, store.code)
        # With all destinations congested, downloads land on sources.
        assert sum(d.source_downloads.values()) >= 1
        # Upload count stays k regardless of how downloads are spread.
        assert d.total_uploads == store.code.k

    def test_butterfly_dispatch_no_relays(self):
        code = ButterflyCode()
        cluster, store, injector, monitor, dispatcher = make_env(code=code, num_nodes=8)
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        d = dispatcher.dispatch_chunk(report.failed_chunks[0], code)
        assert d.source_downloads == {}
        assert d.dest_downloads == len(d.participants)

    def test_io_aware_uses_disk_bandwidth(self):
        code = RSCode(4, 2)
        cluster = Cluster(
            num_nodes=12, num_clients=0, link_bw=mbs(1000), disk_read_bw=mbs(50),
            disk_write_bw=mbs(50),
        )
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=CHUNK, seed=0)
        injector = FailureInjector(cluster, store)
        monitor = BandwidthMonitor(cluster)
        dispatcher = TaskDispatcher(injector, monitor, chunk_size=CHUNK, io_aware=True)
        report = injector.fail_nodes([0])
        dispatcher.begin_phase()
        d = dispatcher.dispatch_chunk(report.failed_chunks[0], code)
        # Estimates follow the 50 MB/s disks, not the 1000 MB/s links.
        assert d.estimated_time >= CHUNK / mbs(50) * 0.9
