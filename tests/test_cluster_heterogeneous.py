"""Tests for per-node bandwidth overrides (heterogeneous clusters)."""

import pytest

from repro.cluster import Cluster, MB, gbps, mbs
from repro.errors import SimulationError


class TestNodeOverrides:
    def test_override_applied(self):
        cluster = Cluster(
            num_nodes=4,
            num_clients=0,
            link_bw=gbps(10),
            node_overrides={2: {"uplink_bw": gbps(1)}},
        )
        assert cluster.node(2).uplink.capacity == pytest.approx(gbps(1))
        assert cluster.node(2).downlink.capacity == pytest.approx(gbps(10))
        assert cluster.node(0).uplink.capacity == pytest.approx(gbps(10))

    def test_multiple_fields(self):
        cluster = Cluster(
            num_nodes=3,
            num_clients=0,
            node_overrides={1: {"disk_read_bw": mbs(100), "disk_write_bw": mbs(50)}},
        )
        assert cluster.node(1).disk_read.capacity == pytest.approx(mbs(100))
        assert cluster.node(1).disk_write.capacity == pytest.approx(mbs(50))

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(num_nodes=2, num_clients=0, node_overrides={5: {}})

    def test_unknown_field_rejected(self):
        with pytest.raises(SimulationError):
            Cluster(num_nodes=2, num_clients=0, node_overrides={0: {"warp_bw": 1.0}})

    def test_slow_node_throttles_transfer(self):
        cluster = Cluster(
            num_nodes=2,
            num_clients=0,
            link_bw=mbs(1000),
            disk_read_bw=mbs(10000),
            node_overrides={0: {"uplink_bw": mbs(10)}},
        )
        t = cluster.make_transfer(0, 1, 10 * MB, 10 * MB)
        cluster.start(t)
        cluster.sim.run()
        assert t.completed_at == pytest.approx(1.0)

    def test_set_link_bandwidth_overrides_everything(self):
        cluster = Cluster(
            num_nodes=2,
            num_clients=0,
            node_overrides={0: {"uplink_bw": mbs(10)}},
        )
        cluster.set_link_bandwidth(mbs(77))
        assert cluster.node(0).uplink.capacity == pytest.approx(mbs(77))
