"""Unit tests for Azure-style LRC codes."""

import numpy as np
import pytest

from repro.codes import LRCCode, make_code
from repro.errors import CodingError
from repro.gf import vec_addmul


def build_stripe(code, seed=0, size=32):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(code.k)]
    return data, code.encode(data)


def apply_equation(eq, stripe):
    acc = np.zeros_like(stripe[0])
    for src, coeff in eq.coefficients.items():
        vec_addmul(acc, stripe[src], coeff)
    return acc


class TestStructure:
    def test_stripe_layout(self):
        code = LRCCode(4, 2, 2)
        assert code.n == 8
        assert code.group_size == 2

    def test_k_not_divisible_raises(self):
        with pytest.raises(CodingError):
            LRCCode(5, 2, 2)

    def test_local_parity_is_group_xor(self):
        code = LRCCode(4, 2, 2)
        data, stripe = build_stripe(code, seed=1)
        assert np.array_equal(stripe[4], data[0] ^ data[1])
        assert np.array_equal(stripe[5], data[2] ^ data[3])

    def test_group_of(self):
        code = LRCCode(4, 2, 2)
        assert code.group_of(0) == 0
        assert code.group_of(3) == 1
        assert code.group_of(4) == 0  # local parity of group 0
        assert code.group_of(6) is None  # global parity

    def test_local_group_members(self):
        code = LRCCode(4, 2, 2)
        assert code.local_group_members(0) == [0, 1, 4]
        assert code.local_group_members(1) == [2, 3, 5]
        with pytest.raises(CodingError):
            code.local_group_members(2)


class TestRepair:
    @pytest.mark.parametrize("k,l,m", [(4, 2, 2), (8, 2, 2), (10, 2, 2)])
    def test_data_repair_is_local(self, k, l, m):
        code = LRCCode(k, l, m)
        _, stripe = build_stripe(code, seed=k)
        for failed in range(k):
            eq = code.repair_equation(failed)
            # Local repair: k/l sources, all inside the failed chunk's group.
            assert len(eq.coefficients) == k // l
            group = code.group_of(failed)
            members = set(code.local_group_members(group))
            assert set(eq.coefficients) <= members
            assert np.array_equal(apply_equation(eq, stripe), stripe[failed])

    def test_local_parity_repair_is_local(self):
        code = LRCCode(4, 2, 2)
        _, stripe = build_stripe(code, seed=3)
        eq = code.repair_equation(4)
        assert set(eq.coefficients) == {0, 1}
        assert np.array_equal(apply_equation(eq, stripe), stripe[4])

    def test_global_parity_repair_reads_k(self):
        code = LRCCode(4, 2, 2)
        _, stripe = build_stripe(code, seed=4)
        for failed in (6, 7):
            eq = code.repair_equation(failed)
            assert len(eq.coefficients) == code.k
            assert np.array_equal(apply_equation(eq, stripe), stripe[failed])

    def test_repair_without_local_parity_falls_back(self):
        code = LRCCode(4, 2, 2)
        _, stripe = build_stripe(code, seed=5)
        available = set(range(8)) - {0, 4}  # chunk 0 failed, its parity also gone
        eq = code.repair_equation(0, available=available)
        assert set(eq.coefficients) <= available
        assert np.array_equal(apply_equation(eq, stripe), stripe[0])


class TestDecode:
    def test_decode_after_m_plus_one_failures(self):
        code = LRCCode(4, 2, 2)
        data, stripe = build_stripe(code, seed=6)
        # Lose one chunk per group plus one global parity = 3 = m + 1.
        available = {i: stripe[i] for i in range(8) if i not in (0, 2, 6)}
        decoded = code.decode(available)
        for i in range(8):
            assert np.array_equal(decoded[i], stripe[i])

    def test_fault_tolerance_reported(self):
        assert LRCCode(4, 2, 2).fault_tolerance() == 3

    def test_make_code(self):
        code = make_code("LRC(10,2,2)")
        assert isinstance(code, LRCCode)
        assert code.name == "LRC(10,2,2)"
        assert code.group_size == 5
