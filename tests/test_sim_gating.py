"""Tests for proportional slice gating across unequal transfer sizes."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.sim import FlowScheduler, Resource, Simulator, Transfer, TransferManager


def make_env():
    sim = Simulator()
    sched = FlowScheduler(sim)
    return sim, sched, TransferManager(sched)


class TestProportionalGating:
    def test_short_dependent_waits_for_whole_dependency(self):
        # dep: 1000B in 10 slices at 100 B/s (10 s). out: 200B in 2
        # slices on a fast link. out's final slice must wait for ALL of
        # dep (a combiner cannot emit its last bytes early).
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 1000, 100)
        out = Transfer("out", (Resource("b", 10000.0),), 200, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run()
        assert dep.completed_at == pytest.approx(10.0)
        assert out.completed_at >= dep.completed_at

    def test_long_dependent_tracks_fractions(self):
        # out has 10 slices, dep has 2: out's slice 4 (fraction 0.5)
        # needs dep slice 1; out's slice 5 (0.6) needs both dep slices.
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 200, 100)  # done at 2s
        out = Transfer("out", (Resource("b", 1000.0),), 1000, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run(until=1.5)
        # Half of dep delivered (slice 1 of 2): out may have at most
        # half its slices done.
        assert out.completed_slices <= 5
        sim.run()
        assert out.done
        assert out.completed_at >= dep.completed_at

    def test_equal_sizes_pipeline_tightly(self):
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 1000, 100)
        out = Transfer("out", (Resource("b", 100.0),), 1000, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run()
        # Classic (S+1)/S pipelining, not 2x serialisation.
        assert out.completed_at == pytest.approx(11.0)


class TestUnequalChainGating:
    def test_three_hop_unequal_slice_counts(self):
        # a: 2 slices at 1s each; b: 6 fast slices; c: 3 fast slices.
        # Fraction gating must compose across both edges: b's first half
        # needs a's slice 0, its second half all of a; c's slice j needs
        # ceil((j+1)/3 * 6) slices of b.
        sim, sched, mgr = make_env()
        a = Transfer("a", (Resource("ra", 100.0),), 200, 100)
        b = Transfer("b", (Resource("rb", 10000.0),), 600, 100)
        c = Transfer("c", (Resource("rc", 10000.0),), 300, 100)
        b.depends_on(a)
        c.depends_on(b)
        for t in (a, b, c):
            mgr.start(t)
        sim.run(until=1.5)
        # Only a's first slice has landed: b capped at half its slices,
        # c at one third.
        assert b.completed_slices == 3
        assert c.completed_slices == 1
        sim.run()
        assert a.completed_at == pytest.approx(2.0)
        assert b.completed_at == pytest.approx(2.03, abs=0.02)
        assert c.completed_at >= b.completed_at
        assert c.completed_at == pytest.approx(2.04, abs=0.02)

    def test_wide_fanin_unequal_sizes_gate_last_slice(self):
        # Combiner with inputs of different slice counts: its final
        # slice waits for *every* input to be fully delivered.
        sim, sched, mgr = make_env()
        coarse = Transfer("coarse", (Resource("rc", 100.0),), 1000, 500)  # 2 slices
        fine = Transfer("fine", (Resource("rf", 100.0),), 1000, 100)  # 10 slices
        out = Transfer("out", (Resource("ro", 10000.0),), 400, 100)  # 4 slices
        out.depends_on(coarse)
        out.depends_on(fine)
        for t in (coarse, fine, out):
            mgr.start(t)
        sim.run(until=4.9)
        # coarse slice 0 lands at t=5: out slice 0 (fraction 0.25)
        # needs ceil(0.25 * 2) = 1 coarse slice, so nothing yet.
        assert out.completed_slices == 0
        sim.run()
        assert out.done
        assert out.completed_at >= max(coarse.completed_at, fine.completed_at)


class TestCancelMidPipeline:
    def test_cancel_relay_unblocks_dependent_exactly_once(self):
        # src -> relay -> sink, equal sizes. Cancelling the relay
        # mid-run must (a) drop its in-flight flow from the scheduler
        # (no orphan ticking away), (b) stop gating the sink, and
        # (c) never double-launch a sink slice.
        sim, sched, mgr = make_env()
        src = Transfer("src", (Resource("ra", 100.0),), 1000, 100)
        relay = Transfer("relay", (Resource("rb", 100.0),), 1000, 100)
        sink = Transfer("sink", (Resource("rc", 100.0),), 1000, 100)
        relay.depends_on(src)
        sink.depends_on(relay)
        for t in (src, relay, sink):
            mgr.start(t)
        sink_slices = []
        sink.on_slice.append(lambda t, i: sink_slices.append(i))
        orphans = []
        sim.schedule(5.0, lambda: mgr.cancel(relay))
        sim.schedule(
            5.01,
            lambda: orphans.extend(
                f.name for f in sched.active if f.name.startswith("relay[")
            ),
        )
        sim.run()
        assert relay.cancelled and not relay.done
        assert orphans == []  # the in-flight relay slice was cancelled
        assert src.done and sink.done
        # Every sink slice fired exactly once, in order.
        assert sink_slices == list(range(sink.num_slices))
        # Ungated sink drains its remaining ~7 slices at 1 s each.
        assert sink.completed_at == pytest.approx(12.0, abs=1.0)

    def test_cancel_relay_before_dependent_starts(self):
        sim, sched, mgr = make_env()
        relay = Transfer("relay", (Resource("ra", 100.0),), 1000, 100)
        sink = Transfer("sink", (Resource("rb", 100.0),), 500, 100)
        sink.depends_on(relay)
        mgr.start(relay)
        mgr.cancel(relay)  # cancelled before sink is even released
        mgr.start(sink)
        sim.run()
        assert sink.done
        assert sink.completed_at == pytest.approx(5.0)
        assert all(not f.name.startswith("relay[") for f in sched.active)


class TestRetuneWithoutFinalWrite:
    def test_degraded_read_style_retune(self):
        code = RSCode(4, 2)
        cluster = Cluster(num_nodes=10, num_clients=1, link_bw=mbs(100))
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=8 * MB, seed=2)
        injector = FailureInjector(cluster, store)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        from repro.repair import ECPipe, PlanInstance

        plan = ECPipe(seed=3).make_plan(chunk, code, injector)
        instance = PlanInstance(
            cluster, plan, chunk_size=8 * MB, slice_size=2 * MB, final_write=False
        )
        instance.start()
        cluster.sim.run(until=0.01)
        uploader = next(u for u, v in plan.edges() if v != plan.destination)
        replacement = instance.retune(instance.uploads[uploader])
        cluster.sim.run()
        assert instance.done
        assert replacement.done
        assert plan.parent[uploader] == plan.destination

    def test_retune_replacement_smaller_when_partially_done(self):
        code = RSCode(4, 2)
        cluster = Cluster(num_nodes=10, num_clients=0, link_bw=mbs(100))
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=8 * MB, seed=4)
        injector = FailureInjector(cluster, store)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        from repro.repair import ECPipe, PlanInstance

        plan = ECPipe(seed=5).make_plan(chunk, code, injector)
        instance = PlanInstance(
            cluster, plan, chunk_size=8 * MB, slice_size=1 * MB
        )
        instance.start()
        cluster.sim.run(until=0.03)  # let some slices through
        uploader = next(u for u, v in plan.edges() if v != plan.destination)
        old = instance.uploads[uploader]
        done_bytes = old.bytes_completed
        replacement = instance.retune(old)
        if done_bytes > 0:
            assert replacement.size < old.size
        cluster.sim.run()
        assert instance.done
