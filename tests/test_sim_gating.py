"""Tests for proportional slice gating across unequal transfer sizes."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.sim import FlowScheduler, Resource, Simulator, Transfer, TransferManager


def make_env():
    sim = Simulator()
    sched = FlowScheduler(sim)
    return sim, sched, TransferManager(sched)


class TestProportionalGating:
    def test_short_dependent_waits_for_whole_dependency(self):
        # dep: 1000B in 10 slices at 100 B/s (10 s). out: 200B in 2
        # slices on a fast link. out's final slice must wait for ALL of
        # dep (a combiner cannot emit its last bytes early).
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 1000, 100)
        out = Transfer("out", (Resource("b", 10000.0),), 200, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run()
        assert dep.completed_at == pytest.approx(10.0)
        assert out.completed_at >= dep.completed_at

    def test_long_dependent_tracks_fractions(self):
        # out has 10 slices, dep has 2: out's slice 4 (fraction 0.5)
        # needs dep slice 1; out's slice 5 (0.6) needs both dep slices.
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 200, 100)  # done at 2s
        out = Transfer("out", (Resource("b", 1000.0),), 1000, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run(until=1.5)
        # Half of dep delivered (slice 1 of 2): out may have at most
        # half its slices done.
        assert out.completed_slices <= 5
        sim.run()
        assert out.done
        assert out.completed_at >= dep.completed_at

    def test_equal_sizes_pipeline_tightly(self):
        sim, sched, mgr = make_env()
        dep = Transfer("dep", (Resource("a", 100.0),), 1000, 100)
        out = Transfer("out", (Resource("b", 100.0),), 1000, 100)
        out.depends_on(dep)
        mgr.start(dep)
        mgr.start(out)
        sim.run()
        # Classic (S+1)/S pipelining, not 2x serialisation.
        assert out.completed_at == pytest.approx(11.0)


class TestRetuneWithoutFinalWrite:
    def test_degraded_read_style_retune(self):
        code = RSCode(4, 2)
        cluster = Cluster(num_nodes=10, num_clients=1, link_bw=mbs(100))
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=8 * MB, seed=2)
        injector = FailureInjector(cluster, store)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        from repro.repair import ECPipe, PlanInstance

        plan = ECPipe(seed=3).make_plan(chunk, code, injector)
        instance = PlanInstance(
            cluster, plan, chunk_size=8 * MB, slice_size=2 * MB, final_write=False
        )
        instance.start()
        cluster.sim.run(until=0.01)
        uploader = next(u for u, v in plan.edges() if v != plan.destination)
        replacement = instance.retune(instance.uploads[uploader])
        cluster.sim.run()
        assert instance.done
        assert replacement.done
        assert plan.parent[uploader] == plan.destination

    def test_retune_replacement_smaller_when_partially_done(self):
        code = RSCode(4, 2)
        cluster = Cluster(num_nodes=10, num_clients=0, link_bw=mbs(100))
        store = place_stripes(code, 10, cluster.storage_ids, chunk_size=8 * MB, seed=4)
        injector = FailureInjector(cluster, store)
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        from repro.repair import ECPipe, PlanInstance

        plan = ECPipe(seed=5).make_plan(chunk, code, injector)
        instance = PlanInstance(
            cluster, plan, chunk_size=8 * MB, slice_size=1 * MB
        )
        instance.start()
        cluster.sim.run(until=0.03)  # let some slices through
        uploader = next(u for u, v in plan.edges() if v != plan.destination)
        old = instance.uploads[uploader]
        done_bytes = old.bytes_completed
        replacement = instance.retune(old)
        if done_bytes > 0:
            assert replacement.size < old.size
        cluster.sim.run()
        assert instance.done
