"""End-to-end observability: straggler events, harness spans, CLI flags."""

import json
import re

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import ChameleonRepair
from repro.experiments import ExperimentConfig, run_repair_experiment
from repro.monitor import BandwidthMonitor
from repro.obs.export import chrome_trace_events
from repro.obs.report import build_report
from repro.obs.tracer import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.sim.flows import Flow

CHUNK = 16 * MB
SLICE = 4 * MB
NODE_TRACK = re.compile(r"n\d+\.(up|down|dread|dwrite)$")


def run_repair_with_slow_node(tracer):
    """One ChameleonEC repair where a survivor's uplink is hogged mid-run."""
    cluster = Cluster(
        num_nodes=12, num_clients=0, link_bw=mbs(25),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    tracer.bind_clock(cluster.sim)
    store = place_stripes(
        RSCode(4, 2), 30, cluster.storage_ids, chunk_size=CHUNK, seed=0
    )
    injector = FailureInjector(cluster, store)
    monitor = BandwidthMonitor(cluster)
    monitor.start()
    report = injector.fail_nodes([0])
    # Injected slow node: saturate a survivor's uplink shortly after the
    # dispatcher has formed expectations from the unloaded network.
    hog = Flow("hog", mbs(25) * 500, (cluster.node(1).uplink,), tag="hog")
    cluster.sim.schedule(1.0, lambda: cluster.flows.start_flow(hog))
    coord = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=8.0,
        check_interval=0.5, straggler_threshold=0.5,
    )
    coord.repair(report.failed_chunks)
    while not coord.done and cluster.sim.now < 50_000:
        cluster.sim.run(until=cluster.sim.now + 10.0)
    assert coord.done
    return coord


class TestStragglerEvents:
    def test_slow_node_produces_detection_and_retune_pair(self):
        tracer = Tracer()
        with use_tracer(tracer):
            coord = run_repair_with_slow_node(tracer)
        detected = tracer.instants_named("straggler.detected")
        retuned = tracer.instants_named("plan.retuned")
        assert detected, "hogged uplink must trip straggler detection"
        assert retuned, "detected stragglers must lead to re-tuned plans"
        assert len(retuned) == coord.retunes + coord.replans
        # Every re-tune references the straggling task it replaces, and
        # fires at (or after) the detection that triggered it.
        first_detection = {}
        for event in detected:
            first_detection.setdefault(event.args["task_id"], event.ts)
        for event in retuned:
            orig = event.args["orig_task_id"]
            assert orig in first_detection
            assert event.ts >= first_detection[orig]
            assert event.args["kind"] in ("redirect", "replan")

    def test_no_events_recorded_without_tracer(self):
        assert get_tracer() is NULL_TRACER
        coord = run_repair_with_slow_node(NULL_TRACER)
        assert coord.done  # instrumentation is inert, behaviour unchanged


class TestHarnessTracing:
    def test_experiment_run_span_and_flow_tracks(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = run_repair_experiment(
                ExperimentConfig.scaled(0.03), "ChameleonEC", foreground=False
            )
        (run,) = tracer.spans_named("experiment.run")
        assert run.end is not None
        assert run.args["algorithm"] == "ChameleonEC"
        assert run.args["repair_time"] > 0
        assert run.args["chunks"] == result.chunks
        # Flow spans land on per-resource tracks (one row per node
        # uplink/downlink/disk in the exported trace).
        flow_tracks = {
            track for s in tracer.spans_named("flow") for track in s.track
        }
        assert any(NODE_TRACK.match(t) for t in flow_tracks)
        assert tracer.spans_named("phase"), "ChameleonEC runs record phases"
        assert tracer.instants_named("plan.chosen")

        events = chrome_trace_events(tracer)
        thread_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(NODE_TRACK.match(n) for n in thread_names)

        report = build_report(tracer)
        assert "Per-phase breakdown" in report
        assert "Slowest repair tasks" in report


class TestCLIFlags:
    def test_trace_and_report_flags(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = tmp_path / "trace.json"
        assert main(["fig5", "--scale", "0.03", "--trace", str(path), "--report"]) == 0
        out = capsys.readouterr().out
        assert f"events written to {path}" in out
        assert "=== Run report ===" in out
        assert "Metrics" in out
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) > 100
        # The CLI restores the process-global tracer afterwards.
        assert get_tracer() is NULL_TRACER

    def test_flags_off_leave_globals_untouched(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig2"]) == 0
        assert get_tracer() is NULL_TRACER
