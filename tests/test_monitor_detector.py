"""Accrual failure detection: suspicion, restoration, ground-truth audit."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.monitor import FailureDetector

CHUNK = 16 * MB


def make_env(num_nodes=8, num_clients=1):
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=num_clients, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), 10, cluster.storage_ids,
                          chunk_size=CHUNK, seed=0)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


def make_detector(cluster, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.25)
    kwargs.setdefault("threshold", 3.0)
    return FailureDetector(cluster, **kwargs).start()


class TestLifecycle:
    def test_healthy_cluster_never_suspected(self):
        cluster, _, _ = make_env()
        detector = make_detector(cluster)
        cluster.sim.run(until=10.0)
        assert detector.suspicions == []
        assert detector.suspected_nodes() == []
        assert detector.false_suspicions == 0

    def test_double_start_rejected(self):
        cluster, _, _ = make_env()
        detector = make_detector(cluster)
        with pytest.raises(SimulationError):
            detector.start()

    def test_validation(self):
        cluster, _, _ = make_env()
        with pytest.raises(SimulationError):
            FailureDetector(cluster, heartbeat_interval=0.0)
        with pytest.raises(SimulationError):
            FailureDetector(cluster, threshold=1.0)
        with pytest.raises(SimulationError):
            FailureDetector(cluster, window=0)
        with pytest.raises(SimulationError):
            FailureDetector(cluster, min_heartbeat_capacity=1.0)

    def test_stop_halts_observation(self):
        cluster, _, injector = make_env()
        detector = make_detector(cluster)
        cluster.sim.run(until=2.0)
        detector.stop()
        injector.fail_nodes([3])
        cluster.sim.run(until=10.0)
        assert not detector.is_suspected(3)


class TestSuspicion:
    def test_crashed_node_suspected_within_accrual_window(self):
        cluster, _, injector = make_env()
        detector = make_detector(cluster)
        cluster.sim.run(until=2.0)
        injector.fail_nodes([3])
        events = []
        detector.on(
            "suspect",
            lambda _d, node_id, false_positive: events.append(
                (node_id, false_positive)
            ),
        )
        # phi accrues one unit per missed heartbeat: threshold=3 means
        # suspicion lands ~3 intervals after the crash, far below any
        # plausible chunk_timeout.
        cluster.sim.run(until=2.0 + 5 * 0.25)
        assert events == [(3, False)]
        assert detector.is_suspected(3)
        assert detector.false_suspicions == 0

    def test_partitioned_node_suspected_then_restored(self):
        cluster, _, _ = make_env()
        detector = make_detector(cluster)
        cluster.sim.run(until=2.0)
        pid = cluster.apply_partition([[4]])
        cluster.sim.run(until=4.0)
        assert detector.is_suspected(4)
        # A hard partition is a true positive: the node really is
        # unreachable from home at fire time.
        assert detector.false_suspicions == 0
        restored = []
        detector.on("restore", lambda _d, node_id: restored.append(node_id))
        cluster.heal_partition(pid)
        cluster.sim.run(until=5.0)
        assert restored == [4]
        assert not detector.is_suspected(4)

    def test_throttled_heartbeats_count_as_false_suspicion(self):
        cluster, _, _ = make_env()
        detector = make_detector(cluster, min_heartbeat_capacity=0.05)
        cluster.sim.run(until=2.0)
        node = cluster.node(5)
        base = node.uplink.capacity
        node.uplink.set_capacity(base * 0.01)  # below the heartbeat floor
        cluster.sim.run(until=4.0)
        assert detector.is_suspected(5)
        # Ground truth says alive + reachable: precision loss is audited.
        assert detector.false_suspicions == 1
        node.uplink.set_capacity(base)
        cluster.sim.run(until=5.0)
        assert not detector.is_suspected(5)

    def test_phi_accrues_while_starved(self):
        cluster, _, injector = make_env()
        detector = make_detector(cluster, threshold=100.0)
        cluster.sim.run(until=2.0)
        injector.fail_nodes([2])
        cluster.sim.run(until=3.0)
        early = detector.phi(2)
        cluster.sim.run(until=5.0)
        assert detector.phi(2) > early > 0.0

    def test_home_node_is_never_monitored(self):
        cluster, _, _ = make_env(num_clients=0)
        detector = make_detector(cluster)  # home falls back to node 0
        assert detector.home == cluster.storage_nodes[0].id
        cluster.sim.run(until=5.0)
        assert not detector.is_suspected(detector.home)
        assert detector.phi(detector.home) == 0.0
