"""Tests for trace file recording and replay."""

import pytest

from repro.errors import SimulationError
from repro.traffic import ycsb_a
from repro.traffic.traces import Request
from repro.traffic.tracefile import FileTrace, load_trace, record_trace, save_trace


class TestRoundTrip:
    def test_record_and_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        written = record_trace(ycsb_a(seed=1), 50, path)
        assert written == 50
        requests = load_trace(path)
        assert len(requests) == 50
        assert all(r.op in ("read", "update") for r in requests)
        assert all(r.size == 512_000 for r in requests)

    def test_save_preserves_exact_values(self, tmp_path):
        path = tmp_path / "t.csv"
        original = [
            Request(op="read", key=7, size=1234.0),
            Request(op="update", key=9, size=16.0),
        ]
        save_trace(original, path)
        assert load_trace(path) == original

    def test_record_invalid_count(self, tmp_path):
        with pytest.raises(SimulationError):
            record_trace(ycsb_a(), 0, tmp_path / "x.csv")


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SimulationError):
            load_trace(tmp_path / "nope.csv")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\nread,1,10\n")
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_bad_op(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,key,size\ndelete,1,10\n")
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_bad_numbers(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,key,size\nread,xyz,10\n")
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_nonpositive_size(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,key,size\nread,1,0\n")
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("op,key,size\n")
        with pytest.raises(SimulationError):
            load_trace(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,key,size\nread,1\n")
        with pytest.raises(SimulationError):
            load_trace(path)


class TestFileTrace:
    def make_file(self, tmp_path, n=5):
        path = tmp_path / "trace.csv"
        record_trace(ycsb_a(seed=2), n, path)
        return path

    def test_replay_order_matches_file(self, tmp_path):
        path = self.make_file(tmp_path)
        expected = load_trace(path)
        trace = FileTrace(path)
        replayed = [trace.next_request() for _ in range(5)]
        assert replayed == expected

    def test_loops_by_default(self, tmp_path):
        trace = FileTrace(self.make_file(tmp_path, n=3))
        first = trace.next_request()
        for _ in range(2):
            trace.next_request()
        assert trace.next_request() == first  # wrapped around

    def test_no_loop_raises_when_exhausted(self, tmp_path):
        trace = FileTrace(self.make_file(tmp_path, n=2), loop=False)
        trace.next_request()
        trace.next_request()
        with pytest.raises(SimulationError):
            trace.next_request()

    def test_rewind(self, tmp_path):
        trace = FileTrace(self.make_file(tmp_path, n=3))
        first = trace.next_request()
        trace.rewind()
        assert trace.next_request() == first

    def test_name_and_len(self, tmp_path):
        trace = FileTrace(self.make_file(tmp_path, n=4))
        assert trace.name == "file:trace.csv"
        assert len(trace) == 4

    def test_usable_by_trace_client(self, tmp_path):
        from repro.cluster import Cluster, MB, mbs, place_stripes
        from repro.codes import RSCode
        from repro.traffic import KeyRouter, TraceClient

        cluster = Cluster(num_nodes=8, num_clients=1, link_bw=mbs(200))
        store = place_stripes(RSCode(4, 2), 10, cluster.storage_ids, chunk_size=MB, seed=1)
        router = KeyRouter(store, cluster)
        trace = FileTrace(self.make_file(tmp_path, n=10))
        client = TraceClient(
            cluster, cluster.clients[0], trace, router,
            num_requests=10, slice_size=MB, think_time=0.0, concurrency=1,
        )
        client.start()
        cluster.sim.run()
        assert client.done
        assert client.latency.count == 10
