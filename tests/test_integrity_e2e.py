"""Seeded end-to-end battery: corruption under load, nothing slips through.

Each seed runs the full loop on a small testbed: foreground YCSB
traffic, a node failure feeding a live repairer, seeded bit-rot (silent
corruptions + latent sector errors), and a background scrubber whose
detections flow into verified repair. The invariants — every injection
detected, every detection restored, a clean deep checksum audit at the
end — must hold for *every* seed.
"""

import pytest

from repro.api import Testbed


def run_seed(seed: int) -> Testbed:
    testbed = (
        Testbed.builder()
        .scaled(0.05)
        .with_options(
            num_nodes=10,
            num_clients=2,
            code="RS(4,2)",
            chunk_mb=8.0,
            num_chunks=6,
        )
        .with_seed(seed)
        .with_integrity()
        .build()
    )
    testbed.start_foreground()
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("CR")
    # One victim per stripe: with the failed node's chunk that is at
    # most two damaged chunks per RS(4,2) stripe — always repairable.
    timeline = testbed.inject_bitrot(
        corruptions=3, sector_errors=1, horizon=1.5, max_per_stripe=1
    )
    testbed.start_scrubber(rate_mbs=200.0)
    repairer.repair(report.failed_chunks)

    def settled() -> bool:
        return (
            len(timeline.injected) == len(timeline.events)
            and repairer.done
            and not testbed.ledger.undetected
            and not testbed.injector.quarantined
        )

    assert testbed.run_until(settled, step=0.5), f"seed {seed} never settled"
    testbed.scrubber.stop()
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=0.5)
    return testbed


@pytest.mark.parametrize("seed", range(20))
def test_corruption_under_load_is_always_caught(seed):
    testbed = run_seed(seed)
    summary = testbed.ledger.summary()
    # Node-crash losses can swallow a rot victim before it fires; every
    # injection that actually landed must be detected and restored.
    assert summary["injected"] > 0, seed
    assert summary["detected"] == summary["injected"], seed
    assert summary["restored"] == summary["injected"], seed
    # No detector ever fired on an undamaged chunk.
    assert summary["unexplained"] == 0, seed
    assert all(lat > 0 for lat in testbed.ledger.detection_latencies()), seed
    # Repairs wrote back ground-truth bytes, and the end-of-run deep
    # audit finds no unsound chunk anywhere in the store.
    assert testbed.dataplane.all_verified, seed
    assert not testbed.dataplane.unrepairable, seed
    testbed.dataplane.verify(deep=True)
    # Foreground traffic actually ran alongside (corruption *under load*).
    assert testbed.latency and testbed.latency.count > 0, seed
