"""Tests for latency, throughput, interference, and link statistics."""

import pytest

from repro.errors import SimulationError
from repro.metrics import (
    LatencyRecorder,
    LinkStatsCollector,
    RepairThroughputMeter,
    improvement_ratio,
    interference_degree,
)
from repro.sim import Resource


class TestLatencyRecorder:
    def test_percentiles(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record(float(v))
        assert rec.p50 == pytest.approx(50.5)
        assert rec.p99 == pytest.approx(99.01)
        assert rec.mean == pytest.approx(50.5)
        assert rec.max == 100.0
        assert rec.count == 100

    def test_empty_recorder_zeroes(self):
        rec = LatencyRecorder()
        assert rec.p99 == 0.0
        assert rec.mean == 0.0
        assert rec.max == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            LatencyRecorder().record(-1.0)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record(1.0)
        b.record(3.0)
        merged = a.merge(b)
        assert merged.count == 2
        assert merged.mean == pytest.approx(2.0)


class TestThroughputMeter:
    def test_throughput(self):
        meter = RepairThroughputMeter()
        meter.start(0.0)
        meter.record_repair(5.0, 100.0)
        meter.record_repair(10.0, 100.0)
        meter.finish(10.0)
        assert meter.throughput == pytest.approx(20.0)
        assert meter.repaired_bytes == 200.0
        assert meter.chunks_repaired == 2

    def test_elapsed_without_finish_uses_last_event(self):
        meter = RepairThroughputMeter()
        meter.start(2.0)
        meter.record_repair(7.0, 50.0)
        assert meter.elapsed == pytest.approx(5.0)

    def test_zero_elapsed_zero_throughput(self):
        meter = RepairThroughputMeter()
        meter.start(1.0)
        meter.finish(1.0)
        assert meter.throughput == 0.0

    def test_invalid_bytes_rejected(self):
        meter = RepairThroughputMeter()
        with pytest.raises(SimulationError):
            meter.record_repair(1.0, 0.0)

    def test_windowed_series(self):
        meter = RepairThroughputMeter()
        meter.start(0.0)
        meter.record_repair(0.5, 10.0)
        meter.record_repair(1.5, 30.0)
        meter.finish(2.0)
        series = meter.windowed_throughput(window=1.0)
        assert series == [(0.0, 10.0), (1.0, 30.0)]

    def test_windowed_invalid_window(self):
        meter = RepairThroughputMeter()
        meter.start(0.0)
        with pytest.raises(SimulationError):
            meter.windowed_throughput(window=0)

    def test_windowed_before_start_empty(self):
        assert RepairThroughputMeter().windowed_throughput(1.0) == []


class TestInterference:
    def test_degree(self):
        assert interference_degree(12.0, 10.0) == pytest.approx(0.2)
        assert interference_degree(10.0, 10.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(SimulationError):
            interference_degree(5.0, 0.0)
        with pytest.raises(SimulationError):
            interference_degree(-1.0, 2.0)

    def test_improvement_ratio(self):
        assert improvement_ratio(15.0, 10.0) == pytest.approx(0.5)
        with pytest.raises(SimulationError):
            improvement_ratio(1.0, 0.0)


class TestLinkStats:
    def make(self):
        up = Resource("n0.up", 100.0)
        down = Resource("n0.down", 100.0)
        return up, down, LinkStatsCollector([up, down], window=10.0)

    def test_window_split_by_class(self):
        up, down, collector = self.make()
        up.account("repair", 500.0)
        up.account("foreground", 300.0)
        collector.sample()
        series = collector.series["n0.up"]
        assert series.repair == [50.0]
        assert series.foreground == [30.0]
        assert series.mean_total() == pytest.approx(80.0)

    def test_fluctuation(self):
        up, down, collector = self.make()
        up.account("foreground", 100.0)
        collector.sample()
        up.account("foreground", 900.0)
        collector.sample()
        assert collector.series["n0.up"].fluctuation() == pytest.approx(80.0)

    def test_fluctuation_stats_aggregate(self):
        up, down, collector = self.make()
        up.account("foreground", 200.0)
        collector.sample()
        up.account("foreground", 800.0)
        down.account("foreground", 100.0)
        collector.sample()
        mean, lo, hi = collector.fluctuation_stats()
        assert hi >= mean >= lo >= 0

    def test_most_and_least_loaded(self):
        up, down, collector = self.make()
        up.account("repair", 1000.0)
        down.account("repair", 10.0)
        collector.sample()
        most, least = collector.most_and_least_loaded()
        assert most.resource_name == "n0.up"
        assert least.resource_name == "n0.down"

    def test_empty_collector_raises(self):
        collector = LinkStatsCollector([], window=1.0)
        with pytest.raises(SimulationError):
            collector.most_and_least_loaded()
        assert collector.fluctuation_stats() == (0.0, 0.0, 0.0)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            LinkStatsCollector([], window=0)
