"""Tests for repair plans, structures, and data-plane execution."""

import numpy as np
import pytest

from repro.cluster import ChunkId
from repro.codes import LRCCode, RSCode
from repro.errors import PlanError
from repro.repair import (
    PlanSource,
    RepairPlan,
    binomial_parents,
    chain_parents,
    execute_plan,
    star_parents,
)


def rs_plan(k=4, m=2, parent_builder=star_parents, failed=0, seed=0):
    """Build a plan + stripe data for an RS(k, m) repair of chunk ``failed``."""
    rng = np.random.default_rng(seed)
    code = RSCode(k, m)
    data = [rng.integers(0, 256, size=64, dtype=np.uint8) for _ in range(k)]
    stripe = code.encode(data)
    survivors = {i: 100 + i for i in range(k + m) if i != failed}
    eq = code.repair_equation(failed, set(survivors))
    sources = [
        PlanSource(node_id=survivors[i], chunk_index=i, coefficient=c)
        for i, c in sorted(eq.coefficients.items())
    ]
    nodes = [s.node_id for s in sources]
    plan = RepairPlan(
        chunk=ChunkId(0, failed),
        destination=999,
        sources=sources,
        parent=parent_builder(nodes, 999),
    )
    chunk_data = {s.chunk_index: stripe[s.chunk_index] for s in sources}
    return plan, chunk_data, stripe[failed]


class TestStructures:
    def test_star(self):
        p = star_parents([1, 2, 3], 9)
        assert p == {1: 9, 2: 9, 3: 9}

    def test_chain(self):
        p = chain_parents([1, 2, 3], 9)
        assert p == {1: 2, 2: 3, 3: 9}

    def test_binomial_matches_paper_figure(self):
        # Fig. 3(b): N1->N2, N3->N4, N2->N4, N4->Nd.
        p = binomial_parents([1, 2, 3, 4], 9)
        assert p == {1: 2, 3: 4, 2: 4, 4: 9}

    def test_binomial_odd_count(self):
        p = binomial_parents([1, 2, 3], 9)
        # 1->2, 3 survives; 2->3; 3->dest.
        assert p == {1: 2, 2: 3, 3: 9}

    def test_binomial_single_source(self):
        assert binomial_parents([7], 9) == {7: 9}

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 8, 10])
    def test_binomial_depth_logarithmic(self, k):
        import math

        nodes = list(range(1, k + 1))
        plan_parents = binomial_parents(nodes, 0)
        # Longest chain to destination.
        depth = 0
        for n in nodes:
            d, cur = 1, n
            while plan_parents[cur] != 0:
                cur = plan_parents[cur]
                d += 1
            depth = max(depth, d)
        assert depth <= math.ceil(math.log2(k + 1)) + 1


class TestPlanValidation:
    def test_default_structure_is_star(self):
        plan, _, _ = rs_plan()
        plan2 = RepairPlan(
            chunk=plan.chunk, destination=plan.destination, sources=plan.sources
        )
        assert all(v == plan.destination for v in plan2.parent.values())

    def test_no_sources_rejected(self):
        with pytest.raises(PlanError):
            RepairPlan(chunk=ChunkId(0, 0), destination=9, sources=[])

    def test_duplicate_source_node_rejected(self):
        sources = [PlanSource(1, 0, 1), PlanSource(1, 2, 1)]
        with pytest.raises(PlanError):
            RepairPlan(chunk=ChunkId(0, 1), destination=9, sources=sources)

    def test_destination_among_sources_rejected(self):
        with pytest.raises(PlanError):
            RepairPlan(
                chunk=ChunkId(0, 0),
                destination=1,
                sources=[PlanSource(1, 1, 1)],
            )

    def test_cycle_rejected(self):
        sources = [PlanSource(1, 1, 1), PlanSource(2, 2, 1)]
        with pytest.raises(PlanError):
            RepairPlan(
                chunk=ChunkId(0, 0),
                destination=9,
                sources=sources,
                parent={1: 2, 2: 1},
            )

    def test_unreached_destination_rejected(self):
        sources = [PlanSource(1, 1, 1)]
        with pytest.raises(PlanError):
            RepairPlan(
                chunk=ChunkId(0, 0), destination=9, sources=sources, parent={1: 1}
            )

    def test_edge_to_foreign_node_rejected(self):
        sources = [PlanSource(1, 1, 1)]
        with pytest.raises(PlanError):
            RepairPlan(
                chunk=ChunkId(0, 0), destination=9, sources=sources, parent={1: 5}
            )

    def test_relays_and_counts(self):
        plan, _, _ = rs_plan(parent_builder=chain_parents)
        relays = plan.relays()
        assert len(relays) == 3  # chain of 4: middle three download
        counts = plan.download_counts()
        assert counts[plan.destination] == 1
        assert plan.transmission_rounds() == 4

    def test_star_has_no_relays(self):
        plan, _, _ = rs_plan(parent_builder=star_parents)
        assert plan.relays() == []
        assert plan.transmission_rounds() == 1


class TestExecution:
    @pytest.mark.parametrize("builder", [star_parents, chain_parents, binomial_parents])
    @pytest.mark.parametrize("failed", [0, 3, 4, 5])
    def test_all_structures_decode(self, builder, failed):
        plan, chunk_data, expected = rs_plan(parent_builder=builder, failed=failed)
        repaired = execute_plan(plan, chunk_data)
        assert np.array_equal(repaired, expected)

    def test_lrc_local_plan_decodes(self):
        rng = np.random.default_rng(4)
        code = LRCCode(4, 2, 2)
        data = [rng.integers(0, 256, size=32, dtype=np.uint8) for _ in range(4)]
        stripe = code.encode(data)
        eq = code.repair_equation(0)
        sources = [
            PlanSource(node_id=10 + i, chunk_index=i, coefficient=c)
            for i, c in sorted(eq.coefficients.items())
        ]
        plan = RepairPlan(chunk=ChunkId(0, 0), destination=99, sources=sources)
        repaired = execute_plan(plan, {s.chunk_index: stripe[s.chunk_index] for s in sources})
        assert np.array_equal(repaired, stripe[0])

    def test_missing_data_raises(self):
        plan, chunk_data, _ = rs_plan()
        chunk_data.pop(plan.sources[0].chunk_index)
        with pytest.raises(PlanError):
            execute_plan(plan, chunk_data)

    def test_retuned_plan_still_decodes(self):
        # Re-tuning (redirect a relay input to the destination) must not
        # change the decoded bytes — the linearity argument of Sec III-C.
        plan, chunk_data, expected = rs_plan(parent_builder=chain_parents)
        first = plan.sources[0].node_id
        assert plan.parent[first] != plan.destination
        plan.redirect_to_destination(first)
        repaired = execute_plan(plan, chunk_data)
        assert np.array_equal(repaired, expected)

    def test_every_possible_retune_decodes(self):
        plan, chunk_data, expected = rs_plan(parent_builder=binomial_parents)
        for source in plan.sources:
            if plan.parent[source.node_id] == plan.destination:
                continue
            plan.redirect_to_destination(source.node_id)
            assert np.array_equal(execute_plan(plan, chunk_data), expected)

    def test_redirect_unknown_node_raises(self):
        plan, _, _ = rs_plan()
        with pytest.raises(PlanError):
            plan.redirect_to_destination(12345)
