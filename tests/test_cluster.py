"""Tests for the cluster model: nodes, placement, stripes, failures."""

import pytest

from repro.cluster import (
    ChunkId,
    Cluster,
    FailureInjector,
    MB,
    Stripe,
    StripeStore,
    gbps,
    mbs,
    place_stripes,
)
from repro.codes import RSCode
from repro.errors import SimulationError


class TestUnits:
    def test_gbps(self):
        assert gbps(10) == pytest.approx(1.25e9)

    def test_mbs(self):
        assert mbs(500) == pytest.approx(5e8)


class TestCluster:
    def test_node_counts(self):
        c = Cluster(num_nodes=20, num_clients=4)
        assert len(c.storage_nodes) == 20
        assert len(c.clients) == 4
        assert c.clients[0].id == 20

    def test_unknown_node_raises(self):
        with pytest.raises(SimulationError):
            Cluster(num_nodes=2, num_clients=0).node(5)

    def test_fail_node(self):
        c = Cluster(num_nodes=4, num_clients=0)
        c.fail_node(2)
        assert not c.node(2).alive
        assert c.alive_storage_ids() == [0, 1, 3]
        assert c.failed_node_ids() == {2}

    def test_cannot_fail_client(self):
        c = Cluster(num_nodes=2, num_clients=1)
        with pytest.raises(SimulationError):
            c.fail_node(2)

    def test_transfer_resources_paths(self):
        c = Cluster(num_nodes=3, num_clients=0)
        res = c.transfer_resources(0, 1, read_disk=True, write_disk=True)
        names = [r.name for r in res]
        assert names == ["n0.dread", "n0.up", "n1.down", "n1.dwrite"]
        res2 = c.transfer_resources(0, 1, read_disk=False)
        assert [r.name for r in res2] == ["n0.up", "n1.down"]

    def test_transfer_completes(self):
        c = Cluster(num_nodes=2, num_clients=0, link_bw=mbs(100))
        t = c.make_transfer(0, 1, 100 * MB, 10 * MB)
        c.start(t)
        c.sim.run()
        assert t.completed_at == pytest.approx(1.0)

    def test_set_link_bandwidth(self):
        c = Cluster(num_nodes=2, num_clients=0, link_bw=mbs(100))
        c.set_link_bandwidth(mbs(50))
        t = c.make_transfer(0, 1, 100 * MB, 10 * MB)
        c.start(t)
        c.sim.run()
        assert t.completed_at == pytest.approx(2.0)

    def test_disk_bottleneck(self):
        c = Cluster(num_nodes=2, num_clients=0, link_bw=mbs(1000), disk_read_bw=mbs(100))
        t = c.make_transfer(0, 1, 100 * MB, 10 * MB, read_disk=True)
        c.start(t)
        c.sim.run()
        assert t.completed_at == pytest.approx(1.0)


class TestPlacement:
    def test_stripes_span_distinct_nodes(self):
        code = RSCode(4, 2)
        store = place_stripes(code, 50, list(range(10)), chunk_size=MB, seed=1)
        assert len(store) == 50
        for stripe in store.stripes.values():
            assert len(set(stripe.chunk_nodes)) == 6

    def test_too_few_nodes_raises(self):
        with pytest.raises(SimulationError):
            place_stripes(RSCode(10, 4), 1, list(range(5)), chunk_size=MB)

    def test_deterministic_with_seed(self):
        code = RSCode(4, 2)
        a = place_stripes(code, 10, list(range(10)), chunk_size=MB, seed=7)
        b = place_stripes(code, 10, list(range(10)), chunk_size=MB, seed=7)
        assert all(
            a.stripes[i].chunk_nodes == b.stripes[i].chunk_nodes for i in range(10)
        )


class TestStripeStore:
    def make_store(self):
        code = RSCode(2, 1)
        store = StripeStore(code=code, chunk_size=MB)
        store.add(Stripe(stripe_id=0, chunk_nodes=[0, 1, 2]))
        return store

    def test_node_of(self):
        store = self.make_store()
        assert store.node_of(ChunkId(0, 1)) == 1

    def test_wrong_width_rejected(self):
        store = self.make_store()
        with pytest.raises(SimulationError):
            store.add(Stripe(stripe_id=1, chunk_nodes=[0, 1]))

    def test_duplicate_node_rejected(self):
        store = self.make_store()
        with pytest.raises(SimulationError):
            store.add(Stripe(stripe_id=1, chunk_nodes=[0, 0, 1]))

    def test_relocate(self):
        store = self.make_store()
        store.relocate(ChunkId(0, 0), 5)
        assert store.node_of(ChunkId(0, 0)) == 5

    def test_relocate_conflict_rejected(self):
        store = self.make_store()
        with pytest.raises(SimulationError):
            store.relocate(ChunkId(0, 0), 1)

    def test_chunks_on_node(self):
        store = self.make_store()
        assert store.chunks_on_node(1) == [ChunkId(0, 1)]

    def test_survivors(self):
        store = self.make_store()
        surv = store.survivors(ChunkId(0, 0), failed_nodes={0})
        assert surv == {1: 1, 2: 2}


class TestFailureInjector:
    def make_env(self):
        cluster = Cluster(num_nodes=10, num_clients=0)
        code = RSCode(4, 2)
        store = place_stripes(code, 30, cluster.storage_ids, chunk_size=MB, seed=3)
        return cluster, store, FailureInjector(cluster, store)

    def test_fail_node_reports_chunks(self):
        cluster, store, injector = self.make_env()
        report = injector.fail_nodes([0])
        assert report.failed_nodes == [0]
        assert set(report.failed_chunks) == set(store.chunks_on_node(0))
        assert all(store.node_of(c) == 0 for c in report.failed_chunks)

    def test_exceeding_tolerance_raises(self):
        cluster, store, injector = self.make_env()
        with pytest.raises(SimulationError):
            injector.fail_nodes([0, 1, 2])

    def test_candidate_destinations_exclude_stripe_nodes(self):
        cluster, store, injector = self.make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        stripe_nodes = store.stripes[chunk.stripe].nodes()
        for dest in injector.candidate_destinations(chunk):
            assert dest not in stripe_nodes
            assert cluster.node(dest).alive

    def test_surviving_sources(self):
        cluster, store, injector = self.make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        sources = injector.surviving_sources(chunk)
        assert len(sources) == 5  # n - 1 survivors for a single failure
        assert chunk.index not in sources
        assert 0 not in sources.values()
