"""Unit tests for the Butterfly-style (4,2) regenerating code."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import ButterflyCode, make_code
from repro.errors import CodingError


def build_stripe(seed=0, size=32):
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(2)]
    return data, ButterflyCode().encode(data)


class TestEncode:
    def test_stripe_length(self):
        _, stripe = build_stripe()
        assert len(stripe) == 4

    def test_parity_definitions(self):
        data, stripe = build_stripe(seed=1, size=8)
        a1, a2 = data[0][:4], data[0][4:]
        b1, b2 = data[1][:4], data[1][4:]
        assert np.array_equal(stripe[2], np.concatenate([a1 ^ b1, a2 ^ b2]))
        assert np.array_equal(stripe[3], np.concatenate([a1 ^ b2, a1 ^ a2 ^ b1]))

    def test_odd_length_raises(self):
        with pytest.raises(CodingError):
            ButterflyCode().encode([np.zeros(3, dtype=np.uint8)] * 2)

    def test_only_42_supported(self):
        with pytest.raises(CodingError):
            ButterflyCode(3, 2)


class TestMDS:
    def test_any_two_chunks_decode(self):
        _, stripe = build_stripe(seed=2)
        for pair in itertools.combinations(range(4), 2):
            decoded = ButterflyCode().decode({i: stripe[i] for i in pair})
            for i in range(4):
                assert np.array_equal(decoded[i], stripe[i])

    def test_single_chunk_insufficient(self):
        _, stripe = build_stripe(seed=3)
        with pytest.raises(CodingError):
            ButterflyCode().decode({0: stripe[0]})

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_decode_property(self, seed):
        rng = np.random.default_rng(seed)
        data = [rng.integers(0, 256, size=16, dtype=np.uint8) for _ in range(2)]
        stripe = ButterflyCode().encode(data)
        pair = sorted(rng.choice(4, size=2, replace=False))
        decoded = ButterflyCode().decode({int(i): stripe[int(i)] for i in pair})
        assert np.array_equal(decoded[0], data[0])
        assert np.array_equal(decoded[1], data[1])


class TestRepair:
    @pytest.mark.parametrize("failed", [0, 1, 2, 3])
    def test_repair_chunk_correct(self, failed):
        _, stripe = build_stripe(seed=failed + 10)
        code = ButterflyCode()
        helpers = {i: stripe[i] for i in range(4) if i != failed}
        repaired = code.repair_chunk(failed, helpers)
        assert np.array_equal(repaired, stripe[failed])

    @pytest.mark.parametrize("failed", [0, 1, 2])
    def test_optimised_repair_reads_three_subchunks(self, failed):
        reads = ButterflyCode().repair_reads(failed)
        total = sum(len(subs) for subs in reads.values())
        assert total == 3  # 1.5 chunks < k = 2 chunks

    def test_q_repair_reads_four_subchunks(self):
        reads = ButterflyCode().repair_reads(3)
        assert sum(len(subs) for subs in reads.values()) == 4

    @pytest.mark.parametrize("failed", [0, 1, 2])
    def test_repair_equation_half_reads(self, failed):
        eq = ButterflyCode().repair_equation(failed)
        assert eq.read_fraction == 0.5
        assert len(eq.coefficients) == 3
        assert eq.traffic_chunks == 1.5

    def test_repair_equation_q(self):
        eq = ButterflyCode().repair_equation(3)
        assert eq.traffic_chunks == 2.0

    def test_repair_with_missing_helper_degrades(self):
        eq = ButterflyCode().repair_equation(0, available={1, 2})
        assert set(eq.coefficients) == {1, 2}
        assert eq.read_fraction == 1.0

    def test_repair_chunk_missing_helper_raises(self):
        _, stripe = build_stripe(seed=20)
        with pytest.raises(CodingError):
            ButterflyCode().repair_chunk(0, {1: stripe[1]})

    def test_no_partial_combine(self):
        assert ButterflyCode().supports_partial_combine is False

    def test_make_code(self):
        code = make_code("Butterfly(4,2)")
        assert isinstance(code, ButterflyCode)
        with pytest.raises(CodingError):
            make_code("Butterfly(6,4)")
