"""Unit tests for key/value-size distribution samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.traffic import (
    FixedSize,
    GEVSize,
    LognormalSize,
    LogUniformSize,
    ParetoSize,
    UniformSampler,
    ZipfianSampler,
)


class TestZipfian:
    def test_in_range(self):
        sampler = ZipfianSampler(100, rng=np.random.default_rng(0))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 100

    def test_skew_first_items_dominant(self):
        sampler = ZipfianSampler(1000, theta=0.99, rng=np.random.default_rng(1))
        samples = [sampler.sample() for _ in range(5000)]
        top_share = sum(1 for s in samples if s < 10) / len(samples)
        # Zipf(0.99) concentrates a large share on the head.
        assert top_share > 0.25

    def test_more_skew_with_higher_theta(self):
        low = ZipfianSampler(1000, theta=0.5, rng=np.random.default_rng(2))
        high = ZipfianSampler(1000, theta=0.99, rng=np.random.default_rng(2))
        share = lambda s: sum(1 for _ in range(3000) if s.sample() == 0) / 3000
        assert share(high) > share(low)

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            ZipfianSampler(0)
        with pytest.raises(SimulationError):
            ZipfianSampler(10, theta=1.5)

    def test_single_item(self):
        sampler = ZipfianSampler(1, rng=np.random.default_rng(3))
        assert sampler.sample() == 0


class TestUniform:
    def test_covers_range(self):
        sampler = UniformSampler(10, rng=np.random.default_rng(4))
        seen = {sampler.sample() for _ in range(500)}
        assert seen == set(range(10))


class TestSizes:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        assert FixedSize(512).sample(rng) == 512
        with pytest.raises(SimulationError):
            FixedSize(0)

    def test_log_uniform_bounds(self):
        rng = np.random.default_rng(5)
        sampler = LogUniformSize(16, 1e9)
        for _ in range(200):
            assert 16 <= sampler.sample(rng) <= 1e9

    def test_log_uniform_spans_orders_of_magnitude(self):
        rng = np.random.default_rng(6)
        sampler = LogUniformSize(16, 1e9)
        samples = [sampler.sample(rng) for _ in range(500)]
        assert max(samples) / min(samples) > 1e4

    def test_log_uniform_invalid(self):
        with pytest.raises(SimulationError):
            LogUniformSize(10, 5)

    def test_lognormal_mean(self):
        rng = np.random.default_rng(7)
        sampler = LognormalSize(mean=20_000, sigma=1.2)
        samples = [sampler.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(20_000, rel=0.15)

    def test_lognormal_invalid(self):
        with pytest.raises(SimulationError):
            LognormalSize(mean=0)

    def test_pareto_heavy_tail_and_cap(self):
        rng = np.random.default_rng(8)
        sampler = ParetoSize(scale=300, alpha=1.5, cap=1e6)
        samples = [sampler.sample(rng) for _ in range(5000)]
        assert min(samples) >= 300
        assert max(samples) <= 1e6
        # Heavy tail: the max dwarfs the median.
        assert max(samples) > 10 * np.median(samples)

    def test_pareto_invalid(self):
        with pytest.raises(SimulationError):
            ParetoSize(scale=1, alpha=1.0)

    def test_gev_floor(self):
        rng = np.random.default_rng(9)
        sampler = GEVSize(mu=30, sigma=8, xi=0.25, floor=1.0)
        assert all(sampler.sample(rng) >= 1.0 for _ in range(500))

    def test_gev_invalid(self):
        with pytest.raises(SimulationError):
            GEVSize(mu=0, sigma=0)

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_all_sizes_positive(self, seed):
        rng = np.random.default_rng(seed)
        for sampler in (
            FixedSize(512),
            LogUniformSize(16, 1e6),
            LognormalSize(mean=100),
            ParetoSize(scale=10, alpha=2.0),
            GEVSize(mu=10, sigma=3),
        ):
            assert sampler.sample(rng) > 0
