"""Integration tests: baseline algorithms repairing chunks in the simulator."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import ButterflyCode, LRCCode, RSCode
from repro.errors import SchedulingError
from repro.repair import (
    ConventionalRepair,
    ECPipe,
    PPR,
    PlanInstance,
    RepairBoost,
    RepairRunner,
)

CHUNK = 16 * MB
SLICE = 4 * MB


def make_env(code=None, num_nodes=12, num_stripes=20, seed=0, link=mbs(100)):
    code = code if code is not None else RSCode(4, 2)
    cluster = Cluster(
        num_nodes=num_nodes, num_clients=0, link_bw=link,
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


@pytest.mark.parametrize("algo_cls", [ConventionalRepair, PPR, ECPipe])
class TestBaselines:
    def test_full_node_repair_completes(self, algo_cls):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, algo_cls(seed=1),
            chunk_size=CHUNK, slice_size=SLICE, concurrency=4,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done
        assert len(runner.completed) == len(report.failed_chunks)
        assert runner.meter.throughput > 0
        # Metadata relocated off the failed node.
        for chunk in report.failed_chunks:
            assert store.node_of(chunk) != 0
            assert cluster.node(store.node_of(chunk)).alive

    def test_repaired_stripes_keep_fault_tolerance(self, algo_cls):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([3])
        runner = RepairRunner(
            cluster, store, injector, algo_cls(seed=2),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        for stripe in store.stripes.values():
            assert len(set(stripe.chunk_nodes)) == store.code.n


class TestRunnerMechanics:
    def test_empty_chunk_list(self):
        cluster, store, injector = make_env()
        done = []
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        runner.on("all_done", lambda r: done.append(1))
        runner.repair([])
        assert runner.done and done == [1]

    def test_double_start_rejected(self):
        cluster, store, injector = make_env()
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        runner.repair([])
        with pytest.raises(SchedulingError):
            runner.repair([])

    def test_bad_concurrency_rejected(self):
        cluster, store, injector = make_env()
        with pytest.raises(SchedulingError):
            RepairRunner(
                cluster, store, injector, ConventionalRepair(),
                chunk_size=CHUNK, slice_size=SLICE, concurrency=0,
            )

    def test_same_stripe_chunks_serialised(self):
        # Two failed nodes can hit the same stripe; the runner must not
        # repair both of its chunks concurrently.
        code = RSCode(4, 2)
        cluster, store, injector = make_env(code=code, num_nodes=10, num_stripes=30)
        report = injector.fail_nodes([0, 1])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=3),
            chunk_size=CHUNK, slice_size=SLICE, concurrency=8,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done
        assert len(runner.completed) == len(report.failed_chunks)

    def test_concurrency_bounds_in_flight(self):
        cluster, store, injector = make_env(num_stripes=40)
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=4),
            chunk_size=CHUNK, slice_size=SLICE, concurrency=2,
        )
        runner.repair(report.failed_chunks)
        max_seen = 0
        t = 0.0
        while not runner.done and t < 10000:
            t = cluster.sim.run(until=t + 0.5)
            max_seen = max(max_seen, len(runner.in_flight))
            if cluster.sim.pending_events() == 0:
                break
        cluster.sim.run()
        assert max_seen <= 2

    def test_set_concurrency_raise_fills_freed_slots(self):
        cluster, store, injector = make_env(num_stripes=40)
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=4),
            chunk_size=CHUNK, slice_size=SLICE, concurrency=1,
        )
        runner.repair(report.failed_chunks)
        assert len(runner.in_flight) == 1
        runner.set_concurrency(4)
        # The raise launches pending chunks immediately, no tick needed.
        assert len(runner.in_flight) == 4
        cluster.sim.run()
        assert runner.done and runner.lost == []

    def test_set_concurrency_lower_paces_without_preempting(self):
        cluster, store, injector = make_env(num_stripes=40)
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=4),
            chunk_size=CHUNK, slice_size=SLICE, concurrency=4,
        )
        runner.repair(report.failed_chunks)
        in_flight = dict(runner.in_flight)
        assert len(in_flight) == 4
        runner.set_concurrency(1)
        # Nothing cancelled: the same four instances are still live ...
        assert runner.in_flight == in_flight
        # ... and once they drain, launches respect the new cap.
        max_seen = 0
        t = cluster.sim.now
        while not runner.done and t < 10000:
            t = cluster.sim.run(until=t + 0.5)
            if len(runner.in_flight) < 4:
                max_seen = max(max_seen, len(runner.in_flight))
            if cluster.sim.pending_events() == 0:
                break
        cluster.sim.run()
        assert runner.done
        assert max_seen <= 1

    def test_set_concurrency_validation(self):
        cluster, store, injector = make_env()
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        with pytest.raises(SchedulingError):
            runner.set_concurrency(0)

    def test_faster_network_repairs_faster(self):
        results = {}
        for bw in (mbs(50), mbs(200)):
            cluster, store, injector = make_env(link=bw, seed=9)
            report = injector.fail_nodes([0])
            runner = RepairRunner(
                cluster, store, injector, ConventionalRepair(seed=1),
                chunk_size=CHUNK, slice_size=SLICE,
            )
            runner.repair(report.failed_chunks)
            cluster.sim.run()
            results[bw] = runner.meter.throughput
        assert results[mbs(200)] > results[mbs(50)]


class TestOtherCodes:
    def test_lrc_repair_uses_local_group(self):
        code = LRCCode(4, 2, 2)
        cluster, store, injector = make_env(code=code, num_nodes=12)
        report = injector.fail_nodes([0])
        data_chunks = [c for c in report.failed_chunks if c.index < code.k]
        if not data_chunks:
            pytest.skip("no data chunk landed on node 0")
        algo = ConventionalRepair(seed=5)
        plan = algo.make_plan(data_chunks[0], code, injector)
        assert len(plan.sources) == code.group_size  # k/l survivors

    def test_butterfly_repair_is_star_with_half_reads(self):
        code = ButterflyCode()
        cluster, store, injector = make_env(code=code, num_nodes=8)
        report = injector.fail_nodes([0])
        chunk = next(c for c in report.failed_chunks if c.index != 3)
        algo = PPR(seed=6)  # would build a tree, but Butterfly forbids it
        plan = algo.make_plan(chunk, code, injector)
        assert all(v == plan.destination for v in plan.parent.values())
        assert plan.read_fraction == 0.5

    def test_butterfly_full_node_repair(self):
        code = ButterflyCode()
        cluster, store, injector = make_env(code=code, num_nodes=8, num_stripes=12)
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=7),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done


class TestRepairBoost:
    def test_wrapped_name(self):
        assert RepairBoost(ECPipe()).name == "RB+ECPipe"

    def test_balances_destinations(self):
        cluster, store, injector = make_env(num_stripes=40)
        report = injector.fail_nodes([0])
        algo = RepairBoost(ConventionalRepair(), seed=8)
        destinations = []
        for chunk in report.failed_chunks:
            plan = algo.make_plan(chunk, store.code, injector)
            destinations.append(plan.destination)
            store.relocate(chunk, plan.destination)
        # Load spread: no destination hoards the repairs.
        from collections import Counter

        counts = Counter(destinations)
        assert max(counts.values()) - min(counts.values()) <= 3

    def test_boosted_repair_completes(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, RepairBoost(PPR(), seed=9),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert runner.done


class TestPlanInstanceMechanics:
    def test_retune_redirects_edge(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        algo = ECPipe(seed=10)
        plan = algo.make_plan(chunk, store.code, injector)
        instance = PlanInstance(
            cluster, plan, chunk_size=CHUNK, slice_size=SLICE
        )
        instance.start()
        # Pick an edge not pointing at the destination and retune it.
        uploader = next(
            u for u, v in plan.edges() if v != plan.destination
        )
        old = instance.uploads[uploader]
        cluster.sim.run(until=0.05)
        new = instance.retune(old)
        assert plan.parent[uploader] == plan.destination
        assert old.cancelled
        cluster.sim.run()
        assert instance.done
        assert new.done

    def test_pause_resume_roundtrip(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        plan = ConventionalRepair(seed=11).make_plan(chunk, store.code, injector)
        instance = PlanInstance(cluster, plan, chunk_size=CHUNK, slice_size=SLICE)
        instance.start()
        cluster.sim.run(until=0.02)
        instance.pause()
        free_point = cluster.sim.run(until=5.0)
        assert not instance.done
        instance.resume()
        cluster.sim.run()
        assert instance.done
        assert instance.completed_at > free_point
