"""Tests for max-min fair allocation and fluid flow completion."""

import pytest

from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.sim import Flow, FlowScheduler, Resource, Simulator, allocate_rates


def make_env():
    sim = Simulator()
    return sim, FlowScheduler(sim)


class TestAllocator:
    def test_single_flow_gets_capacity(self):
        r = Resource("up", 100.0)
        f = Flow("f", 1000, (r,))
        allocate_rates([f])
        assert f.rate == pytest.approx(100.0)

    def test_equal_sharing(self):
        r = Resource("up", 100.0)
        flows = [Flow(f"f{i}", 1000, (r,)) for i in range(4)]
        allocate_rates(flows)
        assert all(f.rate == pytest.approx(25.0) for f in flows)

    def test_bottleneck_identification(self):
        # Two flows share a 100 B/s uplink; one also crosses a 30 B/s
        # downlink. Max-min: constrained flow gets 30, the other 70.
        up = Resource("up", 100.0)
        down = Resource("down", 30.0)
        constrained = Flow("slow", 1000, (up, down))
        free = Flow("fast", 1000, (up,))
        allocate_rates([constrained, free])
        assert constrained.rate == pytest.approx(30.0)
        assert free.rate == pytest.approx(70.0)

    def test_multi_resource_chain(self):
        # Flow limited by the tightest resource on its path.
        a, b, c = Resource("a", 100), Resource("b", 10), Resource("c", 50)
        f = Flow("f", 100, (a, b, c))
        allocate_rates([f])
        assert f.rate == pytest.approx(10.0)

    def test_empty_input_ok(self):
        allocate_rates([])

    def test_no_resource_flow_unbounded(self):
        f = Flow("f", 10, ())
        allocate_rates([f])
        assert f.rate == float("inf")


class TestFlowScheduler:
    def test_flow_completes_at_expected_time(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f = Flow("f", 1000, (r,))
        sched.start_flow(f)
        sim.run()
        assert f.done
        assert f.completed_at == pytest.approx(10.0)

    def test_two_flows_share_then_speed_up(self):
        # Two equal flows on one link: first halves finish together at
        # t=10 (50 B/s each); after one completes, nothing remains.
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f1 = Flow("f1", 500, (r,))
        f2 = Flow("f2", 1000, (r,))
        sched.start_flow(f1)
        sched.start_flow(f2)
        sim.run()
        assert f1.completed_at == pytest.approx(10.0)
        # f2: 500B by t=10 at 50 B/s, remaining 500B at 100 B/s -> t=15.
        assert f2.completed_at == pytest.approx(15.0)

    def test_late_arrival_shares_fairly(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f1 = Flow("f1", 1000, (r,))
        sched.start_flow(f1)
        f2 = Flow("f2", 400, (r,))
        sim.schedule(5.0, lambda: sched.start_flow(f2))
        sim.run()
        # f1 alone 0-5s: 500B. Shared 50/50 until f2 done at 5+8=13s
        # (f2: 400B at 50B/s). f1 then has 100B left at 100B/s -> 14s.
        assert f2.completed_at == pytest.approx(13.0)
        assert f1.completed_at == pytest.approx(14.0)

    def test_cancel_flow_releases_bandwidth(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f1 = Flow("f1", 1000, (r,))
        f2 = Flow("f2", 1000, (r,))
        sched.start_flow(f1)
        sched.start_flow(f2)
        sim.schedule(5.0, lambda: sched.cancel_flow(f2))
        sim.run()
        # f1: 250B by t=5, then full rate: (1000-250)/100 = 7.5 -> 12.5s.
        assert f1.completed_at == pytest.approx(12.5)
        assert f2.cancelled and not f2.done

    def test_zero_size_flow_completes_immediately(self):
        sim, sched = make_env()
        f = Flow("f", 0, (Resource("r", 10),))
        done = []
        f.on_complete.append(lambda fl: done.append(sim.now))
        sched.start_flow(f)
        sim.run()
        assert done == [0.0]

    def test_byte_accounting_by_tag(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        sched.start_flow(Flow("rep", 300, (r,), tag="repair"))
        sched.start_flow(Flow("fg", 200, (r,), tag="foreground"))
        sim.run()
        assert r.bytes_for("repair") == pytest.approx(300.0)
        assert r.bytes_for("foreground") == pytest.approx(200.0)
        assert r.total_bytes == pytest.approx(500.0)

    def test_capacity_change_rebalances(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f = Flow("f", 1000, (r,))
        sched.start_flow(f)

        def throttle():
            r.set_capacity(50.0)
            sched.capacity_changed()

        sim.schedule(5.0, throttle)
        sim.run()
        # 500B in 5s, remaining 500B at 50B/s -> 15s total.
        assert f.completed_at == pytest.approx(15.0)

    def test_completion_callback_starts_next_flow(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f1 = Flow("f1", 500, (r,))
        f2 = Flow("f2", 500, (r,))
        f1.on_complete.append(lambda _: sched.start_flow(f2))
        sched.start_flow(f1)
        sim.run()
        assert f2.completed_at == pytest.approx(10.0)

    def test_cancel_completed_flow_is_full_noop(self):
        # Regression: cancel used to mark completed flows cancelled and
        # bump the cancelled counter; now it must leave them untouched.
        sim, sched = make_env()
        f = Flow("f", 100, (Resource("r", 100.0),))
        sched.start_flow(f)
        sim.run()
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            sched.cancel_flow(f)
        finally:
            set_registry(previous)
        assert f.done and not f.cancelled
        assert registry.counter("flows.cancelled").value == 0

    def test_double_cancel_counts_once(self):
        sim, sched = make_env()
        r = Resource("r", 100.0)
        f = Flow("f", 1000, (r,))
        sched.start_flow(f)
        sim.run(until=1.0)
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            sched.cancel_flow(f)
            sched.cancel_flow(f)
        finally:
            set_registry(previous)
        assert f.cancelled
        assert registry.counter("flows.cancelled").value == 1

    def test_cancel_never_started_not_counted(self):
        # A never-started flow is only marked cancelled (so start_flow
        # raises later); it was never live, so the counter stays put.
        sim, sched = make_env()
        f = Flow("f", 100, (Resource("r", 100.0),))
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            sched.cancel_flow(f)
        finally:
            set_registry(previous)
        assert f.cancelled and not f.done
        assert registry.counter("flows.cancelled").value == 0
        with pytest.raises(SimulationError):
            sched.start_flow(f)

    def test_restart_finished_flow_raises(self):
        sim, sched = make_env()
        r = Resource("link", 100.0)
        f = Flow("f", 100, (r,))
        sched.start_flow(f)
        sim.run()
        with pytest.raises(SimulationError):
            sched.start_flow(f)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            Flow("bad", -5, ())

    def test_resource_validation(self):
        with pytest.raises(SimulationError):
            Resource("bad", 0)
