"""The shared event-hook protocol (the sole subscription path)."""

import pytest

from repro.cluster import Cluster, FailureInjector, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.core import ChameleonRepair
from repro.events import HookEmitter
from repro.monitor import BandwidthMonitor
from repro.repair import ConventionalRepair, RepairRunner

CHUNK = 16 * MB
SLICE = 4 * MB


class Gadget(HookEmitter):
    HOOK_EVENTS = ("ping", "pong")


class OpenGadget(HookEmitter):
    pass  # no HOOK_EVENTS: any event name is accepted


def make_env():
    cluster = Cluster(
        num_nodes=12, num_clients=0, link_bw=mbs(100),
        disk_read_bw=mbs(1000), disk_write_bw=mbs(1000),
    )
    store = place_stripes(RSCode(4, 2), 20, cluster.storage_ids,
                          chunk_size=CHUNK, seed=0)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


class TestHookEmitter:
    def test_on_emit_payload(self):
        g = Gadget()
        seen = []
        g.on("ping", lambda emitter, **kw: seen.append((emitter, kw)))
        g.emit("ping", g, value=3)
        assert seen == [(g, {"value": 3})]

    def test_on_returns_self_for_chaining(self):
        g = Gadget()
        assert g.on("ping", lambda *a, **k: None) is g

    def test_unknown_event_rejected_at_subscription(self):
        g = Gadget()
        with pytest.raises(ValueError, match="unknown event"):
            g.on("pingg", lambda *a, **k: None)

    def test_unconstrained_emitter_accepts_any_event(self):
        g = OpenGadget()
        seen = []
        g.on("anything", lambda *a, **k: seen.append(1))
        g.emit("anything")
        assert seen == [1]

    def test_off_removes_subscription(self):
        g = Gadget()
        seen = []
        cb = lambda *a, **k: seen.append(1)  # noqa: E731
        g.on("ping", cb)
        g.off("ping", cb)
        g.off("ping", cb)  # no-op when already gone
        g.emit("ping", g)
        assert seen == []

    def test_emit_snapshots_subscribers(self):
        # A callback registered during emission must not see that emission.
        g = Gadget()
        seen = []

        def first(emitter):
            seen.append("first")
            emitter.on("ping", lambda e: seen.append("late"))

        g.on("ping", first)
        g.emit("ping", g)
        assert seen == ["first"]
        g.emit("ping", g)
        assert seen.count("late") == 1

    def test_event_keyword_allowed_in_payload(self):
        g = Gadget()
        seen = []
        g.on("ping", lambda emitter, event: seen.append(event))
        g.emit("ping", g, event="the-trigger")
        assert seen == ["the-trigger"]


class TestLegacyKwargsRemoved:
    """The deprecated ``on_all_done=``/``on_done=`` kwargs are gone; the
    constructors reject them like any unknown keyword, and ``on()`` is
    the replacement path."""

    def test_runner_rejects_on_all_done_kwarg(self):
        cluster, store, injector = make_env()
        with pytest.raises(TypeError, match="on_all_done"):
            RepairRunner(
                cluster, store, injector, ConventionalRepair(),
                chunk_size=CHUNK, slice_size=SLICE,
                on_all_done=lambda r: None,
            )

    def test_chameleon_rejects_on_all_done_kwarg(self):
        cluster, store, injector = make_env()
        monitor = BandwidthMonitor(cluster)
        monitor.start()
        with pytest.raises(TypeError, match="on_all_done"):
            ChameleonRepair(
                cluster, store, injector, monitor,
                chunk_size=CHUNK, slice_size=SLICE,
                on_all_done=lambda c: None,
            )

    def test_trace_client_rejects_on_done_kwarg(self):
        from repro.traffic import KeyRouter, TraceClient, ycsb_a

        cluster = Cluster(num_nodes=6, num_clients=1, link_bw=mbs(100))
        store = place_stripes(RSCode(4, 2), 6, cluster.storage_ids,
                              chunk_size=CHUNK, seed=1)
        router = KeyRouter(store, cluster)
        with pytest.raises(TypeError, match="on_done"):
            TraceClient(
                cluster, cluster.clients[0], ycsb_a(seed=2), router,
                num_requests=3, on_done=lambda c: None,
            )

    def test_on_event_is_the_replacement(self):
        cluster, store, injector = make_env()
        done = []
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(),
            chunk_size=CHUNK, slice_size=SLICE,
        ).on("all_done", lambda r: done.append(1))
        runner.repair([])
        assert done == [1]


class TestRepairEvents:
    def test_chunk_repaired_and_all_done_fire(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=1),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        repaired, finished = [], []
        runner.on("chunk_repaired", lambda r, chunk, plan: repaired.append(chunk))
        runner.on("all_done", lambda r: finished.append(r))
        runner.repair(report.failed_chunks)
        cluster.sim.run()
        assert set(repaired) == set(report.failed_chunks)
        assert finished == [runner]

    def test_client_request_done_event(self):
        from repro.traffic import KeyRouter, TraceClient, ycsb_a

        cluster = Cluster(num_nodes=6, num_clients=1, link_bw=mbs(100))
        store = place_stripes(RSCode(4, 2), 6, cluster.storage_ids,
                              chunk_size=CHUNK, seed=1)
        router = KeyRouter(store, cluster)
        client = TraceClient(
            cluster, cluster.clients[0], ycsb_a(seed=2), router, num_requests=5,
        )
        latencies = []
        client.on("request_done", lambda c, latency, size: latencies.append(latency))
        client.start()
        cluster.sim.run()
        assert len(latencies) == 5
        assert all(lat > 0 for lat in latencies)
