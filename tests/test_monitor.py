"""Tests for bandwidth monitoring and straggler detection."""

import pytest

from repro.cluster import Cluster, mbs
from repro.errors import SimulationError
from repro.monitor import BandwidthMonitor, ProgressTracker
from repro.sim import Flow, Resource, Transfer


def make_cluster():
    return Cluster(num_nodes=4, num_clients=1, link_bw=mbs(100))


class TestBandwidthMonitor:
    def test_idle_equals_capacity_when_quiet(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        cluster.sim.run(until=3.0)
        node = cluster.storage_nodes[0]
        assert monitor.idle_uplink(node) == pytest.approx(node.uplink.capacity)

    def test_foreground_reduces_idle_estimate(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        node = cluster.storage_nodes[0]
        # Saturate node 0's uplink with foreground traffic for 2 seconds.
        flow = Flow("fg", mbs(100) * 2, (node.uplink,), tag="foreground")
        cluster.flows.start_flow(flow)
        cluster.sim.run(until=2.0)
        assert monitor.foreground_bw(node.uplink) == pytest.approx(mbs(100), rel=0.05)
        # Idle estimate floors at a small fraction instead of zero.
        assert 0 < monitor.idle_uplink(node) <= 0.05 * node.uplink.capacity

    def test_repair_traffic_not_counted_as_foreground(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        node = cluster.storage_nodes[1]
        flow = Flow("rep", mbs(100) * 2, (node.uplink,), tag="repair")
        cluster.flows.start_flow(flow)
        cluster.sim.run(until=2.0)
        assert monitor.foreground_bw(node.uplink) == pytest.approx(0.0, abs=1.0)
        assert monitor.idle_uplink(node) == pytest.approx(node.uplink.capacity)

    def test_window_expires_old_traffic(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        node = cluster.storage_nodes[0]
        flow = Flow("fg", mbs(100) * 1, (node.uplink,), tag="foreground")
        cluster.flows.start_flow(flow)
        cluster.sim.run(until=5.0)  # traffic finished at t=1; windows move on
        assert monitor.foreground_bw(node.uplink) == pytest.approx(0.0, abs=1.0)

    def test_irregular_manual_sampling(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        node = cluster.storage_nodes[0]
        flow = Flow("fg", mbs(100) * 0.5, (node.uplink,), tag="foreground")
        cluster.flows.start_flow(flow)
        cluster.sim.run(until=0.5)
        monitor.sample()  # elapsed 0.5 s, not the nominal window
        assert monitor.foreground_bw(node.uplink) == pytest.approx(mbs(100), rel=0.05)

    def test_disk_accessors(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        node = cluster.storage_nodes[0]
        assert monitor.idle_disk_read(node) == pytest.approx(node.disk_read.capacity)
        assert monitor.idle_disk_write(node) == pytest.approx(node.disk_write.capacity)

    def test_invalid_window(self):
        with pytest.raises(SimulationError):
            BandwidthMonitor(make_cluster(), window=0)

    def test_double_start_noop(self):
        cluster = make_cluster()
        monitor = BandwidthMonitor(cluster, window=1.0)
        monitor.start()
        monitor.start()
        cluster.sim.run(until=2.5)  # would raise if double-scheduled oddly


class TestProgressTracker:
    def test_delayed_detection(self):
        tracker = ProgressTracker(threshold=1.0)
        transfer = Transfer("t", (Resource("r", 100),), 1000, 100)
        tracker.track(transfer, expected_finish=5.0)
        assert tracker.delayed_tasks(now=5.5) == []
        delayed = tracker.delayed_tasks(now=6.5)
        assert len(delayed) == 1
        assert delayed[0].transfer is transfer

    def test_done_tasks_not_delayed(self):
        tracker = ProgressTracker(threshold=1.0)
        transfer = Transfer("t", (Resource("r", 100),), 1000, 100)
        transfer.completed_at = 4.0
        tracker.track(transfer, expected_finish=2.0)
        assert tracker.delayed_tasks(now=10.0) == []

    def test_cancelled_tasks_not_delayed(self):
        tracker = ProgressTracker(threshold=1.0)
        transfer = Transfer("t", (Resource("r", 100),), 1000, 100)
        transfer.cancelled = True
        tracker.track(transfer, expected_finish=2.0)
        assert tracker.delayed_tasks(now=10.0) == []

    def test_negative_expectation_rejected(self):
        tracker = ProgressTracker()
        transfer = Transfer("t", (Resource("r", 100),), 1000, 100)
        with pytest.raises(SimulationError):
            tracker.track(transfer, expected_finish=-1.0)

    def test_clear_finished(self):
        tracker = ProgressTracker()
        done = Transfer("a", (Resource("r", 100),), 100, 100)
        done.completed_at = 1.0
        live = Transfer("b", (Resource("r", 100),), 100, 100)
        tracker.track(done, 1.0)
        tracker.track(live, 1.0)
        tracker.clear_finished()
        assert [t.transfer for t in tracker.tasks] == [live]

    def test_pending_tasks(self):
        tracker = ProgressTracker()
        live = Transfer("b", (Resource("r", 100),), 100, 100)
        tracker.track(live, 1.0)
        assert [t.transfer for t in tracker.pending_tasks()] == [live]

    def test_scan_prunes_finished_tasks(self):
        # The tracked set must not grow with every transfer ever
        # dispatched: a scan drops done/cancelled tasks and keeps counts.
        tracker = ProgressTracker(threshold=1.0)
        done = Transfer("a", (Resource("r", 100),), 100, 100)
        done.completed_at = 1.0
        cancelled = Transfer("b", (Resource("r", 100),), 100, 100)
        cancelled.cancelled = True
        live = Transfer("c", (Resource("r", 100),), 100, 100)
        tracker.track(done, 1.0)
        tracker.track(cancelled, 1.0)
        tracker.track(live, 5.0)
        tracker.delayed_tasks(now=2.0)
        assert [t.transfer for t in tracker.tasks] == [live]
        assert tracker.completed_count == 1
        assert tracker.cancelled_count == 1

    def test_pruned_counts_accumulate_across_scans(self):
        tracker = ProgressTracker(threshold=1.0)
        for i in range(3):
            done = Transfer(f"t{i}", (Resource("r", 100),), 100, 100)
            tracker.track(done, 1.0)
            done.completed_at = float(i)
            tracker.delayed_tasks(now=10.0)
        assert tracker.tasks == []
        assert tracker.completed_count == 3

    def test_clear_finished_counts_and_drops_cancelled(self):
        tracker = ProgressTracker()
        done = Transfer("a", (Resource("r", 100),), 100, 100)
        done.completed_at = 1.0
        cancelled = Transfer("b", (Resource("r", 100),), 100, 100)
        cancelled.cancelled = True
        tracker.track(done, 1.0)
        tracker.track(cancelled, 1.0)
        tracker.clear_finished()
        assert tracker.tasks == []
        assert tracker.completed_count == 1
        assert tracker.cancelled_count == 1
