"""The repro.api facade: TestbedBuilder normalization, the deprecated
Scenario shim, asymmetric disk bandwidth, and the stable re-exports."""

import pytest

import repro
from repro.api import Testbed, TestbedBuilder, _normalize_code, _normalize_trace
from repro.cluster import Cluster, mbs
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_repair_experiment
from repro.experiments.scenario import Scenario
from repro.faults import FaultTimeline


class TestNormalization:
    @pytest.mark.parametrize(
        ("spec", "expected"),
        [
            ("rs-6-3", "RS(6,3)"),
            ("RS-10-4", "RS(10,4)"),
            ("lrc-12-2-2", "LRC(12,2,2)"),
            ("butterfly-4-2", "Butterfly(4,2)"),
            ("RS(6,3)", "RS(6,3)"),  # canonical specs pass through
            ("rs(6,3)", "RS(6,3)"),  # registry form is case-normalized
            ("RS(6, 3)", "RS(6,3)"),  # whitespace tolerated
        ],
    )
    def test_code_specs(self, spec, expected):
        assert _normalize_code(spec) == expected

    @pytest.mark.parametrize(
        "bad",
        [
            "paritycheck-6-3",
            "rs",
            "rs-a-b",
            "XOR(6,3)",  # unknown family in registry form
            "RS(6,)",  # malformed parameter list
            "RS(a,b)",  # non-numeric parameters
            "",
        ],
    )
    def test_bad_code_spec_rejected(self, bad):
        with pytest.raises(ReproError, match="valid forms"):
            _normalize_code(bad)

    @pytest.mark.parametrize(
        ("slug", "expected"),
        [
            ("ycsb-a", "YCSB-A"),
            ("YCSB-A", "YCSB-A"),
            ("ibm-os", "IBM-OS"),
            ("memcached", "Memcached"),
            ("facebook-etc", "Facebook-ETC"),
        ],
    )
    def test_trace_slugs(self, slug, expected):
        assert _normalize_trace(slug) == expected

    def test_unknown_trace_rejected(self):
        with pytest.raises(ReproError, match="valid traces"):
            _normalize_trace("zipf-99")


class TestBuilder:
    def test_builder_produces_config(self):
        config = (
            TestbedBuilder()
            .with_code("rs-6-3")
            .with_nodes(18)
            .with_clients(2)
            .with_trace("ycsb-a")
            .with_chunks(10)
            .with_seed(5)
            .with_link(25.0)
            .with_disk(500.0, read_mbs=800.0, write_mbs=300.0)
            .config()
        )
        assert config.code == "RS(6,3)"
        assert config.num_nodes == 18
        assert config.num_clients == 2
        assert config.trace == "YCSB-A"
        assert config.num_chunks == 10
        assert config.seed == 5
        assert config.link_gbps == 25.0
        assert config.disk_mbs == 500.0
        assert config.disk_read_mbs == 800.0
        assert config.disk_write_mbs == 300.0

    def test_with_options_passthrough(self):
        config = TestbedBuilder().with_options(t_phase=3.0, racks=2).config()
        assert config.t_phase == 3.0
        assert config.racks == 2

    def test_build_returns_testbed(self):
        testbed = TestbedBuilder().scaled(0.05).build()
        assert isinstance(testbed, Testbed)
        assert testbed.cluster.sim is not None

    def test_classmethod_builder(self):
        assert isinstance(Testbed.builder(), TestbedBuilder)


class TestScenarioShim:
    def test_scenario_is_a_deprecated_testbed(self):
        """The legacy entry point still works — as a Testbed — but warns."""
        config = ExperimentConfig.scaled(0.05, seed=3)
        with pytest.warns(DeprecationWarning, match="Testbed"):
            legacy = Scenario(config)
        assert isinstance(legacy, Testbed)

    def test_lazy_package_attribute_warns_only_at_construction(self):
        import repro.experiments

        cls = repro.experiments.Scenario  # import itself must not warn
        config = ExperimentConfig.scaled(0.05, seed=3)
        with pytest.warns(DeprecationWarning):
            cls(config)

    def test_fault_free_run_matches_legacy_scenario(self):
        """Routing an experiment through the shim must not change the
        physics: same config, same algorithm, same repair time."""
        config = ExperimentConfig.scaled(0.05, seed=3)
        with pytest.warns(DeprecationWarning):
            shimmed = Scenario(config)
        legacy = run_repair_experiment(config, "CR", scenario=shimmed)
        faceted = run_repair_experiment(
            config, "CR", scenario=Testbed.build(config)
        )
        assert faceted.repair_time == pytest.approx(legacy.repair_time)
        assert faceted.chunks == legacy.chunks
        assert faceted.repaired_bytes == legacy.repaired_bytes


class TestAsymmetricDisk:
    def test_config_reaches_node_resources(self):
        config = ExperimentConfig.scaled(
            0.05, disk_read_mbs=800.0, disk_write_mbs=300.0
        )
        testbed = Testbed.build(config)
        node = testbed.cluster.node(testbed.cluster.storage_ids[0])
        assert node.disk_read.capacity == pytest.approx(mbs(800))
        assert node.disk_write.capacity == pytest.approx(mbs(300))

    def test_symmetric_default_from_disk_mbs(self):
        config = ExperimentConfig.scaled(0.05, disk_mbs=700.0)
        testbed = Testbed.build(config)
        node = testbed.cluster.node(testbed.cluster.storage_ids[0])
        assert node.disk_read.capacity == pytest.approx(mbs(700))
        assert node.disk_write.capacity == pytest.approx(mbs(700))

    def test_set_disk_bandwidth_split(self):
        cluster = Cluster(num_nodes=4, num_clients=0, link_bw=mbs(100))
        node = cluster.node(cluster.storage_ids[0])
        cluster.set_disk_bandwidth(mbs(600), mbs(250))
        assert node.disk_read.capacity == pytest.approx(mbs(600))
        assert node.disk_write.capacity == pytest.approx(mbs(250))
        cluster.set_disk_bandwidth(mbs(400))
        assert node.disk_read.capacity == pytest.approx(mbs(400))
        assert node.disk_write.capacity == pytest.approx(mbs(400))

    def test_negative_disk_bandwidth_rejected(self):
        with pytest.raises(ReproError):
            ExperimentConfig.scaled(0.05, disk_read_mbs=-1.0)


class TestFaultWiring:
    def test_install_faults_forwards_crash_chunks(self):
        testbed = TestbedBuilder().scaled(0.06).with_seed(2).build()
        report = testbed.injector.fail_nodes([testbed.cluster.storage_ids[0]])
        repairer = testbed.make_repairer("ChameleonEC")
        adopted = []
        repairer.on("chunks_added", lambda r, chunks: adopted.extend(chunks))
        victim = next(
            n for n in testbed.cluster.storage_ids if testbed.cluster.node(n).alive
        )
        timeline = FaultTimeline(seed=1).crash(0.5, victim)
        testbed.install_faults(timeline)
        repairer.repair(report.failed_chunks)
        testbed.run_until(lambda: repairer.done, step=2.0)
        assert repairer.done
        assert repairer.lost == []
        assert adopted  # the crash report reached the running repairer
        assert not testbed.cluster.node(victim).alive

    def test_repairers_are_tracked(self):
        testbed = TestbedBuilder().scaled(0.05).build()
        repairer = testbed.make_repairer("CR")
        assert testbed.repairers == [repairer]


class TestRunUntilLimit:
    def test_limit_raises_convergence_error(self):
        """A predicate that never turns true must surface as a clear
        RuntimeError at the limit, not an infinite loop or a bare None."""
        from repro.errors import ConvergenceError

        testbed = TestbedBuilder().scaled(0.05).build()
        with pytest.raises(ConvergenceError, match="limit"):
            testbed.run_until(lambda: False, step=1.0, limit=3.0)

    def test_satisfied_predicate_returns_the_clock(self):
        testbed = TestbedBuilder().scaled(0.05).build()
        end = testbed.run_until(
            lambda: testbed.cluster.sim.now >= 2.0, step=1.0, limit=10.0
        )
        assert end >= 2.0


class TestReExports:
    @pytest.mark.parametrize(
        "name",
        [
            "Testbed",
            "TestbedBuilder",
            "ExperimentConfig",
            "HookEmitter",
            "FaultTimeline",
            "FaultEvent",
            "NodeCrash",
            "BandwidthDegradation",
            "TransientStraggler",
            "FlowInterruption",
            "ToleranceExceeded",
        ],
    )
    def test_stable_surface(self, name):
        assert hasattr(repro, name)
        assert name in repro.__all__
