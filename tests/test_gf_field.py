"""Unit tests for GF(2^8) scalar and vector arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.gf import (
    EXP_TABLE,
    INV_TABLE,
    LOG_TABLE,
    MUL_TABLE,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_pow,
    gf_sub,
    vec_addmul,
    vec_scale,
    vec_xor,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarOps:
    def test_add_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        for a, b in [(3, 7), (255, 1), (0, 0)]:
            assert gf_sub(a, b) == gf_add(a, b)

    def test_mul_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a
            assert gf_mul(1, a) == a

    def test_mul_zero(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0
            assert gf_mul(0, a) == 0

    def test_mul_known_values(self):
        # 2 * 2 = 4; 0x80 * 2 = 0x100 mod 0x11D = 0x1D.
        assert gf_mul(2, 2) == 4
        assert gf_mul(0x80, 2) == 0x1D

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    def test_inv_zero_raises(self):
        with pytest.raises(CodingError):
            gf_inv(0)

    @given(elements, nonzero)
    def test_div_mul_roundtrip(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    def test_div_by_zero_raises(self):
        with pytest.raises(CodingError):
            gf_div(5, 0)

    @given(nonzero, st.integers(min_value=-10, max_value=10))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        base = a if n >= 0 else gf_inv(a)
        for _ in range(abs(n)):
            expected = gf_mul(expected, base)
        assert gf_pow(a, n) == expected

    def test_pow_zero_base(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(CodingError):
            gf_pow(0, -1)


class TestTables:
    def test_exp_log_roundtrip(self):
        for a in range(1, 256):
            assert EXP_TABLE[LOG_TABLE[a]] == a

    def test_exp_table_periodic(self):
        assert EXP_TABLE[255] == EXP_TABLE[0]

    def test_mul_table_symmetric(self):
        assert np.array_equal(MUL_TABLE, MUL_TABLE.T)

    def test_inv_table_matches_gf_inv(self):
        for a in range(1, 256):
            assert INV_TABLE[a] == gf_inv(a)

    def test_field_elements_unique(self):
        assert len(set(int(EXP_TABLE[i]) for i in range(255))) == 255


class TestVectorOps:
    def test_vec_scale_by_zero_and_one(self):
        data = np.arange(256, dtype=np.uint8)
        assert np.all(vec_scale(data, 0) == 0)
        assert np.array_equal(vec_scale(data, 1), data)

    @given(elements)
    def test_vec_scale_matches_scalar(self, coeff):
        data = np.arange(256, dtype=np.uint8)
        scaled = vec_scale(data, coeff)
        for i in range(0, 256, 17):
            assert scaled[i] == gf_mul(int(data[i]), coeff)

    def test_vec_addmul_accumulates(self):
        acc = np.zeros(8, dtype=np.uint8)
        data = np.arange(8, dtype=np.uint8)
        vec_addmul(acc, data, 3)
        expected = vec_scale(data, 3)
        assert np.array_equal(acc, expected)
        vec_addmul(acc, data, 3)
        assert np.all(acc == 0)

    def test_vec_addmul_zero_coeff_is_noop(self):
        acc = np.ones(4, dtype=np.uint8)
        vec_addmul(acc, np.full(4, 9, dtype=np.uint8), 0)
        assert np.all(acc == 1)

    def test_vec_xor(self):
        a = np.array([1, 2, 3], dtype=np.uint8)
        b = np.array([3, 2, 1], dtype=np.uint8)
        assert np.array_equal(vec_xor(a, b), np.array([2, 0, 2], dtype=np.uint8))
