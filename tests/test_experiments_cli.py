"""Tests for the experiment CLI and row formatters (no heavy simulation)."""

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_all_experiments_registered(self):
        expected = {f"exp{i:02d}" for i in range(1, 21)} | {
            "fig2",
            "fig4",
            "fig5",
            "fig6",
        }
        assert set(EXPERIMENTS) == expected

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Pr_dl" in out
        assert "50 MB/s" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["exp99"])

    def test_scale_argument_parsed(self, capsys):
        # exp05 ignores scale but exercises argument plumbing cheaply.
        assert main(["fig2", "--scale", "0.5", "--seed", "3"]) == 0


class TestRowFormatters:
    def test_exp01_rows(self):
        from repro.experiments.exp01_interference import rows_p99, rows_throughput
        from repro.experiments.harness import RepairResult

        fake = {
            ("YCSB-A", "CR"): RepairResult(
                algorithm="CR", trace="YCSB-A", repair_time=2.0,
                repaired_bytes=200e6, chunks=3, p99_latency=0.004,
            ),
            ("YCSB-A", "ChameleonEC"): RepairResult(
                algorithm="ChameleonEC", trace="YCSB-A", repair_time=1.0,
                repaired_bytes=200e6, chunks=3, p99_latency=0.003,
            ),
        }
        tp = rows_throughput(fake)
        assert tp == [["YCSB-A", 100.0, 200.0]]
        p99 = rows_p99(fake)
        assert p99 == [["YCSB-A", 4.0, 3.0]]

    def test_exp02_rows(self):
        from repro.experiments.exp02_trace_slowdown import rows

        fake = {("YCSB-A", "CR"): 0.5, ("YCSB-A", "ChameleonEC"): 0.2}
        assert rows(fake) == [["YCSB-A", 0.5, 0.2]]

    def test_exp05_rows(self):
        from repro.experiments.exp05_computation import rows

        fake = {(50, 200): 0.1, (50, 600): 0.2, (100, 200): 0.15, (100, 600): 0.3}
        out = rows(fake)
        assert out[0] == ["n=50", 0.1, 0.2]
        assert out[1] == ["n=100", 0.15, 0.3]

    def test_exp07_rows_missing_cells(self):
        from repro.experiments.exp07_no_foreground import rows
        from repro.experiments.harness import RepairResult

        fake = {
            (1.0, "CR"): RepairResult(
                algorithm="CR", trace="none", repair_time=1.0,
                repaired_bytes=50e6, chunks=1,
            )
        }
        out = rows(fake)
        assert out[0][0] == "1 Gb/s"
        assert out[0][1] == 50.0

    def test_fig2_rows(self):
        from repro.experiments.figures import fig2_rows

        assert fig2_rows([(50.0, 1e-6)]) == [["50 MB/s", 1e-6]]

    def test_motivation_rows(self):
        from repro.experiments.harness import RepairResult
        from repro.experiments.motivation import rows_p99, rows_repair_time

        fake = {
            "repair": {
                (0, "CR"): RepairResult(
                    algorithm="CR", trace="none", repair_time=3.0,
                    repaired_bytes=10e6, chunks=1,
                ),
                (4, "CR"): RepairResult(
                    algorithm="CR", trace="YCSB-A", repair_time=5.0,
                    repaired_bytes=10e6, chunks=1, p99_latency=0.01,
                ),
            },
            "ycsb_only_p99": 0.008,
        }
        rt = rows_repair_time(fake)
        assert rt[0][0] == "C=0" and rt[0][1] == 3.0
        p99 = rows_p99(fake)
        assert p99[0][0] == "YCSB-Only"
        assert p99[0][1] == 8.0


class TestPublicAPI:
    def test_top_level_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__
