"""End-to-end data-plane tests: repairs restore byte-identical payloads."""

import numpy as np
import pytest

from repro.cluster import (
    ChunkId,
    ChunkStore,
    Cluster,
    FailureInjector,
    MB,
    drop_node_chunks,
    encode_and_load,
    mbs,
    place_stripes,
)
from repro.codes import ButterflyCode, LRCCode, RSCode
from repro.core import ChameleonRepair
from repro.errors import PlanError, SimulationError
from repro.monitor import BandwidthMonitor
from repro.repair import ConventionalRepair, DataPlane, ECPipe, PPR, RepairRunner

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(code=None, num_nodes=12, num_stripes=15, seed=0):
    code = code if code is not None else RSCode(4, 2)
    cluster = Cluster(num_nodes=num_nodes, num_clients=1, link_bw=mbs(200))
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    chunk_store = encode_and_load(store, payload_size=128, seed=seed + 1)
    return cluster, store, injector, chunk_store


class TestChunkStore:
    def test_put_get_roundtrip(self):
        cs = ChunkStore()
        chunk = ChunkId(0, 1)
        payload = np.arange(16, dtype=np.uint8)
        cs.put(chunk, payload, truth=True)
        assert np.array_equal(cs.get(chunk), payload)
        assert cs.matches_truth(chunk)

    def test_drop_and_missing(self):
        cs = ChunkStore()
        chunk = ChunkId(0, 0)
        cs.put(chunk, np.zeros(4, dtype=np.uint8))
        cs.drop(chunk)
        assert not cs.has(chunk)
        with pytest.raises(SimulationError):
            cs.get(chunk)

    def test_truth_missing_raises(self):
        cs = ChunkStore()
        with pytest.raises(SimulationError):
            cs.truth(ChunkId(0, 0))

    def test_encode_and_load_consistent(self):
        _, store, _, chunk_store = make_env()
        assert len(chunk_store) == len(store) * store.code.n
        # Each stripe's payloads form a valid codeword.
        for stripe_id in list(store.stripes)[:3]:
            chunks = [
                chunk_store.get(ChunkId(stripe_id, i)) for i in range(store.code.n)
            ]
            assert store.code.validate_stripe(chunks)

    def test_invalid_payload_size(self):
        _, store, _, _ = make_env()
        with pytest.raises(SimulationError):
            encode_and_load(store, payload_size=3)

    def test_drop_node_chunks(self):
        _, store, _, chunk_store = make_env()
        lost = drop_node_chunks(chunk_store, store, 0)
        assert lost
        assert all(not chunk_store.has(c) for c in lost)


@pytest.mark.parametrize("algo_cls", [ConventionalRepair, PPR, ECPipe])
def test_baseline_full_node_repair_restores_bytes(algo_cls):
    cluster, store, injector, chunk_store = make_env()
    report = injector.fail_nodes([0])
    lost = drop_node_chunks(chunk_store, store, 0)
    runner = RepairRunner(
        cluster, store, injector, algo_cls(seed=2),
        chunk_size=CHUNK, slice_size=SLICE,
    )
    plane = DataPlane(chunk_store, store)
    plane.attach(runner)
    runner.repair(report.failed_chunks)
    cluster.sim.run()
    assert runner.done
    plane.verify()
    assert plane.all_verified
    assert set(plane.repaired) == set(lost)
    for chunk in lost:
        assert chunk_store.matches_truth(chunk)


@pytest.mark.parametrize(
    "code", [RSCode(4, 2), LRCCode(4, 2, 2), ButterflyCode()], ids=lambda c: c.name
)
def test_chameleon_repair_restores_bytes(code):
    cluster, store, injector, chunk_store = make_env(code=code, num_nodes=10)
    monitor = BandwidthMonitor(cluster, window=1.0)
    monitor.start()
    report = injector.fail_nodes([0])
    drop_node_chunks(chunk_store, store, 0)
    coordinator = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=5.0,
    )
    plane = DataPlane(chunk_store, store)
    plane.attach(coordinator)
    coordinator.repair(report.failed_chunks)
    while not coordinator.done and cluster.sim.now < 5000:
        cluster.sim.run(until=cluster.sim.now + 5.0)
    assert coordinator.done
    plane.verify()
    assert plane.all_verified


def test_chameleon_with_stragglers_restores_bytes():
    """Re-tuned and re-planned repairs must still restore exact bytes."""
    cluster, store, injector, chunk_store = make_env(num_stripes=25, seed=4)
    monitor = BandwidthMonitor(cluster, window=0.5)
    monitor.start()
    report = injector.fail_nodes([0])
    drop_node_chunks(chunk_store, store, 0)
    coordinator = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=CHUNK, slice_size=SLICE, t_phase=4.0,
        check_interval=0.2, straggler_threshold=0.2,
    )
    plane = DataPlane(chunk_store, store)
    plane.attach(coordinator)
    coordinator.repair(report.failed_chunks)
    from repro.sim.flows import Flow

    hog = Flow("hog", mbs(200) * 50, (cluster.node(1).uplink,), tag="hog")
    cluster.sim.schedule(0.2, lambda: cluster.flows.start_flow(hog))
    while not coordinator.done and cluster.sim.now < 5000:
        cluster.sim.run(until=cluster.sim.now + 2.0)
    assert coordinator.done
    plane.verify()


def test_multi_node_failure_restores_bytes():
    cluster, store, injector, chunk_store = make_env(num_stripes=20, seed=6)
    report = injector.fail_nodes([0, 1])
    for node_id in (0, 1):
        drop_node_chunks(chunk_store, store, node_id)
    runner = RepairRunner(
        cluster, store, injector, ConventionalRepair(seed=7),
        chunk_size=CHUNK, slice_size=SLICE,
    )
    plane = DataPlane(chunk_store, store)
    plane.attach(runner)
    runner.repair(report.failed_chunks)
    cluster.sim.run()
    assert runner.done
    plane.verify()


def test_verify_raises_on_corruption():
    cluster, store, injector, chunk_store = make_env()
    plane = DataPlane(chunk_store, store)
    chunk = ChunkId(0, 0)
    plane.mismatches.append(chunk)
    with pytest.raises(PlanError):
        plane.verify()
