"""Verified repair: corrupted helpers are rejected, re-planned, retried."""

import numpy as np
import pytest

from repro.cluster import (
    ChunkId,
    Cluster,
    FailureInjector,
    MB,
    drop_node_chunks,
    encode_and_load,
    mbs,
    place_stripes,
)
from repro.codes import RSCode
from repro.errors import PlanError
from repro.integrity import IntegrityLedger
from repro.repair import ConventionalRepair, DataPlane, RepairRunner, execute_plan

CHUNK = 8 * MB
SLICE = 2 * MB


def make_env(num_nodes=12, num_stripes=10, seed=0):
    cluster = Cluster(num_nodes=num_nodes, num_clients=1, link_bw=mbs(200))
    store = place_stripes(RSCode(4, 2), num_stripes, cluster.storage_ids,
                          chunk_size=CHUNK, seed=seed)
    injector = FailureInjector(cluster, store)
    chunk_store = encode_and_load(store, payload_size=64, seed=seed + 1)
    return cluster, store, injector, chunk_store


class FakeRepairer:
    """Captures add_chunks() calls the way a started runner would."""

    _started = True

    def __init__(self):
        self.added = []

    def add_chunks(self, chunks):
        self.added.extend(chunks)


def failed_chunk_and_plan(store, injector, seed=1):
    report = injector.fail_nodes([0])
    target = report.failed_chunks[0]
    plan = ConventionalRepair(seed=seed).make_plan(target, store.code, injector)
    return target, plan


class TestRejection:
    def test_corrupt_helper_rejects_quarantines_and_requeues(self):
        cluster, store, injector, cs = make_env()
        ledger = IntegrityLedger(cluster.sim)
        target, plan = failed_chunk_and_plan(store, injector)
        drop_node_chunks(cs, store, 0)
        bad = ChunkId(target.stripe, plan.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(2))
        ledger.record_injection(bad, "corruption")
        repairer = FakeRepairer()
        plane = DataPlane(cs, store, injector, ledger=ledger)

        plane.handle_repaired(target, plan, repairer=repairer)

        assert plane.rejected == [(target, "corrupt_helper")]
        assert not plane.repaired
        assert not cs.has(target)  # no garbage write-back
        assert injector.is_quarantined(bad)
        assert injector.is_quarantined(target)
        # Helper first: the retry sees it rebuilt (or routed around).
        assert repairer.added == [bad, target]
        assert ledger.records[bad].detected_by == "repair"

    def test_quarantine_removes_helper_from_next_plan(self):
        cluster, store, injector, cs = make_env()
        target, plan = failed_chunk_and_plan(store, injector)
        drop_node_chunks(cs, store, 0)
        bad = ChunkId(target.stripe, plan.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(3))
        plane = DataPlane(cs, store, injector)
        plane.handle_repaired(target, plan, repairer=FakeRepairer())
        # RS(4,2) with one chunk lost and one quarantined: exactly k
        # survivors remain, so every fresh plan is corrupt-helper-free.
        retry = ConventionalRepair(seed=9).make_plan(target, store.code, injector)
        assert bad.index not in {s.chunk_index for s in retry.sources}
        plane.handle_repaired(target, retry, repairer=FakeRepairer())
        assert target in plane.repaired
        assert cs.matches_truth(target)
        assert not injector.is_quarantined(target)  # released on write-back

    def test_bad_decode_rejected_without_helper_quarantine(self):
        cluster, store, injector, cs = make_env()
        target, plan = failed_chunk_and_plan(store, injector)
        drop_node_chunks(cs, store, 0)
        # Clean helpers, wrong math: tamper with one coefficient so the
        # decode output cannot match the target's recorded checksum.
        source = plan.sources[0]
        plan.sources[0] = type(source)(
            node_id=source.node_id,
            chunk_index=source.chunk_index,
            coefficient=source.coefficient ^ 1,
        )
        repairer = FakeRepairer()
        plane = DataPlane(cs, store, injector)
        plane.handle_repaired(target, plan, repairer=repairer)
        assert plane.rejected == [(target, "bad_decode")]
        assert not cs.has(target)
        helpers = [ChunkId(target.stripe, s.chunk_index) for s in plan.sources]
        assert not any(injector.is_quarantined(h) for h in helpers)
        assert repairer.added == [target]  # only the target is retried

    def test_retries_exhaust_into_unrepairable(self):
        cluster, store, injector, cs = make_env()
        target, plan = failed_chunk_and_plan(store, injector)
        drop_node_chunks(cs, store, 0)
        bad = ChunkId(target.stripe, plan.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(4))
        repairer = FakeRepairer()
        plane = DataPlane(cs, store, injector, max_integrity_retries=1)
        plane.handle_repaired(target, plan, repairer=repairer)
        assert repairer.added == [bad, target]
        assert not plane.unrepairable
        plane.handle_repaired(target, plan, repairer=repairer)
        assert plane.unrepairable == [target]
        assert repairer.added == [bad, target]  # no further requeue

    def test_deep_verify_catches_undetected_corruption(self):
        cluster, store, injector, cs = make_env()
        plane = DataPlane(cs, store, injector)
        plane.verify(deep=True)  # pristine store: clean
        victim = next(iter(cs.chunks()))
        cs.corrupt(victim, rng=np.random.default_rng(5))
        plane.verify()  # shallow: only audits repaired chunks
        with pytest.raises(PlanError, match="checksum"):
            plane.verify(deep=True)


class TestEndToEndRequeue:
    def test_runner_routes_around_corrupt_helper(self):
        """A corrupted helper in the live repair path: the write-back is
        rejected, both chunks re-enter the batch, and the retry restores
        exact bytes for helper and target alike."""
        cluster, store, injector, cs = make_env(seed=2)
        report = injector.fail_nodes([0])
        target = report.failed_chunks[0]
        # Predict the runner's first plan with a same-seeded probe rng,
        # then corrupt one of the helpers that plan will actually use.
        probe = ConventionalRepair(seed=6).make_plan(target, store.code, injector)
        drop_node_chunks(cs, store, 0)
        bad = ChunkId(target.stripe, probe.sources[0].chunk_index)
        cs.corrupt(bad, rng=np.random.default_rng(7))

        runner = RepairRunner(
            cluster, store, injector, ConventionalRepair(seed=6),
            chunk_size=CHUNK, slice_size=SLICE,
        )
        ledger = IntegrityLedger(cluster.sim)
        ledger.record_injection(bad, "corruption")
        plane = DataPlane(cs, store, injector, ledger=ledger)
        plane.attach(runner)
        runner.repair([target])
        cluster.sim.run()

        assert runner.done
        assert [(target, "corrupt_helper")] == plane.rejected
        assert set(plane.repaired) >= {target, bad}
        assert cs.matches_truth(target) and cs.matches_truth(bad)
        assert not injector.quarantined
        record = ledger.records[bad]
        assert record.detected_by == "repair" and record.restored_at is not None
        plane.verify(deep=True)


class TestExecutorLengths:
    def test_mixed_helper_lengths_raise(self):
        # Regression: execute_plan used to size the output off the first
        # helper and silently mis-decode mixed-length payloads.
        cluster, store, injector, cs = make_env()
        target, plan = failed_chunk_and_plan(store, injector)
        helpers = {
            s.chunk_index: cs.get(ChunkId(target.stripe, s.chunk_index))
            for s in plan.sources
        }
        short = plan.sources[0].chunk_index
        helpers[short] = helpers[short][:-8]
        with pytest.raises(PlanError, match="mixed payload lengths"):
            execute_plan(plan, helpers)
