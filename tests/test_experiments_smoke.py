"""Tiny-scale smoke tests for the experiment modules (shape sanity).

Each experiment's benchmark runs the full grid; these smoke tests run a
minimal slice at scale 0.03 so `pytest tests/` alone still exercises
every harness code path.
"""

import pytest


class TestExperimentSlices:
    def test_exp02_single_cell(self):
        from repro.experiments.exp02_trace_slowdown import run_exp02

        results = run_exp02(
            scale=0.03, traces=("YCSB-A",), algorithms=("ChameleonEC",)
        )
        degree = results[("YCSB-A", "ChameleonEC")]
        assert degree > -0.5  # a repair cannot speed the trace up much

    def test_exp07_single_bandwidth(self):
        from repro.experiments.exp07_no_foreground import run_exp07

        results = run_exp07(
            scale=0.03, algorithms=("CR", "ChameleonEC"), bandwidths=(10.0,)
        )
        assert results[(10.0, "CR")].throughput > 0
        assert results[(10.0, "ChameleonEC")].throughput > 0

    def test_exp09_butterfly_slice(self):
        from repro.experiments.exp09_generality import run_exp09

        results = run_exp09(scale=0.03, codes=("Butterfly(4,2)",))
        assert ("Butterfly(4,2)", "CR") in results
        assert ("Butterfly(4,2)", "ChameleonEC") in results
        # PPR/ECPipe are skipped for Butterfly (no elastic plans).
        assert ("Butterfly(4,2)", "PPR") not in results

    def test_exp11_single_offset(self):
        from repro.experiments.exp11_breakdown import run_exp11

        results = run_exp11(
            scale=0.03, algorithms=("ETRP",), offsets=(5.0,)
        )
        assert results[(5.0, "ETRP")] > 0

    def test_fig5_smoke(self):
        from repro.experiments.figures import run_fig5

        stats = run_fig5(scale=0.03)
        assert set(stats) == {"uplink", "downlink"}
        assert all(len(v) == 3 for v in stats.values())

    def test_exp05_tiny_grid(self):
        from repro.experiments.exp05_computation import run_exp05

        results = run_exp05(node_counts=(30,), chunk_counts=(20,))
        assert results[(30, 20)] > 0
