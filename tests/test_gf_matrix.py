"""Unit tests for GF(2^8) matrix algebra and code-matrix builders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodingError
from repro.gf import (
    cauchy,
    identity,
    inverse,
    is_mds,
    matmul,
    matvec_data,
    rank,
    rs_generator_cauchy,
    rs_generator_vandermonde,
    solve,
)


def random_invertible(rng, n):
    while True:
        m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
        try:
            inverse(m)
            return m
        except CodingError:
            continue


class TestMatmul:
    def test_identity_neutral(self):
        rng = np.random.default_rng(7)
        m = rng.integers(0, 256, size=(4, 4), dtype=np.uint8)
        assert np.array_equal(matmul(identity(4), m), m)
        assert np.array_equal(matmul(m, identity(4)), m)

    def test_shape_mismatch_raises(self):
        with pytest.raises(CodingError):
            matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 2), dtype=np.uint8))

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_associative(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, size=(3, 4), dtype=np.uint8)
        b = rng.integers(0, 256, size=(4, 2), dtype=np.uint8)
        c = rng.integers(0, 256, size=(2, 5), dtype=np.uint8)
        assert np.array_equal(matmul(matmul(a, b), c), matmul(a, matmul(b, c)))


class TestInverse:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_inverse_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        m = random_invertible(rng, 5)
        assert np.array_equal(matmul(m, inverse(m)), identity(5))

    def test_singular_raises(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(CodingError):
            inverse(m)

    def test_non_square_raises(self):
        with pytest.raises(CodingError):
            inverse(np.zeros((2, 3), dtype=np.uint8))


class TestSolve:
    def test_solve_vector(self):
        rng = np.random.default_rng(11)
        a = random_invertible(rng, 4)
        x = rng.integers(0, 256, size=4, dtype=np.uint8)
        b = matmul(a, x[:, None])[:, 0]
        assert np.array_equal(solve(a, b), x)

    def test_solve_matrix_rhs(self):
        rng = np.random.default_rng(13)
        a = random_invertible(rng, 3)
        x = rng.integers(0, 256, size=(3, 2), dtype=np.uint8)
        b = matmul(a, x)
        assert np.array_equal(solve(a, b), x)


class TestRank:
    def test_full_rank_identity(self):
        assert rank(identity(6)) == 6

    def test_dependent_rows(self):
        m = np.array([[1, 2, 3], [2, 4, 6], [0, 0, 1]], dtype=np.uint8)
        # Row 2 = 2 * row 1 over GF(2^8).
        from repro.gf import gf_mul

        assert all(gf_mul(int(m[0, j]), 2) == m[1, j] for j in range(3))
        assert rank(m) == 2

    def test_wide_matrix(self):
        m = np.hstack([identity(3), np.ones((3, 2), dtype=np.uint8)])
        assert rank(m) == 3


class TestCodeMatrices:
    def test_cauchy_entries_nonzero(self):
        c = cauchy(6, 3)
        assert c.shape == (3, 6)
        assert np.all(c != 0)

    def test_cauchy_field_limit(self):
        with pytest.raises(CodingError):
            cauchy(200, 60)

    @pytest.mark.parametrize("k,m", [(2, 2), (4, 2), (4, 3), (6, 3)])
    def test_cauchy_generator_is_mds(self, k, m):
        assert is_mds(rs_generator_cauchy(k, m), k)

    @pytest.mark.parametrize("k,m", [(2, 2), (4, 2), (4, 3)])
    def test_vandermonde_generator_is_mds(self, k, m):
        assert is_mds(rs_generator_vandermonde(k, m), k)

    def test_generators_systematic(self):
        for gen in (rs_generator_cauchy(5, 3), rs_generator_vandermonde(5, 3)):
            assert np.array_equal(gen[:5], identity(5))


class TestMatvecData:
    def test_applies_coefficients(self):
        rows = [np.array([1, 0], dtype=np.uint8), np.array([0, 1], dtype=np.uint8)]
        matrix = np.array([[3, 5]], dtype=np.uint8)
        out = matvec_data(matrix, rows)
        assert np.array_equal(out[0], np.array([3, 5], dtype=np.uint8))

    def test_column_mismatch_raises(self):
        with pytest.raises(CodingError):
            matvec_data(np.zeros((1, 3), dtype=np.uint8), [np.zeros(2, dtype=np.uint8)])
