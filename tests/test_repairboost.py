"""Unit tests for the RepairBoost traffic balancer."""

import pytest
from collections import Counter

from repro.cluster import Cluster, FailureInjector, MB, place_stripes
from repro.codes import LRCCode, RSCode
from repro.repair import ConventionalRepair, ECPipe, PPR, RepairBoost


def make_env(code=None, num_nodes=14, num_stripes=30, seed=0):
    code = code if code is not None else RSCode(4, 2)
    cluster = Cluster(num_nodes=num_nodes, num_clients=0)
    store = place_stripes(code, num_stripes, cluster.storage_ids, chunk_size=4 * MB, seed=seed)
    injector = FailureInjector(cluster, store)
    return cluster, store, injector


class TestSelection:
    def test_sources_balanced_across_chunks(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        rb = RepairBoost(ConventionalRepair(), seed=1)
        uploads = Counter()
        for chunk in report.failed_chunks:
            plan = rb.make_plan(chunk, store.code, injector)
            store.relocate(chunk, plan.destination)
            for uploader, _ in plan.edges():
                uploads[uploader] += 1
        # Balanced up to placement skew: stripe membership constrains the
        # candidate pool per chunk, so perfect balance is impossible, but
        # no node should hoard uploads.
        total = sum(uploads.values())
        assert max(uploads.values()) <= 2.5 * total / len(uploads)

    def test_inner_structure_preserved(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        for inner_cls, checker in (
            (ConventionalRepair, lambda p: p.relays() == []),
            (ECPipe, lambda p: len(p.relays()) == len(p.sources) - 1),
        ):
            rb = RepairBoost(inner_cls(), seed=2)
            plan = rb.make_plan(chunk, store.code, injector)
            assert checker(plan)

    def test_ppr_structure_depth(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]
        rb = RepairBoost(PPR(), seed=3)
        plan = rb.make_plan(chunk, store.code, injector)
        import math

        assert plan.transmission_rounds() <= math.ceil(math.log2(len(plan.sources))) + 1

    def test_lrc_local_repair_respected(self):
        code = LRCCode(4, 2, 2)
        cluster, store, injector = make_env(code=code)
        report = injector.fail_nodes([0])
        data_chunks = [c for c in report.failed_chunks if c.index < code.k]
        if not data_chunks:
            pytest.skip("no data chunk on node 0")
        rb = RepairBoost(ConventionalRepair(), seed=4)
        plan = rb.make_plan(data_chunks[0], code, injector)
        assert len(plan.sources) == code.group_size

    def test_load_counters_grow(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        rb = RepairBoost(ConventionalRepair(), seed=5)
        for chunk in report.failed_chunks[:4]:
            plan = rb.make_plan(chunk, store.code, injector)
            store.relocate(chunk, plan.destination)
        assert sum(rb.upload_load.values()) == 4 * store.code.k
        assert sum(rb.download_load.values()) == 4 * store.code.k

    def test_no_survivors_raises(self):
        cluster, store, injector = make_env()
        report = injector.fail_nodes([0])
        chunk = report.failed_chunks[0]

        class Empty:
            def surviving_sources(self, _):
                return {}

        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            RepairBoost(ConventionalRepair()).make_plan(chunk, store.code, Empty())
