"""Journal replay determinism battery.

Same seed + same crash time must reproduce the run exactly: identical
post-recovery repair order, identical journal record sequences, and
byte-identical reconstructions (equal to the crash-free run's bytes).
Swept over >= 10 seeds x 3 crash times, per the subsystem's acceptance
criteria.
"""

import pytest

from repro.api import Testbed
from repro.metrics.linkstats import REPAIR_TAG

SEEDS = tuple(range(10))
CRASH_TIMES = (0.03, 0.08, 0.15)


def make_testbed(seed):
    return (
        Testbed.builder()
        .scaled(0.05)
        .with_options(
            num_nodes=12, num_clients=2, code="RS(4,2)",
            chunk_mb=16.0, num_chunks=10,
        )
        .with_seed(seed)
        .with_integrity()
        .with_journal()
        .build()
    )


def run_crash_recover(seed, crash_at):
    """One crashed-and-recovered run; returns its observable outcome."""
    testbed = make_testbed(seed)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)
    testbed.inject_coordinator_crash(crash_at)
    testbed.run_until(lambda: repairer.crashed, step=0.01, limit=1000.0)
    replacement = testbed.recover_repairer()
    testbed.run_until(lambda: replacement.done, limit=5000.0)
    payloads = {
        chunk: testbed.chunk_store.get(chunk).tobytes()
        for chunk in report.failed_chunks
    }
    return {
        "failed": list(report.failed_chunks),
        "pre_crash_order": list(repairer.completed),
        "post_recovery_order": list(replacement.completed),
        "requeue": list(replacement.recovery.requeue),
        "records": [
            (r.kind, r.chunk, r.at) for r in testbed.journal.records
        ],
        "payloads": payloads,
        "lost": list(replacement.lost) + list(repairer.lost),
        "leaked": testbed.cluster.transfers.live_transfers(tag=REPAIR_TAG),
        "finish": replacement.meter.finished_at,
    }


def run_crash_free(seed):
    """The reference run: same seed, no crash."""
    testbed = make_testbed(seed)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("ChameleonEC")
    repairer.repair(report.failed_chunks)
    testbed.run_until(lambda: repairer.done, limit=5000.0)
    return {
        chunk: testbed.chunk_store.get(chunk).tobytes()
        for chunk in report.failed_chunks
    }


@pytest.mark.parametrize("crash_at", CRASH_TIMES)
def test_replay_is_deterministic_across_reruns(crash_at):
    """Equal seed + equal crash time => identical runs, for every seed."""
    for seed in SEEDS:
        first = run_crash_recover(seed, crash_at)
        second = run_crash_recover(seed, crash_at)
        assert first["pre_crash_order"] == second["pre_crash_order"], seed
        assert first["post_recovery_order"] == second["post_recovery_order"], seed
        assert first["requeue"] == second["requeue"], seed
        assert first["records"] == second["records"], seed
        assert first["finish"] == second["finish"], seed
        for chunk, payload in first["payloads"].items():
            assert second["payloads"][chunk] == payload, (seed, chunk)


@pytest.mark.parametrize("crash_at", CRASH_TIMES)
def test_recovered_bytes_match_the_crash_free_run(crash_at):
    """Failover changes timing, never bytes: reconstructions are identical
    to what the crash-free run produces, with zero lost or double-repaired
    chunks and no leaked repair flows."""
    for seed in SEEDS:
        outcome = run_crash_recover(seed, crash_at)
        reference = run_crash_free(seed)
        assert not outcome["lost"], seed
        assert not outcome["leaked"], seed
        repaired = set(outcome["pre_crash_order"]) | set(
            outcome["post_recovery_order"]
        )
        assert repaired == set(outcome["failed"]), seed
        assert not set(outcome["pre_crash_order"]) & set(
            outcome["post_recovery_order"]
        ), seed
        assert outcome["payloads"] == reference, seed
