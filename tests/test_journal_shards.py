"""Unit tests for the sharded journal surface: per-shard epochs and
fences, shard-bound leases, the JournalShard write-through proxy,
shard-scoped reconcile plans, and serialisation — including the
byte-compatibility guarantee that unsharded journals keep the
pre-sharding JSON format, plus a hypothesis round-trip property over
multi-shard churn with checkpoint compaction."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.stripes import ChunkId
from repro.errors import SimulationError
from repro.journal import (
    Journal,
    JournalShard,
    Lease,
    reconcile,
)
from repro.sim import Simulator

C1 = ChunkId(0, 1)
C2 = ChunkId(1, 2)
C3 = ChunkId(2, 0)


def make_journal(**kwargs) -> Journal:
    return Journal(Simulator(), **kwargs)


class TestPerShardEpochs:
    def test_epochs_advance_independently(self):
        journal = make_journal()
        journal.coordinator_started(shard=0)
        journal.coordinator_started(shard=2)
        journal.coordinator_started(shard=2)
        assert journal.epoch_of(0) == 1
        assert journal.epoch_of(1) == 0
        assert journal.epoch_of(2) == 2
        assert journal.epoch == 1  # the shard-0 compat property

    def test_fence_is_scoped_to_one_shard(self):
        journal = make_journal(lease_duration=1000.0)
        journal.coordinator_started(shard=0)
        journal.coordinator_started(shard=1)
        journal.chunk_enqueued(C1, shard=0)
        journal.chunk_enqueued(C2, shard=1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1, shard=0)
        journal.plan_chosen(C2, destination=4, sources=[5], attempt=1, shard=1)
        journal.fence(shard=0)
        state = journal.state
        assert state.fenced_of(0) and not state.fenced_of(1)
        # Only the fenced shard's lease is void.
        assert state.reexecutable(C1, now=0.0)
        assert not state.reexecutable(C2, now=0.0)

    def test_fence_idempotent_per_shard(self):
        journal = make_journal()
        journal.coordinator_started(shard=3)
        journal.fence(shard=3)
        n = len(journal.records)
        journal.fence(shard=3)
        assert len(journal.records) == n
        journal.fence(shard=0)  # a different shard still appends
        assert len(journal.records) == n + 1

    def test_restart_unfences_only_its_shard(self):
        journal = make_journal()
        journal.coordinator_started(shard=0)
        journal.coordinator_started(shard=1)
        journal.fence(shard=0)
        journal.fence(shard=1)
        journal.coordinator_started(shard=1)
        assert journal.state.fenced_of(0)
        assert not journal.state.fenced_of(1)
        assert journal.state.epoch_of(1) == 2

    def test_lease_carries_its_granting_shard_and_epoch(self):
        journal = make_journal(lease_duration=30.0)
        journal.coordinator_started(shard=1)
        journal.coordinator_started(shard=1)
        journal.chunk_enqueued(C1, shard=1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1, shard=1)
        lease = journal.state.leases[C1]
        assert lease.shard == 1 and lease.epoch == 2

    def test_shard_of_tracks_the_last_writer(self):
        journal = make_journal()
        journal.chunk_enqueued(C1, shard=2)
        assert journal.state.shard_of[C1] == 2
        journal.chunk_enqueued(C1, shard=0)  # rerouted batch
        assert journal.state.shard_of[C1] == 0

    def test_open_work_filters_by_shard(self):
        journal = make_journal()
        journal.chunk_enqueued(C1, shard=0)
        journal.chunk_enqueued(C2, shard=1)
        journal.chunk_enqueued(C3, shard=1)
        assert journal.state.open_work() == [C1, C2, C3]
        assert journal.state.open_work(shard=1) == [C2, C3]
        assert journal.state.open_work(shard=0) == [C1]

    def test_shards_lists_every_touched_partition(self):
        journal = make_journal()
        journal.coordinator_started(shard=2)
        journal.chunk_enqueued(C1, shard=5)
        assert journal.state.shards() == [0, 2, 5]


class TestLeaseBoundary:
    """The half-open hold: at exactly ``now == expires_at`` the lease
    has lapsed (see the Lease docstring)."""

    def test_expired_at_the_exact_expiry_instant(self):
        lease = Lease(chunk=C1, epoch=1, acquired_at=0.0, expires_at=10.0)
        assert not lease.expired(9.999999)
        assert lease.expired(10.0)
        assert lease.expired(10.000001)

    def test_reexecutable_at_the_exact_expiry_instant(self):
        journal = make_journal(lease_duration=10.0)
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        assert not journal.state.reexecutable(C1, now=9.999999)
        assert journal.state.reexecutable(C1, now=10.0)


class TestJournalShardProxy:
    def test_negative_shard_rejected(self):
        with pytest.raises(SimulationError):
            make_journal().shard_view(-1)

    def test_view_prebinds_the_shard_on_every_write(self):
        journal = make_journal()
        view = journal.shard_view(3)
        assert isinstance(view, JournalShard)
        view.coordinator_started()
        view.chunk_enqueued(C1)
        view.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        view.reads_issued(C1, transfers=4)
        view.attempt_failed(C1, "timeout")
        view.chunk_enqueued(C2)
        view.decode_verified(C2)
        view.writeback_committed(C2)
        view.chunk_lost(C1)
        view.fence()
        assert all(r.shard == 3 for r in journal.records)
        assert journal.state.shard_of == {C1: 3, C2: 3}

    def test_view_reads_its_shards_epoch(self):
        journal = make_journal(lease_duration=7.0)
        view = journal.shard_view(2)
        journal.coordinator_started(shard=0)
        assert view.epoch == 0
        view.coordinator_started()
        assert view.epoch == 1 and journal.epoch_of(2) == 1
        assert view.lease_duration == 7.0
        assert view.state is journal.state

    def test_shard_zero_view_matches_the_plain_journal_bytes(self):
        """`shard_view(0)` is the unsharded journal: identical records,
        identical serialised bytes."""

        def drive(target, journal):
            target.coordinator_started()
            target.chunk_enqueued(C1)
            target.plan_chosen(C1, destination=2, sources=[3], attempt=1)
            target.writeback_committed(C1)
            journal.checkpoint()
            target.chunk_enqueued(C2)
            return journal.to_json()

        plain = make_journal()
        sharded = make_journal()
        assert drive(plain, plain) == drive(sharded.shard_view(0), sharded)


class TestShardReconcile:
    def _journal(self):
        journal = make_journal(lease_duration=1000.0)
        journal.coordinator_started(shard=0)
        journal.coordinator_started(shard=1)
        # Shard 0: one committed, one pending. Shard 1: one leased.
        journal.chunk_enqueued(C1, shard=0)
        journal.writeback_committed(C1, shard=0)
        journal.chunk_enqueued(C2, shard=0)
        journal.chunk_enqueued(C3, shard=1)
        journal.plan_chosen(C3, destination=2, sources=[3], attempt=1, shard=1)
        return journal

    def test_shard_scoped_plan_sees_only_its_chunks(self):
        state = self._journal().replay()
        plan = reconcile(state, now=0.0, shard=0)
        assert plan.shard == 0 and plan.epoch == 1
        assert plan.completed == [C1] and plan.requeue == [C2]
        assert not plan.blocked  # C3 belongs to shard 1

    def test_sibling_shard_lease_stays_blocked_in_its_own_plan(self):
        journal = self._journal()
        journal.fence(shard=0)  # fencing shard 0 must not free C3
        plan = reconcile(journal.replay(), now=0.0, shard=1)
        assert plan.blocked == [C3] and not plan.requeue
        journal.fence(shard=1)
        plan = reconcile(journal.replay(), now=0.0, shard=1)
        assert plan.requeue == [C3] and not plan.blocked

    def test_unscoped_plan_spans_every_shard(self):
        plan = reconcile(self._journal().replay(), now=0.0)
        assert plan.shard is None
        assert plan.completed == [C1]
        assert plan.requeue == [C2] and plan.blocked == [C3]


class TestShardSerialisation:
    def test_unsharded_json_has_no_shard_keys(self):
        """Byte-compat: a single-coordinator journal serialises exactly
        as it did before sharding existed."""
        journal = make_journal()
        journal.coordinator_started()
        journal.chunk_enqueued(C1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1)
        journal.checkpoint()
        doc = json.loads(journal.to_json())
        assert "shard_epochs" not in doc
        assert all("shard" not in record for record in doc["records"])
        snap = doc["records"][-1]["payload"]["state"]
        assert "shards" not in snap and "shard_of" not in snap
        assert all("shard" not in lease for lease in snap["leases"])

    def test_sharded_round_trip_restores_epochs_and_shard_map(self):
        journal = make_journal()
        journal.coordinator_started(shard=0)
        journal.coordinator_started(shard=1)
        journal.coordinator_started(shard=1)
        journal.chunk_enqueued(C1, shard=0)
        journal.chunk_enqueued(C2, shard=1)
        journal.plan_chosen(C2, destination=4, sources=[5], attempt=1, shard=1)
        journal.fence(shard=1)
        clone = Journal.from_json(journal.to_json())
        assert clone.epochs == journal.epochs == {0: 1, 1: 2}
        assert clone.state.snapshot() == journal.state.snapshot()
        assert clone.state.shard_of == {C1: 0, C2: 1}
        assert clone.state.fenced_of(1) and not clone.state.fenced_of(0)

    def test_checkpoint_round_trip_preserves_shard_state(self):
        journal = make_journal()
        journal.coordinator_started(shard=1)
        journal.chunk_enqueued(C1, shard=1)
        journal.plan_chosen(C1, destination=2, sources=[3], attempt=1, shard=1)
        journal.checkpoint()
        clone = Journal.from_json(journal.to_json())
        state = clone.replay()
        assert state.epoch_of(1) == 1
        assert state.leases[C1].shard == 1
        assert state.shard_of == {C1: 1}


# -- hypothesis: serialisation survives arbitrary multi-shard churn ------------

CHUNKS = [ChunkId(i, i % 3) for i in range(6)]

_op = st.one_of(
    st.tuples(st.just("start"), st.integers(0, 2)),
    st.tuples(st.just("fence"), st.integers(0, 2)),
    st.tuples(st.just("enqueue"), st.integers(0, 5), st.integers(0, 2)),
    st.tuples(st.just("plan"), st.integers(0, 5), st.integers(0, 2)),
    st.tuples(st.just("commit"), st.integers(0, 5), st.integers(0, 2)),
    st.tuples(st.just("fail"), st.integers(0, 5), st.integers(0, 2)),
    st.tuples(st.just("lost"), st.integers(0, 5), st.integers(0, 2)),
    st.tuples(st.just("tick"), st.integers(1, 50)),
    st.tuples(st.just("checkpoint")),
)


def _drive(journal: Journal, ops) -> None:
    for op in ops:
        kind = op[0]
        if kind == "start":
            journal.coordinator_started(shard=op[1])
        elif kind == "fence":
            journal.fence(shard=op[1])
        elif kind == "enqueue":
            journal.chunk_enqueued(CHUNKS[op[1]], shard=op[2])
        elif kind == "plan":
            journal.plan_chosen(
                CHUNKS[op[1]],
                destination=1,
                sources=[2, 3],
                attempt=1,
                shard=op[2],
            )
        elif kind == "commit":
            journal.writeback_committed(CHUNKS[op[1]], shard=op[2])
        elif kind == "fail":
            journal.attempt_failed(CHUNKS[op[1]], "churn", shard=op[2])
        elif kind == "lost":
            journal.chunk_lost(CHUNKS[op[1]], shard=op[2])
        elif kind == "tick":
            journal.sim.run(until=journal.sim.now + op[1] / 10.0)
        elif kind == "checkpoint":
            journal.checkpoint()


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, max_size=40))
def test_round_trip_identity_under_multi_shard_churn(ops):
    """to_json -> from_json is the identity on the folded state, after
    any interleaving of multi-shard epochs, fences, lease churn and
    compacting checkpoints — and replay of the clone agrees too."""
    journal = make_journal(lease_duration=5.0)
    _drive(journal, ops)
    text = journal.to_json()
    clone = Journal.from_json(text)
    assert clone.state.snapshot() == journal.state.snapshot()
    assert clone.replay().snapshot() == journal.replay().snapshot()
    # Effective epochs agree on every shard (the dicts may differ in
    # explicit-zero entries, which epoch_of treats identically).
    assert all(clone.epoch_of(s) == journal.epoch_of(s) for s in range(3))
    assert clone.state.shard_of == journal.state.shard_of
    assert clone.compacted_records == journal.compacted_records
    # Serialising the clone reproduces the exact bytes (fixed point).
    assert clone.to_json() == text


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(_op, max_size=30))
def test_checkpoint_is_transparent_to_the_folded_state(ops):
    """Compacting mid-churn never changes what replay reconstructs."""
    journal = make_journal(lease_duration=5.0)
    _drive(journal, ops)
    before = journal.state.snapshot()
    journal.checkpoint()
    assert journal.state.snapshot() == before
    assert journal.replay().snapshot() == before
    assert Journal.from_json(journal.to_json()).replay().snapshot() == before
