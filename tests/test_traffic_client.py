"""Tests for the key router and closed-loop trace clients."""

import pytest

from repro.cluster import Cluster, MB, mbs, place_stripes
from repro.codes import RSCode
from repro.errors import SimulationError
from repro.traffic import KeyRouter, TraceClient, launch_clients, uniform_trace


def make_env(num_clients=2):
    cluster = Cluster(num_nodes=8, num_clients=num_clients, link_bw=mbs(200))
    code = RSCode(4, 2)
    store = place_stripes(code, 20, cluster.storage_ids, chunk_size=4 * MB, seed=1)
    return cluster, store, KeyRouter(store, cluster)


class TestKeyRouter:
    def test_deterministic(self):
        cluster, store, router = make_env()
        assert router.node_for(12345) == router.node_for(12345)

    def test_routes_to_data_chunk_owner(self):
        cluster, store, router = make_env()
        stripe_id, chunk_index = router.locate(7)
        assert chunk_index < store.code.k
        assert router.node_for(7) == store.stripes[stripe_id].node_of(chunk_index)

    def test_failed_owner_falls_back_to_survivor(self):
        cluster, store, router = make_env()
        key = 7
        owner = router.node_for(key)
        cluster.fail_node(owner)
        fallback = router.node_for(key)
        assert fallback != owner
        assert cluster.node(fallback).alive

    def test_empty_store_rejected(self):
        from repro.cluster import StripeStore

        cluster = Cluster(num_nodes=4, num_clients=0)
        with pytest.raises(SimulationError):
            KeyRouter(StripeStore(code=RSCode(2, 1), chunk_size=MB), cluster)


class TestTraceClient:
    def make_client(self, cluster, router, **kw):
        kw.setdefault("num_requests", 10)
        kw.setdefault("slice_size", MB)
        kw.setdefault("think_time", 0.0)
        kw.setdefault("concurrency", 1)
        return TraceClient(
            cluster, cluster.clients[0], uniform_trace(seed=3), router, **kw
        )

    def test_completes_fixed_request_count(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router, num_requests=10)
        client.start()
        cluster.sim.run()
        assert client.done
        assert client.issued == 10
        assert client.latency.count == 10
        assert client.execution_time > 0

    def test_latencies_positive(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router)
        client.start()
        cluster.sim.run()
        assert all(lat > 0 for lat in client.latency.samples)

    def test_unbounded_client_stops_on_request(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router, num_requests=None)
        client.start()
        cluster.sim.schedule(2.0, client.stop)
        cluster.sim.run()
        assert client.done
        assert client.issued > 10

    def test_concurrency_outstanding_requests(self):
        cluster, store, router = make_env()
        fast = self.make_client(cluster, router, num_requests=40, concurrency=4)
        fast.start()
        cluster.sim.run()
        slow_cluster, _, slow_router = make_env()
        slow = TraceClient(
            slow_cluster, slow_cluster.clients[0], uniform_trace(seed=3),
            slow_router, num_requests=40, think_time=0.0, concurrency=1,
        )
        slow.start()
        slow_cluster.sim.run()
        assert fast.execution_time < slow.execution_time

    def test_think_time_slows_issue_rate(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router, num_requests=5, think_time=1.0)
        client.start()
        cluster.sim.run()
        assert client.execution_time >= 4.0  # 4 think gaps at least

    def test_double_start_rejected(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router)
        client.start()
        with pytest.raises(SimulationError):
            client.start()

    def test_negative_requests_rejected(self):
        cluster, store, router = make_env()
        with pytest.raises(SimulationError):
            self.make_client(cluster, router, num_requests=-1)

    def test_invalid_concurrency_rejected(self):
        cluster, store, router = make_env()
        with pytest.raises(SimulationError):
            self.make_client(cluster, router, concurrency=0)

    def test_bursting_client_pauses_and_resumes(self):
        cluster, store, router = make_env()
        client = self.make_client(
            cluster, router, num_requests=None, burst_on=0.5, burst_off=0.5
        )
        client.start()
        cluster.sim.schedule(10.0, client.stop)
        cluster.sim.run()
        assert client.done
        # Compare request volume: a bursting client issues fewer requests
        # than one running flat-out over the same span.
        cluster2, _, router2 = make_env()
        flat = TraceClient(
            cluster2, cluster2.clients[0], uniform_trace(seed=3), router2,
            num_requests=None, think_time=0.0, concurrency=1,
        )
        flat.start()
        cluster2.sim.schedule(10.0, flat.stop)
        cluster2.sim.run()
        assert client.issued < flat.issued

    def test_bytes_moved_accounting(self):
        cluster, store, router = make_env()
        client = self.make_client(cluster, router, num_requests=6)
        client.start()
        cluster.sim.run()
        assert client.bytes_moved == pytest.approx(6 * 512_000, rel=0.01)


class TestLaunchClients:
    def test_one_client_per_node(self):
        cluster, store, router = make_env(num_clients=3)
        clients, latency = launch_clients(
            cluster, lambda i: uniform_trace(seed=i), router, requests_per_client=5
        )
        cluster.sim.run()
        assert len(clients) == 3
        assert all(c.done for c in clients)
        assert latency.count == 15
