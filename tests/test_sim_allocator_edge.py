"""Edge-case tests for the max-min allocator and flow scheduler."""

import pytest

from repro.sim import Flow, FlowScheduler, Resource, Simulator, allocate_rates


class TestAllocatorEdgeCases:
    def test_many_flows_one_resource(self):
        r = Resource("r", 100.0)
        flows = [Flow(f"f{i}", 10, (r,)) for i in range(100)]
        allocate_rates(flows)
        assert all(f.rate == pytest.approx(1.0) for f in flows)
        assert sum(f.rate for f in flows) == pytest.approx(100.0)

    def test_shared_and_dedicated_mix(self):
        shared = Resource("s", 90.0)
        dedicated = Resource("d", 10.0)
        slow = Flow("slow", 10, (shared, dedicated))
        fast_flows = [Flow(f"fast{i}", 10, (shared,)) for i in range(2)]
        allocate_rates([slow] + fast_flows)
        assert slow.rate == pytest.approx(10.0)
        # Leftover 80 split between the two unconstrained flows.
        assert all(f.rate == pytest.approx(40.0) for f in fast_flows)

    def test_disjoint_resources_independent(self):
        a, b = Resource("a", 30.0), Resource("b", 70.0)
        fa, fb = Flow("fa", 10, (a,)), Flow("fb", 10, (b,))
        allocate_rates([fa, fb])
        assert fa.rate == pytest.approx(30.0)
        assert fb.rate == pytest.approx(70.0)

    def test_tiny_capacity(self):
        r = Resource("r", 1e-6)
        f = Flow("f", 1.0, (r,))
        allocate_rates([f])
        assert f.rate == pytest.approx(1e-6)

    def test_idempotent_reallocation(self):
        r = Resource("r", 50.0)
        flows = [Flow(f"f{i}", 10, (r,)) for i in range(3)]
        allocate_rates(flows)
        first = [f.rate for f in flows]
        allocate_rates(flows)
        assert [f.rate for f in flows] == first

    def test_duplicate_resource_counts_once(self):
        # Regression: a flow listing the same resource twice used to
        # subtract its rate twice from that resource's remaining
        # capacity while the user set deduped it, skewing the shares.
        r = Resource("r", 100.0)
        dup = Flow("dup", 10, (r, r))
        other = Flow("other", 10, (r,))
        allocate_rates([dup, other])
        assert dup.rate == pytest.approx(50.0)
        assert other.rate == pytest.approx(50.0)
        assert dup.rate + other.rate == pytest.approx(r.capacity)

    def test_duplicate_resource_alone_gets_full_capacity(self):
        r = Resource("r", 80.0)
        f = Flow("f", 10, (r, r, r))
        allocate_rates([f])
        assert f.rate == pytest.approx(80.0)

    def test_float_drift_never_yields_negative_rate(self):
        # Many flows over shared resources with awkward capacities force
        # repeated subtraction; no resulting rate may go negative (the
        # remaining-capacity clamp).
        shared = Resource("s", 0.1 + 0.2)  # 0.30000000000000004
        resources = [shared] + [Resource(f"r{i}", 1e-9 * (i + 1)) for i in range(5)]
        flows = [
            Flow(f"f{i}", 1, (shared, resources[1 + i % 5])) for i in range(20)
        ]
        allocate_rates(flows)
        for f in flows:
            assert f.rate >= 0.0
        assert sum(f.rate for f in flows) <= shared.capacity * (1 + 1e-9)


class TestSchedulerEdgeCases:
    def test_simultaneous_completions(self):
        sim = Simulator()
        sched = FlowScheduler(sim)
        r = Resource("r", 100.0)
        flows = [Flow(f"f{i}", 100, (r,)) for i in range(4)]
        for f in flows:
            sched.start_flow(f)
        sim.run()
        assert all(f.done for f in flows)
        assert all(f.completed_at == pytest.approx(4.0) for f in flows)

    def test_cancel_already_completed_is_noop(self):
        sim = Simulator()
        sched = FlowScheduler(sim)
        f = Flow("f", 10, (Resource("r", 100.0),))
        sched.start_flow(f)
        sim.run()
        sched.cancel_flow(f)  # must not raise or un-complete
        assert f.done

    def test_cancel_before_start(self):
        sim = Simulator()
        sched = FlowScheduler(sim)
        f = Flow("f", 10, (Resource("r", 100.0),))
        sched.cancel_flow(f)
        assert f.cancelled and not f.done

    def test_interleaved_start_cancel_burst(self):
        sim = Simulator()
        sched = FlowScheduler(sim)
        r = Resource("r", 100.0)
        keep = Flow("keep", 200, (r,))
        drop = Flow("drop", 200, (r,))
        sched.start_flow(keep)
        sched.start_flow(drop)
        sched.cancel_flow(drop)  # same timestamp as the starts
        sim.run()
        assert keep.completed_at == pytest.approx(2.0)

    def test_settle_now_safe_when_idle(self):
        sim = Simulator()
        sched = FlowScheduler(sim)
        sched.settle_now()  # no flows, no time passed
        assert not sched.active
