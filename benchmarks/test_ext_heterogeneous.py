"""Extension experiment: repair on a *heterogeneous* cluster.

The paper's testbed has uniform 10 Gb/s links; real fleets mix NIC
generations. Here a quarter of the nodes run at 2.5 Gb/s. Idle-bandwidth
dispatch should route repair tasks around the slow nodes, so
ChameleonEC's margin over the bandwidth-oblivious baselines widens
relative to the uniform-cluster result (Exp#1).
"""

from conftest import emit

from repro.cluster import gbps
from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_repair_experiment
from repro.api import Testbed

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")


def run_heterogeneous(scale: float, seed: int = 0) -> dict[str, float]:
    slow = {i: {"uplink_bw": gbps(2.5), "downlink_bw": gbps(2.5)} for i in (2, 7, 11, 15)}
    results = {}
    for algorithm in ALGORITHMS:
        config = ExperimentConfig.scaled(scale, seed=seed)
        scenario = Testbed.build(config)
        # Rebuild the cluster with slow nodes before any traffic starts.
        for node_id, params in slow.items():
            node = scenario.cluster.node(node_id)
            node.uplink.set_capacity(params["uplink_bw"])
            node.downlink.set_capacity(params["downlink_bw"])
        result = run_repair_experiment(config, algorithm, scenario=scenario)
        results[algorithm] = result.throughput_mbs
    return results


def test_ext_heterogeneous_cluster(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_heterogeneous, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(benchmark, "Extension: heterogeneous cluster (4/20 nodes at 2.5 Gb/s)",
         ["algorithm", "throughput MB/s"], [[k, v] for k, v in results.items()])
    for baseline in ("CR", "PPR", "ECPipe"):
        assert results["ChameleonEC"] > results[baseline]
