"""Exp#4 (Fig. 15): adaptivity under dynamically transitioning traces."""

from conftest import emit

from repro.experiments.exp04_adaptivity import rows, run_exp04, series_rows


def test_exp04_adaptivity(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp04, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#4 / Fig 15: average throughput under trace transitions",
         ["algorithm", "throughput MB/s", "repair time s"], rows(results))
    emit(benchmark, "Exp#4 / Fig 15: throughput time series (MB/s per window)",
         ["algorithm"] + [f"w{i}" for i in range(8)], series_rows(results))
    cham = results["ChameleonEC"].throughput
    for baseline in ("CR", "PPR", "ECPipe"):
        assert cham > results[baseline].throughput
