"""Macro-benchmark: columnar kernel vs dict scheduler at YCSB scale.

The tentpole payoff gate. A 1000-node cluster serves a YCSB-style
read/update mix of 100,000 closed-over flows (scaled down by
``REPRO_BENCH_SCALE``): every request crosses the source node's uplink
and the destination node's downlink, a fifth of the traffic hammers a
hot 5% of nodes, and arrivals smear over a fixed window so thousands of
flows are concurrently in flight.

Both schedulers replay the identical workload. The contract checked
here is the project's whole reason to carry two implementations:

* the :class:`ColumnarFlowScheduler` must reproduce the dict
  :class:`FlowScheduler`'s completion timeline *exactly* (``==``), and
* it must execute at least 5x fewer per-flow Python hot-path operations
  (``py_flow_ops``: per-flow settles, rate writes, and heap pops on the
  dict path; only the unavoidable cancel settles and one attach/detach
  pair per flow on the columnar path).

When ``REPRO_KERNEL_BENCH_OUT`` is set, a machine-readable verdict
document is written there. Its content is purely a function of the
workload (no wall-clock timestamps), so two runs at the same scale must
produce byte-identical files — CI runs it twice and diffs.
"""

import hashlib
import json
import os

import numpy as np
from conftest import emit

from repro.sim import (
    ColumnarFlowScheduler,
    Flow,
    FlowScheduler,
    RateAllocator,
    Resource,
    Simulator,
)

FULL_NODES = 1000
FULL_FLOWS = 100_000
LINK_CAPACITY = 100.0
ARRIVAL_WINDOW_S = 60.0
HOT_NODE_FRACTION = 0.05
HOT_TRAFFIC_FRACTION = 0.2
READ_FRACTION = 0.95


def _build_requests(num_nodes, num_flows, seed=11):
    """YCSB-ish request stream: (start, name, size, src, dst, op) rows."""
    rng = np.random.default_rng(seed)
    hot = max(1, int(num_nodes * HOT_NODE_FRACTION))
    starts = rng.uniform(0, ARRIVAL_WINDOW_S, num_flows)
    is_hot = rng.random(num_flows) < HOT_TRAFFIC_FRACTION
    servers = np.where(
        is_hot,
        rng.integers(0, hot, num_flows),
        rng.integers(0, num_nodes, num_flows),
    )
    clients = rng.integers(0, num_nodes, num_flows)
    is_read = rng.random(num_flows) < READ_FRACTION
    sizes = rng.integers(4, 64, num_flows).astype(float)
    reqs = []
    for i in range(num_flows):
        # Reads move server -> client; updates move client -> server.
        src, dst = (
            (int(servers[i]), int(clients[i]))
            if is_read[i]
            else (int(clients[i]), int(servers[i]))
        )
        reqs.append((float(starts[i]), f"q{i}", float(sizes[i]), src, dst,
                     "read" if is_read[i] else "update"))
    return reqs


def _run_workload(make_scheduler, num_nodes, requests):
    """Replay the request stream; returns (scheduler, completion times)."""
    sim = Simulator()
    sched = make_scheduler(sim)
    uplinks = [Resource(f"n{i}-up", LINK_CAPACITY) for i in range(num_nodes)]
    downlinks = [Resource(f"n{i}-down", LINK_CAPACITY) for i in range(num_nodes)]
    flows = []
    for start, name, size, src, dst, op in requests:
        flow = Flow(name, size, (uplinks[src], downlinks[dst]), tag=op)
        flows.append(flow)
        sim.schedule(start, lambda f=flow: sched.start_flow(f))
    sim.run()
    assert all(f.done for f in flows)
    return sched, [f.completed_at for f in flows]


def test_kernel_ycsb_scaling(benchmark, bench_scale):
    num_nodes = max(40, int(FULL_NODES * bench_scale))
    num_flows = max(4000, int(FULL_FLOWS * bench_scale))
    requests = _build_requests(num_nodes, num_flows)

    col_sched, col_times = benchmark.pedantic(
        _run_workload,
        args=(lambda sim: ColumnarFlowScheduler(sim), num_nodes, requests),
        rounds=1,
        iterations=1,
    )
    dict_sched, dict_times = _run_workload(
        lambda sim: FlowScheduler(sim, allocator=RateAllocator()),
        num_nodes,
        requests,
    )

    emit(
        benchmark,
        f"Columnar kernel: {num_flows}-flow YCSB mix over {num_nodes} nodes",
        ["scheduler", "py_flow_ops", "ops/flow"],
        [
            ["dict", dict_sched.py_flow_ops,
             round(dict_sched.py_flow_ops / num_flows, 2)],
            ["columnar", col_sched.py_flow_ops,
             round(col_sched.py_flow_ops / num_flows, 2)],
        ],
    )

    # Byte-for-byte replay: the columnar path is a drop-in replacement,
    # so completion instants must be exactly equal, not approximately.
    assert col_times == dict_times

    ratio = dict_sched.py_flow_ops / max(1, col_sched.py_flow_ops)
    assert ratio >= 5.0, (
        f"expected >=5x fewer per-flow Python ops, got "
        f"{dict_sched.py_flow_ops} vs {col_sched.py_flow_ops} ({ratio:.1f}x)"
    )

    out = os.environ.get("REPRO_KERNEL_BENCH_OUT")
    if out:
        # Deterministic verdict document: derived from the workload and
        # the simulated clock only, never the wall clock.
        timeline = hashlib.sha256(
            json.dumps(col_times).encode()
        ).hexdigest()
        doc = {
            "benchmark": "kernel_ycsb_scaling",
            "scale": bench_scale,
            "num_nodes": num_nodes,
            "num_flows": num_flows,
            "py_flow_ops": {
                "dict": dict_sched.py_flow_ops,
                "columnar": col_sched.py_flow_ops,
            },
            "ops_ratio": round(ratio, 2),
            "timeline_equal": col_times == dict_times,
            "timeline_sha256": timeline,
            "makespan_s": max(col_times),
            "passed": ratio >= 5.0 and col_times == dict_times,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
