"""Exp#17: SLO-gated chaos suite — all fault families, machine verdicts."""

from conftest import emit

from repro.experiments.exp17_chaos import HEADERS, rows, run_exp17


def test_exp17_chaos(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp17, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#17: SLO-gated chaos suite (per traffic family)",
         HEADERS, rows(results))
    for trace, run in results.items():
        # The gate holds under the composed fault schedule...
        assert run.gate.passed, (trace, [b.to_dict() for b in run.gate.breaches])
        assert run.detected == run.injected > 0, trace
        assert run.repair_time > 0, trace
        # ...while the unattainable probe set proves breach recording
        # works: every breach carries a virtual timestamp.
        assert run.probe.breaches, trace
        assert all(b.time > 0 for b in run.probe.breaches), trace
        # Per-tag attribution saw repair and scrub traffic move bytes.
        assert run.repair_bw_peak_mbs > 0, trace
        assert run.scrub_bw_peak_mbs > 0, trace
