"""Fig. 2: data-loss probability vs repair throughput (analytic model)."""

from conftest import emit

from repro.experiments.figures import fig2_rows, run_fig2


def test_fig2_reliability(benchmark):
    curve = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit(benchmark, "Fig 2: Pr_dl vs repair throughput (RS(10,4), 96 TB/node)",
         ["repair throughput", "Pr_dl"], fig2_rows(curve))
    # Higher repair throughput must strictly lower the loss probability.
    probs = [p for _, p in curve]
    assert all(a > b for a, b in zip(probs, probs[1:]))
