"""Shared helpers for the per-figure benchmark harnesses.

Every benchmark regenerates one paper table/figure at a reduced scale
(override with the ``REPRO_BENCH_SCALE`` environment variable, up to
1.0 for the paper's full workload sizes) and prints the rows the paper
reports. Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables inline; the same data lands in each benchmark's ``extra_info``.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = 0.08


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def emit(benchmark, title: str, headers: list[str], rows: list[list]) -> None:
    """Print a result table and attach it to the benchmark record."""
    from repro.experiments.harness import format_table

    table = format_table(title, headers, rows)
    print()
    print(table)
    benchmark.extra_info["table"] = table
