"""Fig. 4 (Section II-D): interference study — repair time and P99 vs #clients."""

from conftest import emit

from repro.experiments.motivation import (
    rows_p99,
    rows_repair_time,
    run_motivation,
)


def test_fig4_motivation(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_motivation,
        kwargs={"scale": bench_scale, "client_counts": (0, 2, 4)},
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "Fig 4(a): repair time (s) vs #YCSB clients",
         ["clients", "CR", "PPR", "ECPipe"], rows_repair_time(results))
    emit(benchmark, "Fig 4(b): P99 latency (ms) vs #YCSB clients",
         ["clients", "CR", "PPR", "ECPipe"], rows_p99(results))
    repair = results["repair"]
    for algo in ("CR", "PPR", "ECPipe"):
        # Interference lengthens the repair: 4 clients vs none.
        assert repair[(4, algo)].repair_time > repair[(0, algo)].repair_time
