"""Exp#12 (Fig. 23): storage-bottlenecked scenarios (ChameleonEC-IO)."""

from conftest import emit

from repro.experiments.exp12_storage_bottleneck import rows, run_exp12

HEADERS = ["disk bw", "CR", "ChameleonEC", "ChameleonEC-IO"]


def test_exp12_storage_bottleneck(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp12, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#12 / Fig 23: throughput under throttled disks (MB/s)",
         HEADERS, rows(results))
    disks = sorted({d for d, _ in results})
    # Faster disks help everyone.
    assert (
        results[(disks[-1], "ChameleonEC")].throughput
        >= results[(disks[0], "ChameleonEC")].throughput
    )
    # Under the most stringent disks, the IO-aware variant holds up at
    # least as well as plain ChameleonEC.
    tightest = disks[0]
    assert (
        results[(tightest, "ChameleonEC-IO")].throughput
        >= results[(tightest, "ChameleonEC")].throughput * 0.9
    )
