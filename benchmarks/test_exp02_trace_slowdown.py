"""Exp#2 (Fig. 13): interference degree (trace slowdown under repair)."""

from conftest import emit

from repro.experiments.exp02_trace_slowdown import rows, run_exp02

HEADERS = ["trace", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp02_trace_slowdown(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp02,
        kwargs={"scale": bench_scale, "traces": ("YCSB-A", "Facebook-ETC")},
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "Exp#2 / Fig 13: interference degree (T*/T - 1)",
         HEADERS, rows(results))
    # ChameleonEC introduces less slowdown than the baselines on average.
    traces = {t for t, _ in results}
    cham = sum(results[(t, "ChameleonEC")] for t in traces)
    for baseline in ("CR", "PPR", "ECPipe"):
        assert cham <= sum(results[(t, baseline)] for t in traces) + 0.05 * len(traces)
