"""Exp#8 (Fig. 19): multi-node repair (1-3 failed nodes)."""

from conftest import emit

from repro.experiments.exp08_multinode import rows, run_exp08

HEADERS = ["failures", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp08_multinode(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp08, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#8 / Fig 19: multi-node repair throughput (MB/s)",
         HEADERS, rows(results))
    for failures in (1, 2, 3):
        cham = results[(failures, "ChameleonEC")].throughput
        for baseline in ("CR", "PPR", "ECPipe"):
            assert cham > results[(failures, baseline)].throughput * 0.95
