"""Journal replay wall-clock: recovery cost vs log length & compaction."""

from conftest import emit

from repro.cluster.stripes import ChunkId
from repro.journal import Journal


def _build_journal(chunks: int, *, checkpoint_interval=None) -> Journal:
    """A journal shaped like a real run: enqueue, plan, commit per chunk."""
    journal = Journal(checkpoint_interval=checkpoint_interval)
    journal.coordinator_started()
    ids = [ChunkId(i // 4, i % 4) for i in range(chunks)]
    for chunk in ids:
        journal.chunk_enqueued(chunk)
    for chunk in ids:
        journal.plan_chosen(chunk, destination=1, sources=[2, 3, 4], attempt=1)
        journal.reads_issued(chunk, transfers=4)
        journal.decode_verified(chunk)
        journal.writeback_committed(chunk)
    return journal


def test_journal_replay(benchmark, bench_scale):
    chunks = max(200, int(4000 * bench_scale))
    journal = _build_journal(chunks)
    state = benchmark(journal.replay)
    assert len(state.committed) == chunks and not state.pending
    compacted = _build_journal(chunks, checkpoint_interval=64)
    compacted_state = compacted.replay()
    assert len(compacted_state.committed) == chunks
    emit(
        benchmark,
        "Journal replay: record counts",
        ["chunks", "records (full)", "records (checkpointed@64)"],
        [[chunks, len(journal), len(compacted)]],
    )
    # Compaction bounds replay work regardless of history length.
    assert len(compacted) < len(journal)
    assert len(compacted) <= 64 + 1
