"""Exp#18: adaptive admission control — closed loop beats open loop."""

import json

from conftest import emit

from repro.experiments.exp18_adaptive import (
    HEADERS,
    rows,
    run_exp18,
    verdict_payload,
    write_bench,
)


def test_exp18_adaptive(benchmark, bench_scale, tmp_path):
    results = benchmark.pedantic(
        run_exp18, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#18: adaptive admission control (off vs on)",
         HEADERS, rows(results))
    payload = verdict_payload(results, scale=bench_scale, seed=0)
    # The acceptance criterion: strictly fewer P99 breach windows with
    # the controller on, without blowing the repair deadline.
    assert payload["improved"], payload["p99_breach_windows"]
    assert payload["repair_deadline_met"]
    assert payload["passed"]
    for trace, run in results.items():
        # Per-trace, closing the loop never makes interference worse.
        assert run.on_breach_windows <= run.off_breach_windows, trace
        assert run.on_deadline_met, trace
        # The controller actually acted somewhere in the chaos.
        assert run.on.admission and not run.off.admission, trace
    assert any(r.on.controller_backoffs > 0 for r in results.values())
    # Same-seed reruns serialise byte-identically (virtual time only).
    path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
    write_bench(results, str(path_a), scale=bench_scale, seed=0)
    write_bench(results, str(path_b), scale=bench_scale, seed=0)
    assert path_a.read_bytes() == path_b.read_bytes()
    assert json.loads(path_a.read_text())["experiment"] == "exp18_adaptive"
