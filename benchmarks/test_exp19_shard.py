"""Exp#19: sharded control plane — blast radius shrinks with shard count."""

from conftest import emit

from repro.experiments.exp19_shard_failover import (
    HEADERS,
    rows,
    run_exp19,
    verdict_payload,
)


def test_exp19_shard_failover(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp19, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#19: shard count vs failover blast radius",
         HEADERS, rows(results))
    payload = verdict_payload(results, scale=bench_scale, seed=0)
    # The headline gate: one targeted crash stalls a strictly smaller
    # fraction of the open work as the plane gains shards...
    assert payload["blast_shrinks"], payload["mean_blast_by_shards"]
    # ...without ever double-repairing or losing a chunk, crash or not.
    assert payload["exactly_once"], payload
    assert payload["repair_complete"], payload
    assert payload["passed"]
    for shards, per in results.items():
        baseline = per[None]
        # Crash-free N-shard runs complete and stay exactly-once.
        assert baseline.completed_total == baseline.chunks > 0, shards
        assert baseline.duplicates == 0, shards
        assert sum(baseline.partition_sizes) == baseline.chunks, shards
        for frac, run in per.items():
            if frac is None:
                continue
            # A targeted crash stalls only the dead shard's open work.
            assert run.crash_shard is not None, (shards, frac)
            assert 0 < run.stalled <= run.open_at_crash, (shards, frac)
            if shards == 1:
                assert run.blast == 1.0, (shards, frac)
            else:
                assert run.blast < 1.0, (shards, frac)
            # The dead shard's work was requeued and finished.
            assert run.requeued > 0, (shards, frac)
            assert run.repair_time >= baseline.repair_time * 0.5, (shards, frac)
