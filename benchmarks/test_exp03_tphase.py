"""Exp#3 (Fig. 14): ChameleonEC throughput vs phase length T_phase."""

from conftest import emit

from repro.experiments.exp03_tphase import rows, run_exp03


def test_exp03_tphase(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp03, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#3 / Fig 14: ChameleonEC vs T_phase",
         ["T_phase (paper-equivalent)", "throughput MB/s", "P99 ms"], rows(results))
    # Shape: short phases react faster to bandwidth changes; the paper
    # reports a gentle decline from T=10s to T=40s (-5.4% at T=20).
    # Scaled runs add per-phase overhead that full-scale runs amortise,
    # so we assert the shortest phase stays within 15% of the longest.
    shortest = results[min(results)].throughput
    longest = results[max(results)].throughput
    assert shortest >= longest * 0.85
