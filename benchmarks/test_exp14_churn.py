"""Exp#14: repair completion and tail latency under mid-repair churn."""

from conftest import emit

from repro.experiments.exp14_churn import HEADERS, rows, run_exp14


def test_exp14_churn(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp14, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#14: repair under churn (mid-repair crash + straggler)",
         HEADERS, rows(results))
    for (algorithm, churn), run in results.items():
        # Within the code's tolerance nothing may be lost, ever.
        assert run.lost_chunks == 0, (algorithm, churn)
        if churn:
            # The crash adds the dead node's chunks to the batch...
            assert run.adopted_chunks > 0, algorithm
            # ...and churn can only extend the repair.
            assert run.repair_time >= results[(algorithm, False)].repair_time
    # The full system keeps its edge over the baselines under churn.
    assert (
        results[("ChameleonEC", True)].repair_time
        <= min(results[(a, True)].repair_time for a in ("CR", "PPR", "ECPipe")) * 1.1
    )
