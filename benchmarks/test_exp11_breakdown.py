"""Exp#11 (Fig. 22): breakdown study (ETRP vs ETRP+SAR under a straggler)."""

from conftest import emit

from repro.experiments.exp11_breakdown import rows, run_exp11

HEADERS = ["straggler start", "CR", "PPR", "ECPipe", "ETRP", "ChameleonEC"]


def test_exp11_breakdown(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp11, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#11 / Fig 22: phase repair throughput with straggler (MB/s)",
         HEADERS, rows(results))
    # The full system (ETRP+SAR) at least matches ETRP alone on average.
    offsets = sorted({o for o, _ in results})
    full = sum(results[(o, "ChameleonEC")] for o in offsets)
    etrp = sum(results[(o, "ETRP")] for o in offsets)
    assert full >= etrp * 0.95
    # A later straggler leaves more of the phase unharmed.
    assert results[(offsets[-1], "ChameleonEC")] >= results[(offsets[0], "ChameleonEC")] * 0.8
