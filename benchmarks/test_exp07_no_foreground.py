"""Exp#7 (Fig. 18): repair throughput with no foreground traffic."""

from conftest import emit

from repro.experiments.exp07_no_foreground import rows, run_exp07

HEADERS = ["link bw", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp07_no_foreground(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp07,
        kwargs={"scale": bench_scale, "bandwidths": (1.0, 10.0)},
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "Exp#7 / Fig 18: no-foreground repair throughput (MB/s)",
         HEADERS, rows(results))
    for bw in (1.0, 10.0):
        # Gains persist without interference (bandwidth balancing alone).
        cham = results[(bw, "ChameleonEC")].throughput
        for baseline in ("CR", "PPR", "ECPipe"):
            assert cham >= results[(bw, baseline)].throughput * 0.95
    # Richer links repair faster.
    for algorithm in ("CR", "ChameleonEC"):
        assert results[(10.0, algorithm)].throughput > results[(1.0, algorithm)].throughput
