"""Exp#10 (Fig. 21): degraded-read throughput under RS(6,3) and RS(10,4)."""

from conftest import emit

from repro.experiments.exp10_degraded_read import rows, run_exp10

HEADERS = ["code", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp10_degraded_read(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp10, kwargs={"scale": bench_scale, "reads": 2}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#10 / Fig 21: degraded-read throughput (MB/s)",
         HEADERS, rows(results))
    for code in ("RS(6,3)", "RS(10,4)"):
        cham = results[(code, "ChameleonEC")]
        for baseline in ("CR", "PPR", "ECPipe"):
            assert cham > results[(code, baseline)] * 0.8
