"""Fig. 6: bandwidth utilisation of most/least-loaded links per algorithm."""

from conftest import emit

from repro.experiments.figures import fig6_rows, run_fig6


def test_fig6_imbalance(benchmark, bench_scale):
    stats = benchmark.pedantic(
        run_fig6, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Fig 6: most-loaded (ML) vs least-loaded (LL) links (Gb/s)",
         ["link", "repair bw", "foreground bw", "total"], fig6_rows(stats))
    # R2: utilisation is unbalanced — every algorithm's most-loaded link
    # carries strictly more than its least-loaded one.
    for algorithm in ("CR", "PPR", "ECPipe"):
        for direction in ("up", "down"):
            ml = sum(stats[(algorithm, direction, "ML")])
            ll = sum(stats[(algorithm, direction, "LL")])
            assert ml > ll
