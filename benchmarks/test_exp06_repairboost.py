"""Exp#6 (Fig. 17): RepairBoost-enhanced baselines vs ChameleonEC."""

from conftest import emit

from repro.experiments.exp06_repairboost import rows, run_exp06


def test_exp06_repairboost(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp06, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#6 / Fig 17: RB-boosted baselines vs ChameleonEC",
         ["algorithm", "throughput MB/s", "P99 ms"], rows(results))
    # Paper shape: RB narrows the gap but ChameleonEC stays ahead
    # (+16-46% on EC2). The fluid fair-share model compresses that gap
    # (see EXPERIMENTS.md), so we assert ChameleonEC stays competitive
    # with every boosted baseline rather than strictly ahead.
    cham = results["ChameleonEC"].throughput
    for boosted in ("RB+CR", "RB+PPR", "RB+ECPipe"):
        assert cham > results[boosted].throughput * 0.85
