"""Extension experiment: repair in a hierarchical (rack-based) data centre.

The paper's EC2 testbed is flat; production DCs oversubscribe the core
(the ClusterSR setting the paper cites). With a 3x-oversubscribed core,
cross-rack transfers contend on the rack pipes — a second level of
bandwidth contention on top of node links.
"""

from conftest import emit

from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_repair_experiment

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")


def run_racked(scale: float, seed: int = 0, racks: int = 4, oversub: float = 3.0):
    results = {}
    for algorithm in ALGORITHMS:
        config = ExperimentConfig.scaled(
            scale, seed=seed, racks=racks, oversubscription=oversub
        )
        results[algorithm] = run_repair_experiment(config, algorithm).throughput_mbs
    return results


def test_ext_rack_topology(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_racked, args=(bench_scale,), rounds=1, iterations=1
    )
    emit(benchmark, "Extension: 4 racks, 3x oversubscribed core (MB/s)",
         ["algorithm", "throughput MB/s"], [[k, v] for k, v in results.items()])
    # ChameleonEC stays competitive-to-ahead under core contention.
    for baseline in ("CR", "PPR", "ECPipe"):
        assert results["ChameleonEC"] > results[baseline] * 0.9
