"""Micro-benchmark: incremental allocator vs from-scratch on flow churn.

Drives a ~1000-flow churn workload (scaled by ``REPRO_BENCH_SCALE``)
over partitioned resource groups — the shape repair traffic takes, where
flows cluster on a few links and the bipartite flow/resource graph
splits into many small connected components. The incremental
:class:`RateAllocator` recomputes only the dirty component per mutation;
the :class:`FromScratchAllocator` re-rates every active flow. The
``alloc.flows_touched`` counter measures exactly that work, and the
incremental allocator must do at least 3x less of it.
"""

import numpy as np
from conftest import emit

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.sim import (
    Flow,
    FlowScheduler,
    FromScratchAllocator,
    RateAllocator,
    Resource,
    Simulator,
)

RESOURCES_PER_GROUP = 4
CHURN_WINDOW_S = 30.0


def _run_churn(allocator, num_flows, num_groups, seed=7):
    """Run one churn workload; returns (registry, completion times)."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    sched = FlowScheduler(sim, allocator=allocator)
    groups = [
        [
            Resource(f"g{g}r{i}", float(rng.integers(50, 200)))
            for i in range(RESOURCES_PER_GROUP)
        ]
        for g in range(num_groups)
    ]
    flows = []
    for i in range(num_flows):
        group = groups[int(rng.integers(0, num_groups))]
        picks = rng.choice(RESOURCES_PER_GROUP, size=2, replace=False)
        flow = Flow(
            f"f{i}",
            float(rng.integers(20, 400)),
            tuple(group[int(j)] for j in picks),
        )
        flows.append(flow)
        sim.schedule(
            float(rng.uniform(0, CHURN_WINDOW_S)),
            lambda f=flow: sched.start_flow(f),
        )
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        sim.run()
    finally:
        set_registry(previous)
    assert all(f.done for f in flows)
    return registry, [f.completed_at for f in flows]


def test_allocator_churn_scaling(benchmark, bench_scale):
    num_flows = max(150, int(1000 * bench_scale))
    num_groups = max(6, num_flows // 40)

    incremental = benchmark.pedantic(
        _run_churn,
        args=(RateAllocator(), num_flows, num_groups),
        rounds=1,
        iterations=1,
    )
    baseline = _run_churn(FromScratchAllocator(), num_flows, num_groups)

    rows = []
    for label, (registry, _) in (("incremental", incremental),
                                 ("from-scratch", baseline)):
        component = registry.histogram("alloc.component_size")
        rows.append([
            label,
            int(registry.counter("alloc.passes").value),
            int(registry.counter("alloc.flows_touched").value),
            round(component.mean, 2),
            round(component.max, 0),
        ])
    emit(
        benchmark,
        f"Allocator scaling: {num_flows}-flow churn over {num_groups} "
        "resource groups",
        ["allocator", "passes", "flows_touched", "mean component", "max"],
        rows,
    )

    # Both allocators must produce the same simulation.
    for fast, oracle in zip(incremental[1], baseline[1]):
        assert fast == oracle or abs(fast - oracle) < 1e-6

    touched_fast = incremental[0].counter("alloc.flows_touched").value
    touched_slow = baseline[0].counter("alloc.flows_touched").value
    assert touched_slow >= 3 * touched_fast, (
        f"expected >=3x fewer flow-rate recomputations, got "
        f"{touched_slow:.0f} vs {touched_fast:.0f}"
    )
