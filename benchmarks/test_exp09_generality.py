"""Exp#9 (Fig. 20): generality across RS, LRC, and Butterfly codes."""

from conftest import emit

from repro.experiments.exp09_generality import rows, run_exp09

HEADERS = ["code", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp09_generality(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp09, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#9 / Fig 20: repair throughput by erasure code (MB/s)",
         HEADERS, rows(results))
    # ChameleonEC leads for RS codes and LRCs.
    for code in ("RS(8,3)", "RS(10,4)", "LRC(8,2,2)", "LRC(10,2,2)"):
        cham = results[(code, "ChameleonEC")].throughput
        for baseline in ("CR", "PPR", "ECPipe"):
            assert cham > results[(code, baseline)].throughput * 0.95
    # LRCs repair faster than their RS counterparts (fewer sources read).
    assert (
        results[("LRC(10,2,2)", "CR")].throughput
        > results[("RS(10,4)", "CR")].throughput
    )
    # Butterfly: no elastic plan possible, so the gain is small but >= 0.
    butterfly_gain = (
        results[("Butterfly(4,2)", "ChameleonEC")].throughput
        / results[("Butterfly(4,2)", "CR")].throughput
    )
    assert butterfly_gain > 0.9
