"""Exp#16: coordinator-crash timing sweep — failover cost, exactly-once."""

from conftest import emit

from repro.experiments.exp16_failover import HEADERS, rows, run_exp16


def test_exp16_failover(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp16, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#16: coordinator failover (crash timing vs repair inflation)",
         HEADERS, rows(results))
    baseline = results[None]
    crashed = sorted(f for f in results if f is not None)
    assert baseline.repair_time > 0 and baseline.unverified == 0
    for frac in crashed:
        run = results[frac]
        # Exactly-once, byte-exact, nothing written off.
        assert run.duplicates == 0, frac
        assert run.unverified == 0, frac
        assert run.lost == 0, frac
        assert run.completed_before + run.completed_after == run.chunks, frac
        # Downtime + re-execution can only lengthen the repair.
        assert run.repair_time >= baseline.repair_time, frac
    # A later crash leaves less work to re-execute than an earlier one.
    requeues = [results[f].requeued for f in crashed]
    assert requeues == sorted(requeues, reverse=True), requeues
