"""Exp#20: partition-tolerant repair — detection + hedging beat timeouts."""

from conftest import emit

from repro.experiments.exp20_partition import (
    HEADERS,
    rows,
    run_exp20,
    verdict_payload,
)


def test_exp20_partition(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp20, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#20: repair under network partitions",
         HEADERS, rows(results))
    payload = verdict_payload(results, scale=bench_scale, seed=0)
    # The headline gate: detection + hedging strictly beat the
    # timeout-only baseline's p99 at every partition duration...
    assert payload["tail_reduced"], payload["p99_by_duration"]
    # ...every chunk is repaired and verified in every mode...
    assert payload["repair_complete"], payload
    # ...and the fencing scenario stayed exactly-once with zero stale
    # writes accepted into the journal.
    assert payload["exactly_once"], payload["zombie"]
    assert payload["fencing_held"], payload["zombie"]
    assert payload["passed"]
    for duration, per in results["sweep"].items():
        baseline, full = per["baseline"], per["full"]
        # The baseline pays a tail comparable to the cut itself; the
        # detector suspects within a few heartbeats instead.
        assert full.p99 < baseline.p99, duration
        assert full.suspicions > 0, duration
        assert full.suspect_replans > 0, duration
        # Suspicion is judged against ground truth: a hard partition
        # must never be classified as a false positive.
        assert full.false_suspicions == 0, duration
    zombie = results["zombie"]
    assert zombie.fenced_writes > 0
    assert zombie.stepdowns >= 1
    assert zombie.stale_accepted == 0
    assert zombie.double_commits == 0
    assert zombie.unverified == 0
