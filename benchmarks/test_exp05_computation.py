"""Exp#5 (Fig. 16): coordinator computation time vs nodes and chunks."""

from conftest import emit

from repro.experiments.exp05_computation import rows, run_exp05


def test_exp05_computation(benchmark):
    results = benchmark.pedantic(
        run_exp05,
        kwargs={"node_counts": (50, 100, 200, 500), "chunk_counts": (200, 600, 1000)},
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "Exp#5 / Fig 16: plan-generation wall time (s)",
         ["nodes", "200 chunks", "600 chunks", "1000 chunks"], rows(results))
    # Time grows with the chunk count and stays lightweight overall; the
    # paper reports ~0.55 s for 1000 chunks on 500 nodes.
    for nodes in (50, 100, 200, 500):
        assert results[(nodes, 200)] <= results[(nodes, 1000)]
    assert results[(500, 1000)] < 30.0
