"""Exp#1 (Fig. 12): repair throughput + P99 across four real-world traces."""

from conftest import emit

from repro.experiments.exp01_interference import (
    rows_p99,
    rows_throughput,
    run_exp01,
)

HEADERS = ["trace", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp01_interference(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp01, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#1 / Fig 12(a): repair throughput (MB/s)",
         HEADERS, rows_throughput(results))
    emit(benchmark, "Exp#1 / Fig 12(b): P99 latency (ms)",
         HEADERS, rows_p99(results))
    # Headline claim: ChameleonEC beats every baseline on every trace.
    traces = {t for t, _ in results}
    for trace in traces:
        chameleon = results[(trace, "ChameleonEC")].throughput
        for baseline in ("CR", "PPR", "ECPipe"):
            assert chameleon > results[(trace, baseline)].throughput
