"""Exp#13 (Fig. 24): impact of network bandwidth (with foreground traffic)."""

from conftest import emit

from repro.experiments.exp13_network_bw import rows, run_exp13

HEADERS = ["link bw", "CR", "PPR", "ECPipe", "ChameleonEC"]


def test_exp13_network_bw(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp13,
        kwargs={"scale": bench_scale, "bandwidths": (1.0, 4.0, 10.0)},
        rounds=1,
        iterations=1,
    )
    emit(benchmark, "Exp#13 / Fig 24: repair throughput vs link bandwidth (MB/s)",
         HEADERS, rows(results))
    # Throughput grows with bandwidth.
    for algorithm in ("CR", "ChameleonEC"):
        assert results[(10.0, algorithm)].throughput > results[(1.0, algorithm)].throughput
    # The relative ChameleonEC gain shrinks as links out-run the disks.
    gain_1 = results[(1.0, "ChameleonEC")].throughput / results[(1.0, "CR")].throughput
    gain_10 = results[(10.0, "ChameleonEC")].throughput / results[(10.0, "CR")].throughput
    assert gain_10 <= gain_1 * 1.3
