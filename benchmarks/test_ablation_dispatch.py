"""Ablations of ChameleonEC design choices (DESIGN.md section).

1. minimum-time-first destination selection vs the baselines' random
   pick (holding everything else fixed);
2. the relay budget (max_relay_fraction) — 0 degenerates to stars,
   1 degenerates to ECPipe-like chains;
3. slice-size sensitivity (pipelining granularity).
"""

import numpy as np
from conftest import emit

from repro.experiments import ExperimentConfig
from repro.experiments.harness import run_sim_until
from repro.api import Testbed


def _run_chameleon(config, *, relay_fraction=None, random_destination=False):
    scenario = Testbed.build(config)
    scenario.start_foreground()
    scenario.cluster.sim.run(until=6.0)
    report = scenario.fail_nodes(1)
    coordinator = scenario.make_repairer("ChameleonEC")
    if relay_fraction is not None:
        coordinator.dispatcher.max_relay_fraction = relay_fraction
    if random_destination:
        rng = np.random.default_rng(config.seed + 5)
        injector = scenario.injector

        def random_pick(chunk):
            candidates = injector.candidate_destinations(chunk)
            return int(rng.choice(candidates))

        coordinator.dispatcher.select_destination = random_pick
    coordinator.repair(report.failed_chunks)
    run_sim_until(scenario.cluster, lambda: coordinator.done)
    scenario.stop_foreground()
    return coordinator.meter.throughput / 1e6


def test_ablation_destination_policy(benchmark, bench_scale):
    config = ExperimentConfig.scaled(bench_scale)

    def run():
        return {
            "min-time-first": _run_chameleon(config),
            "random": _run_chameleon(config, random_destination=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(benchmark, "Ablation: destination selection policy (MB/s)",
         ["policy", "throughput"], [[k, v] for k, v in results.items()])
    # Idle-aware minimum-time-first must not lose to a random pick.
    assert results["min-time-first"] >= results["random"] * 0.9


def test_ablation_relay_budget(benchmark, bench_scale):
    config = ExperimentConfig.scaled(bench_scale)

    def run():
        return {
            frac: _run_chameleon(config, relay_fraction=frac)
            for frac in (0.0, 0.5, 1.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(benchmark, "Ablation: relay budget (fraction of sources, MB/s)",
         ["max_relay_fraction", "throughput"],
         [[f"{k:g}", v] for k, v in results.items()])
    # The bounded default should beat fully chained plans (frac=1.0
    # reproduces the ECPipe-style serialisation the paper criticises).
    assert results[0.5] >= results[1.0] * 0.9


def test_ablation_slice_size(benchmark, bench_scale):
    def run():
        out = {}
        for slice_mb in (16.0, 4.0, 1.0):
            config = ExperimentConfig.scaled(bench_scale, slice_mb=slice_mb)
            out[slice_mb] = _run_chameleon(config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(benchmark, "Ablation: slice size (pipelining granularity, MB/s)",
         ["slice MB", "throughput"], [[f"{k:g}", v] for k, v in results.items()])
    # Finer slices pipeline relay plans better (or at least not worse).
    assert results[1.0] >= results[16.0] * 0.9
