"""Fig. 5: fluctuation of the bandwidth occupied by foreground traffic."""

from conftest import emit

from repro.experiments.figures import fig5_rows, run_fig5


def test_fig5_fluctuation(benchmark, bench_scale):
    stats = benchmark.pedantic(
        run_fig5, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Fig 5: foreground bandwidth fluctuation per window (Gb/s)",
         ["direction", "mean", "min", "max"], fig5_rows(stats))
    # The foreground load must actually fluctuate across windows.
    assert stats["uplink"][2] > 0
    assert stats["downlink"][2] > 0
