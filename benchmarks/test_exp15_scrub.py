"""Exp#15: background-scrub rate sweep — detection latency vs P99 cost."""

from conftest import emit

from repro.experiments.exp15_scrub import HEADERS, rows, run_exp15


def test_exp15_scrub(benchmark, bench_scale):
    results = benchmark.pedantic(
        run_exp15, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    emit(benchmark, "Exp#15: background scrubbing (detection latency vs P99 inflation)",
         HEADERS, rows(results))
    nonzero = sorted(i for i in results if i > 0)
    baseline = results[0.0]
    # The window covers a full pass at every swept rate: nothing escapes.
    for intensity in nonzero:
        run = results[intensity]
        assert run.injected > 0, intensity
        assert run.detected == run.injected, intensity
    # Faster scans catch rot sooner...
    latencies = [results[i].mean_detection_latency for i in nonzero]
    assert latencies == sorted(latencies, reverse=True), latencies
    # ...and scan more chunks in the same window...
    scanned = [results[i].chunks_scanned for i in nonzero]
    assert scanned == sorted(scanned), scanned
    # ...but the most aggressive scrubber visibly taxes the foreground.
    assert results[nonzero[-1]].p99_latency > baseline.p99_latency
    # The no-scrub baseline never detects anything.
    assert baseline.detected == 0 and baseline.chunks_scanned == 0
