"""A minimal event-hook protocol shared across the package.

Historically every component grew its own ad-hoc callback kwarg plus
bare callback lists (``on_chunk_repaired``). :class:`HookEmitter` unifies
them: any component that mixes it in exposes ``on(event, callback)`` and
fires ``emit(event, **payload)``; the repair runners, the ChameleonEC
coordinator, trace clients, and the fault timeline all share it.

Conventions:

* event names are lower_snake strings (``"all_done"``, ``"node_crashed"``);
* the emitting object is always passed as the first positional argument,
  so one callback can serve several emitters;
* callbacks registered while an event is being emitted do not receive
  that emission (the subscriber list is snapshotted).

The legacy constructor kwargs (``on_all_done=``, ``on_done=``) went
through a deprecation cycle and are gone; ``on(event, cb)`` is the only
subscription path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

Hook = Callable[..., None]


class HookEmitter:
    """Mixin providing ``on(event, cb)`` registration and ``emit``.

    Subclasses may declare ``HOOK_EVENTS`` (an iterable of event names);
    when present, registering for an unknown event raises ``ValueError``
    immediately — a misspelled event name fails at subscription time, not
    by silently never firing.
    """

    HOOK_EVENTS: tuple[str, ...] | None = None

    def on(self, event: str, callback: Hook) -> "HookEmitter":
        """Subscribe ``callback`` to ``event``; returns self for chaining."""
        if self.HOOK_EVENTS is not None and event not in self.HOOK_EVENTS:
            raise ValueError(
                f"unknown event {event!r} for {type(self).__name__}; "
                f"known events: {sorted(self.HOOK_EVENTS)}"
            )
        self._hooks()[event].append(callback)
        return self

    def off(self, event: str, callback: Hook) -> None:
        """Remove one subscription (no-op when absent)."""
        callbacks = self._hooks().get(event)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def emit(self, event: str, /, *args: Any, **payload: Any) -> None:
        """Fire ``event``: every subscriber runs with (*args, **payload).

        ``event`` is positional-only so payloads may carry an ``event=``
        keyword (e.g. the fault timeline attaching the triggering event).
        """
        callbacks = self._hooks().get(event)
        if not callbacks:
            return
        for callback in list(callbacks):
            callback(*args, **payload)

    def _hooks(self) -> dict[str, list[Hook]]:
        hooks = getattr(self, "_hook_subscribers", None)
        if hooks is None:
            hooks = defaultdict(list)
            self._hook_subscribers = hooks
        return hooks
