"""Simulation-wide observability: tracing, metrics, exports, reports.

The coordinator in the paper is built on continuous observation — it
monitors idle bandwidth, tracks per-task expectations, and the whole
evaluation is per-link, per-phase measurement. This package records the
same signals for *our* runs: a virtual-time :class:`Tracer` threaded
through the simulator, schedulers, and repair pipeline; a
:class:`MetricsRegistry` of counters/gauges/streaming histograms; a
Chrome trace-event exporter (open the file in Perfetto or
``chrome://tracing``); and a plain-text run report.

Everything is off by default: the process-global tracer/registry are
null implementations until a run installs real ones (the experiment CLI
does this behind ``--trace`` / ``--report``).
"""

from repro.obs.export import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.report import build_report
from repro.obs.timeseries import Series, TimeseriesRecorder
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Series",
    "Span",
    "TimeseriesRecorder",
    "Tracer",
    "build_report",
    "chrome_trace",
    "chrome_trace_events",
    "get_registry",
    "get_tracer",
    "set_registry",
    "set_tracer",
    "use_tracer",
    "write_chrome_trace",
]
