"""Virtual-time tracing: spans, instants, and counter samples.

The simulator's repair pipeline is driven by callbacks, so a span's
lifetime rarely matches a Python call stack: a transfer "begins" when
the manager releases it and "ends" many events later. Spans therefore
work both as context managers (for synchronous regions such as plan
computation) and as explicit handles (``span = tracer.span(...)`` ...
``span.finish()``) for asynchronous lifetimes.

All timestamps come from the *simulated* clock. A tracer is bound to a
simulator with :meth:`Tracer.bind_clock`; re-binding (a new scenario in
the same process) shifts subsequent timestamps past everything recorded
so far, so a multi-run experiment yields one sequential timeline.

Instrumentation sites fetch the process-global tracer via
:func:`get_tracer`. The default is a :class:`NullTracer` whose methods
are no-ops returning shared singletons, so tracing costs almost nothing
unless a run opts in with :func:`set_tracer`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: Track name used when the caller does not care where an event lands.
DEFAULT_TRACK = "default"


class Span:
    """A named interval on the virtual timeline.

    ``end`` stays ``None`` until :meth:`finish`; exporters treat open
    spans as running to the tracer's high-water mark.
    """

    __slots__ = ("tracer", "name", "track", "start", "end", "args")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        track: str | tuple[str, ...],
        start: float,
        args: dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.track = track
        self.start = start
        self.end: float | None = None
        self.args = args

    @property
    def duration(self) -> float:
        """Span length in (virtual) seconds; 0 while still open."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **args: Any) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.args.update(args)
        return self

    def finish(self, **args: Any) -> "Span":
        """Close the span at the current virtual time (idempotent)."""
        if args:
            self.args.update(args)
        if self.end is None:
            self.end = self.tracer.now()
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        state = "open" if self.end is None else f"{self.duration:.3f}s"
        return f"<Span {self.name} @{self.start:.3f} {state}>"


class _NullSpan:
    """Inert span handle shared by every NullTracer call."""

    __slots__ = ()

    duration = 0.0

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def finish(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class InstantEvent:
    """A point event (a decision, a detection, a sample boundary)."""

    __slots__ = ("name", "track", "ts", "args")

    def __init__(self, name: str, track: str, ts: float, args: dict[str, Any]) -> None:
        self.name = name
        self.track = track
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Instant {self.name} @{self.ts:.3f}>"


class CounterSample:
    """One sample of a time-varying quantity (e.g. per-link bandwidth)."""

    __slots__ = ("name", "track", "ts", "value")

    def __init__(self, name: str, track: str, ts: float, value: float) -> None:
        self.name = name
        self.track = track
        self.ts = ts
        self.value = value


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Kept deliberately tiny — instrumentation in hot paths does
    ``tracer = get_tracer()`` followed by ``if tracer.enabled`` or a
    direct method call, and this class makes both nearly free.
    """

    enabled = False

    def bind_clock(self, clock) -> None:
        """No-op (a disabled tracer has no timeline)."""

    def now(self) -> float:
        """Always zero."""
        return 0.0

    def span(self, name: str, track=DEFAULT_TRACK, **args: Any):
        """Return the shared inert span."""
        return NULL_SPAN

    def instant(self, name: str, track: str = DEFAULT_TRACK, **args: Any) -> None:
        """Discard the event."""

    def counter(self, name: str, value: float, track: str = DEFAULT_TRACK) -> None:
        """Discard the sample."""

    @property
    def spans(self) -> tuple:
        return ()

    @property
    def instants(self) -> tuple:
        return ()

    @property
    def counters(self) -> tuple:
        return ()


class Tracer:
    """Recording tracer bound to a virtual clock."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._offset = 0.0
        self._high_water = 0.0
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []

    def bind_clock(self, clock) -> None:
        """Attach a clock source: a callable or anything with ``.now``.

        Binding a *new* clock offsets subsequent timestamps past the
        high-water mark of everything recorded so far, so traces from
        successive scenarios (each starting at virtual t=0) lay out
        sequentially instead of overlapping.
        """
        if callable(clock):
            self._clock = clock
        else:
            self._clock = lambda sim=clock: sim.now
        self._offset = self._high_water

    def now(self) -> float:
        """Current trace timestamp (offset + bound clock)."""
        ts = self._offset + self._clock()
        if ts > self._high_water:
            self._high_water = ts
        return ts

    @property
    def high_water(self) -> float:
        """Largest timestamp handed out so far."""
        return self._high_water

    def span(self, name: str, track=DEFAULT_TRACK, **args: Any) -> Span:
        """Open a span starting now; close it with ``finish()`` / ``with``."""
        span = Span(self, name, track, self.now(), args)
        self.spans.append(span)
        return span

    def instant(self, name: str, track: str = DEFAULT_TRACK, **args: Any) -> InstantEvent:
        """Record a point event at the current virtual time."""
        event = InstantEvent(name, track, self.now(), args)
        self.instants.append(event)
        return event

    def counter(self, name: str, value: float, track: str = DEFAULT_TRACK) -> None:
        """Record one sample of a time-varying quantity."""
        self.counters.append(CounterSample(name, track, self.now(), float(value)))

    # -- queries used by the report builder ---------------------------------

    def spans_named(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def instants_named(self, *names: str) -> list[InstantEvent]:
        """All instant events matching any given name, by timestamp."""
        wanted = set(names)
        return sorted(
            (e for e in self.instants if e.name in wanted), key=lambda e: e.ts
        )


NULL_TRACER = NullTracer()
_tracer: NullTracer | Tracer = NULL_TRACER


def get_tracer() -> NullTracer | Tracer:
    """The process-global tracer (the shared NullTracer by default)."""
    return _tracer


def set_tracer(tracer: NullTracer | Tracer | None):
    """Install ``tracer`` globally (None restores the NullTracer).

    Returns the previously installed tracer so callers can restore it.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(tracer: NullTracer | Tracer) -> Iterator[NullTracer | Tracer]:
    """Temporarily install ``tracer`` (restores the previous one)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
