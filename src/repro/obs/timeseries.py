"""Virtual-time series sampled from counters, histograms, and resources.

PR 1's :class:`~repro.obs.metrics.MetricsRegistry` answers "what happened
over the whole run"; this module answers "what happened *when*". A
:class:`TimeseriesRecorder` rides the simulator clock (via
:meth:`repro.sim.engine.Simulator.every`) and closes a sampling window
every ``window`` seconds of virtual time:

* registered **counters** become per-window *rates* (delta / window);
* **gauges** become point-in-time samples;
* **histograms** become per-window *delta* summaries — count, mean,
  p50/p90/p99 of only the observations that landed inside the window
  (the repair-pipelining literature's argument: repair-time percentiles
  are a first-class timeseries, not a scalar);
* tracked **resources** (links, disks) get per-tag bandwidth
  attribution: the bytes each traffic class (foreground vs
  ``repair`` vs ``scrub``) moved through the resource that window,
  as B/s shares — per resource and aggregated cluster-wide;
* tracked **latency recorders** get exact per-window percentile series
  computed over just the window's samples.

Sampling is strictly read-only: the recorder never calls
``settle_now()`` or mutates any simulation object, so installing it
cannot perturb a run — byte counters are read as-at the last completed
slice, which is itself a deterministic function of the event history.
The determinism contract (verified by the equivalence tests) is:
a run with a recorder installed produces byte-for-byte the same
simulation outcome as a run without one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ReproError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids sim<->obs cycle)
    from repro.metrics.latency import LatencyRecorder
    from repro.sim.engine import PeriodicHook, Simulator
    from repro.sim.resources import Resource

#: Tag under which untagged / miscellaneous traffic is attributed.
FOREGROUND_SHARE = "foreground"

#: Tags broken out of the foreground share (everything else folds into
#: ``foreground``). Order fixes the series layout in exports.
ATTRIBUTED_TAGS = ("repair", "scrub")


@dataclass
class Series:
    """One named virtual-time series: parallel times/values lists."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        """Record one point (``time`` is the window's closing timestamp)."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self.values[-1] if self.values else 0.0

    def max(self) -> float:
        """Largest recorded value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        """Arithmetic mean of the values (0.0 when empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"name": self.name, "times": list(self.times),
                "values": list(self.values)}


@dataclass
class _HistShadow:
    """Cumulative histogram state at the last window close."""

    count: int
    total: float
    zeros: int
    buckets: dict[int, int]


def _window_delta(hist: Histogram, shadow: _HistShadow) -> Histogram:
    """A histogram holding only the observations since ``shadow``.

    Bucket counts subtract exactly (cumulative counts are monotone), so
    the delta's count/mean/quantiles are exact window statistics up to
    the usual geometric-bucket quantile error. The true window min/max
    are not recoverable from cumulative state; the delta's extremes are
    bucket-boundary estimates, good enough for quantile clamping.
    """
    delta = Histogram(hist.name, growth=hist.growth)
    delta.count = hist.count - shadow.count
    delta.total = hist.total - shadow.total
    delta._zeros = hist._zeros - shadow.zeros
    for idx, n in hist._buckets.items():
        d = n - shadow.buckets.get(idx, 0)
        if d:
            delta._buckets[idx] = d
    if delta._buckets:
        low = min(delta._buckets)
        high = max(delta._buckets)
        delta.min = hist.growth ** low
        delta.max = hist.growth ** (high + 1)
    if delta._zeros:
        delta.min = 0.0
    # Never report beyond the cumulative extremes.
    delta.min = max(delta.min, hist.min) if delta.count else delta.min
    delta.max = min(delta.max, hist.max) if delta.count else delta.max
    return delta


class TimeseriesRecorder:
    """Windowed virtual-time sampler for metrics, bandwidth, and latency.

    Construct, register sources (:meth:`track_registry`,
    :meth:`track_resources`, :meth:`track_latency`), then :meth:`start`.
    Every ``window`` virtual seconds a sample fires and appends one
    point per series; :meth:`stop` cancels the clock hook (required
    before driving the simulator with an unbounded ``run()``, which
    would otherwise never drain the queue).
    """

    def __init__(self, sim: Simulator, window: float = 5.0) -> None:
        if window <= 0:
            raise ReproError("timeseries window must be positive")
        self.sim = sim
        self.window = window
        self.series: dict[str, Series] = {}
        self._registry: MetricsRegistry | None = None
        self._counter_last: dict[str, float] = {}
        self._hist_shadow: dict[str, _HistShadow] = {}
        self._resources: list[Resource] = []
        self._resource_last: dict[str, dict[str, float]] = {}
        self._latencies: list[tuple[str, LatencyRecorder, list[float]]] = []
        self._lat_cursor: dict[str, int] = {}
        self._hook: PeriodicHook | None = None
        self.windows_closed = 0
        self._window_opened = sim.now
        self._last_close: float | None = None

    # -- source registration ---------------------------------------------------

    def track_registry(self, registry: MetricsRegistry) -> None:
        """Sample every metric in ``registry`` (including ones created
        after this call — the registry is re-walked at each window)."""
        if not registry.enabled:
            return
        self._registry = registry

    def track_resources(self, resources: list[Resource]) -> None:
        """Record per-tag bandwidth attribution series for ``resources``."""
        for res in resources:
            if res.name in self._resource_last:
                continue
            self._resources.append(res)
            self._resource_last[res.name] = dict(res.bytes_by_tag)

    def track_latency(self, recorder: LatencyRecorder,
                      name: str | None = None,
                      percentiles: tuple[float, ...] = (50.0, 99.0)) -> None:
        """Record exact per-window latency percentiles from ``recorder``."""
        key = name if name is not None else recorder.name
        if key in self._lat_cursor:
            raise ReproError(f"latency source {key!r} already tracked")
        self._lat_cursor[key] = len(recorder.samples)
        self._latencies.append((key, recorder, list(percentiles)))

    # -- lifecycle -------------------------------------------------------------

    @property
    def started(self) -> bool:
        """True while the clock hook is live."""
        return self._hook is not None and not self._hook.cancelled

    def start(self) -> None:
        """Install the periodic sampling hook on the simulator clock."""
        if self.started:
            raise ReproError("timeseries recorder already started")
        self._window_opened = self.sim.now
        self._hook = self.sim.every(self.window, self.sample)

    def stop(self) -> None:
        """Cancel the hook; close one final partial window if non-empty.

        The final window spans only ``now - last close``, so its rates
        are scaled by the actual elapsed span (see :meth:`sample`), not
        diluted over a full ``window``.
        """
        if self._hook is not None:
            self._hook.cancel()
            self._hook = None
            if self.sim.now > self._window_opened:
                self.sample()

    # -- sampling --------------------------------------------------------------

    def _series(self, name: str) -> Series:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = Series(name)
        return series

    def sample(self) -> None:
        """Close the current window (normally driven by the clock hook).

        Rates (counter deltas, bandwidth shares) are divided by the
        window's *actual* span — the virtual time since the previous
        close — so a partial final window (or a manual mid-window
        ``sample()``) reports true rates instead of deltas diluted over
        the full configured ``window``. A zero-span call is a no-op:
        there is no window to close.
        """
        now = self.sim.now
        span = now - self._window_opened
        if span <= 0:
            return
        self._window_opened = now
        self._last_close = now
        self.windows_closed += 1
        if self._registry is not None:
            self._sample_registry(now, span)
        self._sample_resources(now, span)
        self._sample_latencies(now)

    def _sample_registry(self, now: float, span: float) -> None:
        for metric in self._registry:
            if isinstance(metric, Counter):
                last = self._counter_last.get(metric.name, 0.0)
                self._counter_last[metric.name] = metric.value
                self._series(f"rate.{metric.name}").append(
                    now, (metric.value - last) / span
                )
            elif isinstance(metric, Gauge):
                self._series(f"gauge.{metric.name}").append(now, metric.value)
            elif isinstance(metric, Histogram):
                shadow = self._hist_shadow.get(metric.name)
                if shadow is None:
                    shadow = _HistShadow(0, 0.0, 0, {})
                delta = _window_delta(metric, shadow)
                self._hist_shadow[metric.name] = _HistShadow(
                    metric.count, metric.total, metric._zeros,
                    dict(metric._buckets),
                )
                base = f"hist.{metric.name}"
                self._series(f"{base}.count").append(now, delta.count)
                self._series(f"{base}.mean").append(now, delta.mean)
                self._series(f"{base}.p50").append(now, delta.p50)
                self._series(f"{base}.p90").append(now, delta.p90)
                self._series(f"{base}.p99").append(now, delta.p99)

    def _sample_resources(self, now: float, span: float) -> None:
        totals = {tag: 0.0 for tag in (*ATTRIBUTED_TAGS, FOREGROUND_SHARE)}
        for res in self._resources:
            last = self._resource_last[res.name]
            shares = {tag: 0.0 for tag in totals}
            for tag, cum in res.bytes_by_tag.items():
                delta = cum - last.get(tag, 0.0)
                bucket = tag if tag in ATTRIBUTED_TAGS else FOREGROUND_SHARE
                shares[bucket] += delta
            self._resource_last[res.name] = dict(res.bytes_by_tag)
            for bucket, nbytes in shares.items():
                bw = nbytes / span
                totals[bucket] += bw
                self._series(f"bw.{res.name}.{bucket}").append(now, bw)
        if self._resources:
            for bucket, bw in totals.items():
                self._series(f"bw.total.{bucket}").append(now, bw)

    def _sample_latencies(self, now: float) -> None:
        for key, recorder, percentiles in self._latencies:
            cursor = self._lat_cursor[key]
            fresh = recorder.samples[cursor:]
            self._lat_cursor[key] = len(recorder.samples)
            self._series(f"lat.{key}.count").append(now, len(fresh))
            for q in percentiles:
                label = f"p{q:g}".replace(".", "_")
                value = float(np.percentile(fresh, q)) if fresh else 0.0
                self._series(f"lat.{key}.{label}").append(now, value)

    # -- views -----------------------------------------------------------------

    @property
    def last_close(self) -> float | None:
        """Virtual timestamp of the most recently closed window (None
        before any window has closed). Live-readable mid-run: a
        runtime consumer (the admission controller) compares this
        against its own bookkeeping to act exactly once per window."""
        return self._last_close

    def latest(self, name: str, default: float = 0.0) -> float:
        """Last closed-window value of ``name`` (``default`` when the
        series was never recorded or is still empty).

        The live-read API: unlike :meth:`get`, a missing series is not
        an error — mid-run consumers ask about windows that may simply
        not have produced that series yet.
        """
        series = self.series.get(name)
        if series is None or not series.values:
            return default
        return series.values[-1]

    def get(self, name: str) -> Series:
        """The named series (raises when it was never recorded)."""
        try:
            return self.series[name]
        except KeyError:
            raise ReproError(
                f"no timeseries {name!r}; recorded: {sorted(self.series)[:20]}"
            ) from None

    def names(self) -> list[str]:
        """All recorded series names, sorted."""
        return sorted(self.series)

    def to_dict(self, prefix: str | None = None) -> dict:
        """JSON-serialisable dump of every series (optionally filtered)."""
        return {
            name: series.to_dict()
            for name, series in sorted(self.series.items())
            if prefix is None or name.startswith(prefix)
        }


__all__ = [
    "ATTRIBUTED_TAGS",
    "FOREGROUND_SHARE",
    "Series",
    "TimeseriesRecorder",
]
