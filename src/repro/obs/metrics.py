"""Counters, gauges, and streaming histograms sampled in virtual time.

The histogram keeps geometric buckets instead of raw samples, so
quantiles (p50/p99) cost O(buckets) memory regardless of how many
observations a run produces — the same trick HdrHistogram and DDSketch
use. With the default growth factor every estimate lands within ~2.5%
relative error of the exact order statistic.

Like the tracer, the registry has a process-global slot with a null
implementation installed by default; instrumentation sites pay only a
function call and an attribute check when metrics are disabled.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import ReproError

#: Default geometric bucket growth; relative quantile error <= sqrt(growth)-1.
DEFAULT_GROWTH = 1.05


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)


class Histogram:
    """Streaming distribution summary with geometric buckets.

    Positive observations land in bucket ``floor(log(v) / log(growth))``;
    zero and negative observations are counted separately and treated as
    exact zeros (durations and byte counts never go below zero, so this
    keeps the common path cheap).
    """

    __slots__ = ("name", "growth", "_log_growth", "_buckets", "_zeros",
                 "count", "total", "min", "max")

    def __init__(self, name: str, growth: float = DEFAULT_GROWTH) -> None:
        if growth <= 1.0:
            raise ReproError("histogram growth factor must exceed 1")
        self.name = name
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0:
            self._zeros += 1
            return
        idx = math.floor(math.log(value) / self._log_growth)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (q in [0, 1])."""
        if not 0 <= q <= 1:
            raise ReproError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._zeros:
            return min(self.min, 0.0)
        seen = self._zeros
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # Geometric midpoint of [growth^idx, growth^(idx+1)),
                # clamped to the exact extremes we kept on the side.
                mid = self.growth ** (idx + 0.5)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always hits

    @property
    def p50(self) -> float:
        """Median estimate."""
        return self.quantile(0.5)

    @property
    def p90(self) -> float:
        """90th-percentile estimate."""
        return self.quantile(0.9)

    @property
    def p99(self) -> float:
        """99th-percentile estimate."""
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        """99.9th-percentile estimate (the deep-tail SLO percentile)."""
        return self.quantile(0.999)

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram, in place.

        Both histograms must share the same growth factor (their bucket
        boundaries coincide, so bucket counts add exactly). Merging is
        associative and commutative up to floating-point addition of the
        totals, which makes cross-shard aggregation order-insensitive.
        """
        if other.growth != self.growth:
            raise ReproError(
                f"cannot merge histograms with different growth factors "
                f"({self.growth} vs {other.growth})"
            )
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self._zeros += other._zeros
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max


class _NullMetric:
    """Shared sink for disabled registries."""

    __slots__ = ()

    name = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0
    p50 = 0.0
    p90 = 0.0
    p99 = 0.0
    p999 = 0.0
    min = 0.0
    max = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def merge(self, other) -> None:
        pass


NULL_METRIC = _NullMetric()


class NullMetricsRegistry:
    """Disabled registry: hands out the shared inert metric."""

    enabled = False

    def counter(self, name: str):
        return NULL_METRIC

    def gauge(self, name: str):
        return NULL_METRIC

    def histogram(self, name: str, growth: float = DEFAULT_GROWTH):
        return NULL_METRIC

    def snapshot(self) -> dict:
        return {}

    def __iter__(self) -> Iterator:
        return iter(())


class MetricsRegistry:
    """Named metric store with get-or-create accessors."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        return self._get(name, Gauge)

    def histogram(self, name: str, growth: float = DEFAULT_GROWTH) -> Histogram:
        """Get or create the named histogram."""
        return self._get(name, Histogram, growth)

    def snapshot(self) -> dict:
        """Plain-dict view of every metric (for reports and JSON dumps)."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = {"type": "counter", "value": metric.value}
            elif isinstance(metric, Gauge):
                out[name] = {"type": "gauge", "value": metric.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "mean": metric.mean,
                    "p50": metric.p50,
                    "p90": metric.p90,
                    "p99": metric.p99,
                    "p999": metric.p999,
                    "min": metric.min if metric.count else 0.0,
                    "max": metric.max if metric.count else 0.0,
                }
        return out

    def __iter__(self) -> Iterator:
        return iter(self._metrics.values())


NULL_REGISTRY = NullMetricsRegistry()
_registry: NullMetricsRegistry | MetricsRegistry = NULL_REGISTRY


def get_registry() -> NullMetricsRegistry | MetricsRegistry:
    """The process-global metrics registry (null by default)."""
    return _registry


def set_registry(registry: NullMetricsRegistry | MetricsRegistry | None):
    """Install ``registry`` globally (None restores the null registry).

    Returns the previously installed registry.
    """
    global _registry
    previous = _registry
    _registry = registry if registry is not None else NULL_REGISTRY
    return previous
