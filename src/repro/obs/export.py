"""Chrome trace-event JSON export (Perfetto / chrome://tracing).

Maps the tracer's records onto the legacy trace-event format:

* every distinct *track* (a node resource such as ``n3.up``, or a
  logical lane like ``scheduler`` / ``tasks``) becomes one named thread
  of a single ``repro-sim`` process, so the viewer shows one row per
  node uplink/downlink/disk;
* spans become complete (``"ph": "X"``) events — a span recorded on
  several tracks (a flow crossing disk + uplink + downlink) is emitted
  once per track;
* instants become ``"ph": "i"`` events, counter samples ``"ph": "C"``
  (rendered as a line chart per track).

Timestamps are virtual-time seconds scaled to the microseconds the
format requires; the event list is sorted by timestamp, so every track's
``ts`` sequence is monotone.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import Tracer

_PID = 1
_PROCESS_NAME = "repro-sim"


def _us(seconds: float) -> int:
    """Virtual seconds -> integer microseconds."""
    return int(round(seconds * 1e6))


def _jsonable(args: dict[str, Any]) -> dict[str, Any]:
    """Coerce span/instant attributes into JSON-safe values."""
    out = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, dict):
            out[key] = {str(k): _jsonable({"v": v})["v"] for k, v in value.items()}
        elif isinstance(value, (list, tuple, set, frozenset)):
            out[key] = [_jsonable({"v": v})["v"] for v in value]
        else:
            out[key] = str(value)
    return out


def _span_tracks(track) -> tuple[str, ...]:
    return (track,) if isinstance(track, str) else tuple(track)


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` array for the tracer's records."""
    tracks: set[str] = set()
    for span in tracer.spans:
        tracks.update(_span_tracks(span.track))
    for event in tracer.instants:
        tracks.add(event.track)
    for sample in tracer.counters:
        tracks.add(sample.track)

    # Stable thread ids: logical lanes first, then node resources sorted
    # by name so n3.up / n3.down / n3.dread / n3.dwrite group together.
    def _track_key(name: str) -> tuple:
        return (name.startswith(("n", "rack", "client")), name)

    tid_of = {name: tid for tid, name in enumerate(sorted(tracks, key=_track_key))}

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": _PROCESS_NAME},
        }
    ]
    for name, tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )

    timed: list[dict] = []
    for span in tracer.spans:
        end = span.end if span.end is not None else tracer.high_water
        args = _jsonable(span.args)
        for track in _span_tracks(span.track):
            timed.append(
                {
                    "name": span.name,
                    "cat": track,
                    "ph": "X",
                    "ts": _us(span.start),
                    "dur": max(_us(end) - _us(span.start), 0),
                    "pid": _PID,
                    "tid": tid_of[track],
                    "args": args,
                }
            )
    for event in tracer.instants:
        timed.append(
            {
                "name": event.name,
                "cat": event.track,
                "ph": "i",
                "s": "t",
                "ts": _us(event.ts),
                "pid": _PID,
                "tid": tid_of[event.track],
                "args": _jsonable(event.args),
            }
        )
    for sample in tracer.counters:
        timed.append(
            {
                "name": sample.name,
                "cat": sample.track,
                "ph": "C",
                "ts": _us(sample.ts),
                "pid": _PID,
                "tid": tid_of[sample.track],
                "args": {"value": sample.value},
            }
        )
    timed.sort(key=lambda e: (e["ts"], e["tid"]))
    events.extend(timed)
    return events


def chrome_trace(tracer: Tracer) -> dict:
    """The complete trace document (``json.dump``-ready)."""
    return {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    document = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, separators=(",", ":"))
    return len(document["traceEvents"])
