"""Plain-text run reports assembled from a tracer's records.

Mirrors the measurements the paper's evaluation leans on: a per-phase
time/throughput breakdown (Exp#11's decomposition), the slowest repair
tasks (the straggler tail), and the scheduler's decision log (which plan
Algorithm 1 picked, when a straggler was detected, how it was re-tuned).
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Scheduler decision events shown in the log section, in one place so
#: the report and the instrumentation sites cannot drift apart.
DECISION_EVENTS = (
    "plan.chosen",
    "straggler.detected",
    "plan.retuned",
    "plan.reordered",
)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _table(headers: list[str], rows: list[list]) -> list[str]:
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return lines


def _args_brief(args: dict, limit: int = 4) -> str:
    parts = []
    for key, value in args.items():
        if isinstance(value, (list, tuple, set, frozenset, dict)):
            continue  # keep the log line scannable
        parts.append(f"{key}={_fmt(value)}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


def build_report(
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
    *,
    top_n: int = 10,
    max_decisions: int = 40,
) -> str:
    """Render the run report for everything the tracer observed."""
    lines: list[str] = ["=== Run report ==="]

    runs = tracer.spans_named("experiment.run")
    if runs:
        lines.append("")
        lines.append("Runs")
        rows = []
        for span in runs:
            rows.append(
                [
                    span.args.get("algorithm", "?"),
                    span.args.get("trace", "?"),
                    span.duration,
                    span.args.get("repair_time", span.duration),
                    span.args.get("chunks", "-"),
                ]
            )
        lines.extend(
            _table(["algorithm", "trace", "span s", "repair s", "chunks"], rows)
        )

    phases = tracer.spans_named("phase")
    if phases:
        lines.append("")
        lines.append("Per-phase breakdown")
        rows = []
        for span in phases:
            rows.append(
                [
                    span.args.get("index", "-"),
                    span.start,
                    span.duration,
                    span.args.get("admitted", "-"),
                    span.args.get("completed", "-"),
                    span.args.get("retunes", 0),
                    span.args.get("reorders", 0),
                ]
            )
        lines.extend(
            _table(
                ["phase", "start s", "length s", "admitted", "completed",
                 "retunes", "reorders"],
                rows,
            )
        )

    tasks = [s for s in tracer.spans_named("repair.task") if s.end is not None]
    if tasks:
        lines.append("")
        lines.append(f"Slowest repair tasks (top {min(top_n, len(tasks))})")
        tasks.sort(key=lambda s: s.duration, reverse=True)
        rows = []
        for span in tasks[:top_n]:
            rows.append(
                [
                    str(span.args.get("chunk", "?")),
                    span.args.get("destination", "-"),
                    span.start,
                    span.duration,
                    span.args.get("status", "done"),
                ]
            )
        lines.extend(
            _table(["chunk", "dest", "start s", "duration s", "status"], rows)
        )

    decisions = tracer.instants_named(*DECISION_EVENTS)
    if decisions:
        lines.append("")
        shown = decisions[:max_decisions]
        lines.append(f"Scheduler decisions ({len(shown)} of {len(decisions)})")
        for event in shown:
            lines.append(
                f"  [{event.ts:10.3f}s] {event.name:<20} {_args_brief(event.args)}"
            )

    if registry is not None and registry.enabled:
        snapshot = registry.snapshot()
        if snapshot:
            lines.append("")
            lines.append("Metrics")
            rows = []
            for name, data in snapshot.items():
                if data["type"] == "histogram":
                    rows.append(
                        [name, "histogram",
                         f"n={data['count']} mean={_fmt(data['mean'])} "
                         f"p50={_fmt(data['p50'])} p99={_fmt(data['p99'])} "
                         f"p999={_fmt(data['p999'])}"]
                    )
                else:
                    rows.append([name, data["type"], _fmt(data["value"])])
            lines.extend(_table(["metric", "type", "value"], rows))

    if len(lines) == 1:
        lines.append("(no observations recorded)")
    return "\n".join(lines)
