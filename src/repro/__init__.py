"""repro — a reproduction of ChameleonEC (HPCA 2025).

ChameleonEC exploits the tunability of erasure coding for
low-interference repair: it decomposes repair plans into upload/download
tasks dispatched on idle bandwidth, establishes tunable transmission
paths (Algorithm 1), and re-schedules around stragglers.

Quick start::

    from repro import (
        Cluster, RSCode, place_stripes, FailureInjector,
        BandwidthMonitor, ChameleonRepair, MB,
    )

    cluster = Cluster(num_nodes=20, num_clients=4)
    code = RSCode(10, 4)
    store = place_stripes(code, 200, cluster.storage_ids, chunk_size=64 * MB)
    injector = FailureInjector(cluster, store)
    report = injector.fail_nodes([0])
    monitor = BandwidthMonitor(cluster)
    monitor.start()
    chameleon = ChameleonRepair(
        cluster, store, injector, monitor,
        chunk_size=64 * MB, slice_size=1 * MB,
    )
    chameleon.repair(report.failed_chunks)
    while not chameleon.done:
        cluster.sim.run(until=cluster.sim.now + 10.0)
    print(chameleon.meter.throughput / 1e6, "MB/s")
"""

from repro.analysis import ReliabilityModel, loss_probability_curve
from repro.api import ShardRouter, Testbed, TestbedBuilder
from repro.cluster import (
    GB,
    KB,
    MB,
    ChunkId,
    Cluster,
    FailureInjector,
    FailureReport,
    Node,
    Stripe,
    StripeStore,
    gbps,
    mbs,
    place_stripes,
)
from repro.codes import (
    ButterflyCode,
    ErasureCode,
    LRCCode,
    RSCode,
    RepairEquation,
    make_code,
)
from repro.control import AdmissionController, AIMDPolicy
from repro.core import ChameleonRepair, ChameleonRepairIO
from repro.errors import (
    CodingError,
    ConvergenceError,
    PlanError,
    ReproError,
    SchedulingError,
    SimulationError,
)
from repro.events import HookEmitter
from repro.experiments.config import ExperimentConfig
from repro.faults import (
    BandwidthDegradation,
    CoordinatorCrash,
    FaultEvent,
    FaultTimeline,
    FlowInterruption,
    LatentSectorError,
    NetworkPartition,
    NodeCrash,
    SilentCorruption,
    ToleranceExceeded,
    TransientStraggler,
)
from repro.integrity import (
    IntegrityLedger,
    IntegrityRecord,
    Scrubber,
    payload_checksum,
)
from repro.journal import (
    Journal,
    JournalRecord,
    JournalShard,
    JournalState,
    Lease,
    RecoveryPlan,
    audit_fenced_writes,
    reconcile,
)
from repro.metrics import (
    LatencyRecorder,
    LinkStatsCollector,
    RepairThroughputMeter,
    interference_degree,
)
from repro.monitor import BandwidthMonitor, FailureDetector, ProgressTracker
from repro.obs import (
    MetricsRegistry,
    Series,
    TimeseriesRecorder,
    Tracer,
    build_report,
    get_tracer,
    set_tracer,
    use_tracer,
    write_chrome_trace,
)
from repro.repair import (
    ConventionalRepair,
    ECPipe,
    HedgePolicy,
    PPR,
    RepairBoost,
    RepairPlan,
    RepairRunner,
    execute_plan,
)
from repro.sim import Simulator
from repro.slo import (
    RunTelemetry,
    SLOBreach,
    SLOEvaluator,
    SLOReport,
    SLOSpec,
    SLOVerdict,
)
from repro.traffic import (
    KeyRouter,
    TraceClient,
    TransitioningTrace,
    launch_clients,
    make_trace,
    ycsb_a,
)

__version__ = "0.1.0"

# The frozen public surface (tested by tests/test_public_api.py): a
# tuple so nothing can append to it at runtime. Additions are API
# decisions — make them here, deliberately, together with that test.
__all__ = (
    "GB",
    "KB",
    "MB",
    "AdmissionController",
    "AIMDPolicy",
    "BandwidthDegradation",
    "BandwidthMonitor",
    "ButterflyCode",
    "ChameleonRepair",
    "ChameleonRepairIO",
    "ChunkId",
    "Cluster",
    "CodingError",
    "ConventionalRepair",
    "ConvergenceError",
    "CoordinatorCrash",
    "ECPipe",
    "ErasureCode",
    "ExperimentConfig",
    "FailureDetector",
    "FailureInjector",
    "FailureReport",
    "FaultEvent",
    "FaultTimeline",
    "FlowInterruption",
    "HedgePolicy",
    "HookEmitter",
    "IntegrityLedger",
    "IntegrityRecord",
    "Journal",
    "JournalRecord",
    "JournalShard",
    "JournalState",
    "KeyRouter",
    "LRCCode",
    "LatencyRecorder",
    "LatentSectorError",
    "Lease",
    "LinkStatsCollector",
    "NetworkPartition",
    "Node",
    "NodeCrash",
    "PPR",
    "PlanError",
    "ProgressTracker",
    "RecoveryPlan",
    "ReliabilityModel",
    "RepairBoost",
    "RepairEquation",
    "RepairPlan",
    "RepairRunner",
    "RepairThroughputMeter",
    "ReproError",
    "RSCode",
    "RunTelemetry",
    "SchedulingError",
    "Scrubber",
    "Series",
    "ShardRouter",
    "SilentCorruption",
    "SimulationError",
    "Simulator",
    "SLOBreach",
    "SLOEvaluator",
    "SLOReport",
    "SLOSpec",
    "SLOVerdict",
    "Stripe",
    "StripeStore",
    "TimeseriesRecorder",
    "Testbed",
    "TestbedBuilder",
    "ToleranceExceeded",
    "TraceClient",
    "TransientStraggler",
    "TransitioningTrace",
    "audit_fenced_writes",
    "execute_plan",
    "gbps",
    "interference_degree",
    "launch_clients",
    "loss_probability_curve",
    "make_code",
    "make_trace",
    "mbs",
    "payload_checksum",
    "place_stripes",
    "reconcile",
    "ycsb_a",
)
