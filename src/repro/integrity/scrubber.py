"""Background scrubbing: paced, contending, checksum-verifying scans.

A :class:`Scrubber` walks every stored chunk in deterministic order at a
configurable byte rate. Each scan issues a *real* transfer through the
simulator — the chunk's disk read, its node's uplink, and the verifier
node's downlink — so scrub traffic contends with foreground YCSB I/O
and repair flows on exactly the shared resources the paper's
interference story is about. Verification itself (recomputing the CRC)
costs zero virtual time; the *price* of scrubbing is the traffic.

Pacing is closed-loop: one scrub transfer in flight at a time, and the
next one starts no earlier than ``chunk_size / rate`` after the previous
one started. Under contention the transfer itself becomes the
bottleneck and the effective scan rate degrades gracefully — just like
a real scrubber losing its I/O budget to foreground load.

A failed verification quarantines the chunk (removing it from every
planner's helper candidates) and hands it to the attached repairer(s)
through the same ``add_chunks()`` adoption path crash recovery uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.events import HookEmitter
from repro.metrics.linkstats import SCRUB_TAG
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.datastore import ChunkStore
    from repro.cluster.failures import FailureInjector
    from repro.cluster.stripes import ChunkId, StripeStore
    from repro.cluster.topology import Cluster
    from repro.integrity.ledger import IntegrityLedger


class Scrubber(HookEmitter):
    """Virtual-clock-driven background integrity scanner."""

    HOOK_EVENTS = (
        "chunk_scrubbed",
        "corruption_detected",
        "pass_complete",
    )

    def __init__(
        self,
        cluster: "Cluster",
        stripe_store: "StripeStore",
        chunk_store: "ChunkStore",
        injector: "FailureInjector",
        *,
        rate: float,
        slice_size: float | None = None,
        ledger: "IntegrityLedger | None" = None,
        passes: int | None = None,
    ) -> None:
        """``rate`` is the target scan throughput in bytes of chunk data
        per second of virtual time; ``passes`` bounds the number of full
        scans (None = scrub until :meth:`stop`).
        """
        super().__init__()
        if rate <= 0:
            raise SimulationError("scrub rate must be positive")
        if passes is not None and passes < 1:
            raise SimulationError("scrub passes must be >= 1 (or None)")
        self.cluster = cluster
        self.stripe_store = stripe_store
        self.chunk_store = chunk_store
        self.injector = injector
        self.rate = float(rate)
        self.slice_size = slice_size or stripe_store.chunk_size
        self.ledger = ledger
        self.max_passes = passes
        self.repairers: list = []
        #: ``id(repairer) -> shard`` for shard-bound drivers (absent or
        #: ``None`` = unsharded: receives every detection).
        self._shards: dict[int, int | None] = {}
        #: Optional :class:`repro.api.ShardRouter`; with one installed,
        #: detections are routed only to the owning shard's driver.
        self.router = None
        self.detected: list["ChunkId"] = []
        self.chunks_scanned = 0
        self.passes_completed = 0
        self._interval = stripe_store.chunk_size / self.rate
        self._queue: list["ChunkId"] = []
        self._verifier_rr = 0
        self._running = False
        self._started = False

    def attach(self, repairer, *, shard: int | None = None) -> None:
        """Detected corruptions are enqueued to this repair driver.

        ``shard`` marks the driver as owning one control-plane
        partition: with a router installed it only receives detections
        its shard owns (unsharded drivers always receive everything).
        """
        self.repairers.append(repairer)
        self._shards[id(repairer)] = shard

    def set_rate(self, rate: float) -> None:
        """Retarget the scan throughput (bytes of chunk data per second).

        Recomputes the pacing interval, so the *next* scan — including
        the one queued behind the current in-flight transfer — is paced
        at the new rate. The in-flight transfer itself is untouched.
        This is the actuator the admission controller turns; it is also
        the correctness fix for anyone mutating ``rate`` directly, which
        previously left the interval frozen at its construction value.
        """
        if rate <= 0:
            raise SimulationError("scrub rate must be positive")
        self.rate = float(rate)
        self._interval = self.stripe_store.chunk_size / self.rate

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Begin scrubbing now (virtual time)."""
        if self._started:
            raise SimulationError("scrubber already started")
        self._started = True
        self._running = True
        self.cluster.sim.schedule(0.0, self._issue_next)

    def stop(self) -> None:
        """Stop after the in-flight scrub (idempotent)."""
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    # -- the scan loop ---------------------------------------------------------

    def _next_chunk(self) -> "ChunkId | None":
        """Pop the next scannable chunk, refilling on wrap-around."""
        while True:
            if not self._queue:
                if self.chunks_scanned:
                    self.passes_completed += 1
                    registry = get_registry()
                    if registry.enabled:
                        registry.counter("scrub.passes").inc()
                    self.emit(
                        "pass_complete", self, passes=self.passes_completed
                    )
                    if (
                        self.max_passes is not None
                        and self.passes_completed >= self.max_passes
                    ):
                        self._running = False
                        return None
                self._queue = list(self.chunk_store.chunks())
                self._queue.reverse()  # pop() from the end = scan in order
                if not self._queue:
                    return None
            chunk = self._queue.pop()
            if not self.chunk_store.has(chunk):
                continue  # lost to a crash since the pass began
            if self.injector.is_quarantined(chunk):
                continue  # already known bad; repair is in flight
            node_id = self.stripe_store.stripes[chunk.stripe].node_of(chunk.index)
            if not self.cluster.node(node_id).alive:
                continue  # unreachable; the crash path owns this chunk
            return chunk

    def _pick_verifier(self, src_id: int) -> int | None:
        """Round-robin over alive storage nodes other than the source."""
        candidates = [n for n in self.cluster.alive_storage_ids() if n != src_id]
        if not candidates:
            return None
        verifier = candidates[self._verifier_rr % len(candidates)]
        self._verifier_rr += 1
        return verifier

    def _issue_next(self) -> None:
        if not self._running:
            return
        chunk = self._next_chunk()
        if chunk is None:
            if self._running:
                # Nothing scannable right now; retry one interval later.
                self.cluster.sim.schedule(self._interval, self._issue_next)
            return
        issued_at = self.cluster.sim.now
        src_id = self.stripe_store.stripes[chunk.stripe].node_of(chunk.index)
        verifier = self._pick_verifier(src_id)
        if verifier is None:
            # Degenerate cluster: verify locally, still paced.
            self._verify(chunk)
            self._schedule_next(issued_at)
            return
        transfer = self.cluster.make_transfer(
            src_id,
            verifier,
            self.stripe_store.chunk_size,
            self.slice_size,
            tag=SCRUB_TAG,
            read_disk=True,
            name=f"scrub-{chunk}",
        )
        transfer.on_complete.append(
            lambda _t, c=chunk, t0=issued_at: self._scan_done(c, t0)
        )
        transfer.on_failed.append(
            lambda _t, _reason, t0=issued_at: self._schedule_next(t0)
        )
        self.cluster.start(transfer)

    def _scan_done(self, chunk: "ChunkId", issued_at: float) -> None:
        self._verify(chunk)
        self._schedule_next(issued_at)

    def _schedule_next(self, issued_at: float) -> None:
        if not self._running:
            return
        next_at = issued_at + self._interval
        delay = max(0.0, next_at - self.cluster.sim.now)
        self.cluster.sim.schedule(delay, self._issue_next)

    # -- verification ----------------------------------------------------------

    def _verify(self, chunk: "ChunkId") -> None:
        if not self.chunk_store.has(chunk):
            return  # lost to a crash while the scrub was in flight
        if self.injector.is_quarantined(chunk):
            return  # another detector beat us to it; repair is in flight
        self.chunks_scanned += 1
        sound = self.chunk_store.verify(chunk)
        registry = get_registry()
        if registry.enabled:
            registry.counter("scrub.chunks_scanned").inc()
            registry.counter("scrub.bytes_read").inc(self.stripe_store.chunk_size)
        self.emit("chunk_scrubbed", self, chunk=chunk, sound=sound)
        if sound:
            return
        self.detected.append(chunk)
        self.injector.quarantine(chunk)
        if self.ledger is not None:
            self.ledger.record_detection(chunk, "scrub")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "scrub.detection",
                track="faults",
                stripe=chunk.stripe,
                index=chunk.index,
            )
        if registry.enabled:
            registry.counter("scrub.detected").inc()
        self.emit("corruption_detected", self, chunk=chunk)
        for repairer in self.repairers:
            if not getattr(repairer, "_started", False):
                continue
            shard = self._shards.get(id(repairer))
            # Shard-bound drivers only adopt detections their shard
            # owns; handing the chunk to a sibling too would double-
            # repair it under two coordinators.
            if (
                shard is not None
                and self.router is not None
                and self.router.shard_of(chunk) != shard
            ):
                continue
            repairer.add_chunks([chunk])
