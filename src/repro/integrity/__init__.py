"""End-to-end data integrity (``repro.integrity``).

Checksums make silent corruption detectable; the background scrubber
makes detection *timely* (at the cost of scrub traffic contending with
foreground I/O); verified repair makes reconstruction trustworthy (a
corrupted helper is swapped out and the plan rebuilt through the same
candidate machinery ChameleonEC uses for stragglers).
"""

from repro.integrity.checksum import payload_checksum
from repro.integrity.ledger import IntegrityLedger, IntegrityRecord
from repro.integrity.scrubber import Scrubber

__all__ = [
    "IntegrityLedger",
    "IntegrityRecord",
    "Scrubber",
    "payload_checksum",
]
