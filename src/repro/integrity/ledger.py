"""Bookkeeping for the corruption lifecycle: injected → detected → restored.

The ledger is the experiment's measuring instrument. Fault injection
records when each chunk went bad (wired to the timeline's ``corrupted``
/ ``sector_error`` hooks); detectors — the scrubber, verified repair,
verified degraded reads — record when and how the damage was caught;
verified write-backs record restoration. Detection latency (detect time
minus inject time) is the headline metric of ``exp15_scrub``.

All timestamps are virtual-clock seconds. The ledger never *causes*
anything — quarantining and re-repair are the detectors' job — it only
remembers, so tests and experiments can assert "every injected
corruption was detected" without scraping hooks themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.stripes import ChunkId
    from repro.faults.timeline import FaultTimeline
    from repro.sim.engine import Simulator


@dataclass
class IntegrityRecord:
    """One chunk's trip through the corruption lifecycle."""

    chunk: "ChunkId"
    kind: str  #: "corruption" or "sector_error"
    injected_at: float
    detected_at: float | None = None
    detected_by: str | None = None  #: "scrub", "repair", or "degraded_read"
    restored_at: float | None = None

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def detection_latency(self) -> float | None:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at


@dataclass
class IntegrityLedger:
    """Virtual-time record of every injection, detection, and restoration."""

    sim: "Simulator"
    records: dict["ChunkId", IntegrityRecord] = field(default_factory=dict)
    #: Detections with no matching injection (should stay empty: a
    #: checksum can only fail after something damaged the bytes).
    unexplained: list["ChunkId"] = field(default_factory=list)

    def attach(self, timeline: "FaultTimeline") -> None:
        """Subscribe to a fault timeline's corruption hooks."""
        timeline.on(
            "corrupted",
            lambda _t, chunk, positions: self.record_injection(chunk, "corruption"),
        )
        timeline.on(
            "sector_error",
            lambda _t, chunk: self.record_injection(chunk, "sector_error"),
        )

    def record_injection(self, chunk: "ChunkId", kind: str) -> None:
        """A fault damaged ``chunk`` now (re-damage keeps the first record)."""
        if chunk not in self.records:
            self.records[chunk] = IntegrityRecord(
                chunk=chunk, kind=kind, injected_at=self.sim.now
            )

    def record_detection(self, chunk: "ChunkId", by: str) -> None:
        """A detector caught ``chunk``'s damage now (first detection wins)."""
        record = self.records.get(chunk)
        if record is None:
            self.unexplained.append(chunk)
            return
        if record.detected_at is None:
            record.detected_at = self.sim.now
            record.detected_by = by

    def record_restoration(self, chunk: "ChunkId") -> None:
        """A verified repair restored ``chunk``'s bytes now."""
        record = self.records.get(chunk)
        if record is not None and record.restored_at is None:
            record.restored_at = self.sim.now

    # -- queries ---------------------------------------------------------------

    @property
    def injected(self) -> list[IntegrityRecord]:
        return list(self.records.values())

    @property
    def detected(self) -> list[IntegrityRecord]:
        return [r for r in self.records.values() if r.detected]

    @property
    def undetected(self) -> list[IntegrityRecord]:
        return [r for r in self.records.values() if not r.detected]

    @property
    def restored(self) -> list[IntegrityRecord]:
        return [r for r in self.records.values() if r.restored_at is not None]

    def detection_latencies(self) -> list[float]:
        """Latency of every detected record, in detection order."""
        detected = sorted(self.detected, key=lambda r: r.detected_at)
        return [r.detection_latency for r in detected]

    def summary(self) -> dict[str, float]:
        """Aggregate counts + mean/max detection latency (for reports)."""
        latencies = self.detection_latencies()
        return {
            "injected": len(self.records),
            "detected": len(self.detected),
            "restored": len(self.restored),
            "unexplained": len(self.unexplained),
            "mean_detection_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max_detection_latency": max(latencies) if latencies else 0.0,
        }
