"""Chunk checksums: the metadata that makes silent corruption loud.

Real EC systems store a small per-chunk checksum (HDFS block CRCs, Ceph
deep-scrub digests) next to the data and recompute it on every read,
scrub pass, and repair write-back. A mismatch is the *only* signal a
silently flipped bit ever produces — the disk read succeeds, the bytes
are just wrong. We use CRC-32 over the payload bytes; the cost model is
irrelevant here (verification happens in zero virtual time — the timing
cost of a scrub is the simulated disk/network traffic that carries the
bytes to the verifier, see :mod:`repro.integrity.scrubber`).
"""

from __future__ import annotations

import zlib

import numpy as np


def payload_checksum(payload: np.ndarray) -> int:
    """CRC-32 of a chunk payload (uint8 array)."""
    return zlib.crc32(np.ascontiguousarray(payload, dtype=np.uint8).tobytes())
