"""A Butterfly-style (4, 2) regenerating code with sub-packetisation 2.

The paper evaluates Butterfly(4,2) (Pamies-Juarez et al., FAST'16): an
XOR-based MDS code whose single-failure repair transfers *half* of each
surviving chunk instead of whole chunks, and which — crucially for
ChameleonEC — sends raw sub-chunks without in-network combination, so no
elastic repair plan can be built over it.

This module implements a concrete XOR code with the same properties.
Each chunk ``C`` is split into two sub-chunks ``(C[0], C[1])``. With data
chunks ``A = (a1, a2)`` and ``B = (b1, b2)``, the parities are::

    P = (a1 ^ b1,      a2 ^ b2)
    Q = (a1 ^ b2,      a1 ^ a2 ^ b1)

Properties (all verified by tests):

* MDS: any 2 of the 4 chunks reconstruct the stripe.
* Repairing A, B, or P reads exactly 3 sub-chunks (1.5 chunks, versus
  k = 2 chunks conventionally): e.g. ``a1 = p1 ^ b1`` and
  ``a2 = q2 ^ p1``.
* Repairing Q needs 4 sub-chunks (conventional cost), mirroring the real
  Butterfly construction where one parity repair is not optimised.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import ErasureCode, RepairEquation
from repro.errors import CodingError

# Sub-chunk identifiers: chunk index 0..3 (A, B, P, Q), sub index 0..1.
# Each sub-chunk is a GF(2) combination of the four data sub-chunks
# (a1, a2, b1, b2), written as a 4-bit mask.
_SUBCHUNK_MASKS = {
    (0, 0): 0b0001,  # a1
    (0, 1): 0b0010,  # a2
    (1, 0): 0b0100,  # b1
    (1, 1): 0b1000,  # b2
    (2, 0): 0b0101,  # p1 = a1 ^ b1
    (2, 1): 0b1010,  # p2 = a2 ^ b2
    (3, 0): 0b1001,  # q1 = a1 ^ b2
    (3, 1): 0b0111,  # q2 = a1 ^ a2 ^ b1
}

# Single-failure repair recipes: failed chunk -> (reads, combinations).
# ``reads`` maps source chunk -> list of sub-chunk indices to fetch;
# ``combinations`` gives each repaired sub-chunk as the XOR of fetched
# (chunk, sub) pairs.
_REPAIR_RECIPES: dict[int, tuple[dict[int, list[int]], list[list[tuple[int, int]]]]] = {
    0: ({1: [0], 2: [0], 3: [1]}, [[(2, 0), (1, 0)], [(3, 1), (2, 0)]]),
    1: ({0: [0], 2: [0], 3: [0]}, [[(2, 0), (0, 0)], [(3, 0), (0, 0)]]),
    2: ({0: [1], 1: [1], 3: [1]}, [[(3, 1), (0, 1)], [(0, 1), (1, 1)]]),
    3: ({0: [0, 1], 2: [0, 1]}, [[(0, 0), (0, 1), (2, 1)], [(2, 0), (0, 1)]]),
}


class ButterflyCode(ErasureCode):
    """Butterfly-style regenerating code; only (k, m) = (2, 2) is defined."""

    supports_partial_combine = False

    def __init__(self, k: int = 2, m: int = 2) -> None:
        if (k, m) != (2, 2):
            raise CodingError("ButterflyCode is only defined for (k, m) = (2, 2)")
        super().__init__(k, m)
        self.m = m

    @property
    def name(self) -> str:
        """The paper's name for this code."""
        return "Butterfly(4,2)"

    def _split(self, chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if len(chunk) % 2 != 0:
            raise CodingError("Butterfly chunks must have even length")
        half = len(chunk) // 2
        return chunk[:half], chunk[half:]

    def encode(self, data_chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Encode two data chunks into [A, B, P, Q]."""
        if len(data_chunks) != 2:
            raise CodingError("Butterfly(4,2) expects exactly 2 data chunks")
        a = np.asarray(data_chunks[0], dtype=np.uint8)
        b = np.asarray(data_chunks[1], dtype=np.uint8)
        if len(a) != len(b):
            raise CodingError("data chunks must have equal length")
        a1, a2 = self._split(a)
        b1, b2 = self._split(b)
        p = np.concatenate([a1 ^ b1, a2 ^ b2])
        q = np.concatenate([a1 ^ b2, a1 ^ a2 ^ b1])
        return [a.copy(), b.copy(), p, q]

    def decode(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct the stripe from any >= 2 chunks."""
        known = {
            i: np.asarray(c, dtype=np.uint8) for i, c in available.items() if 0 <= i < 4
        }
        if len(known) < 2:
            raise CodingError("Butterfly(4,2) needs at least 2 chunks to decode")
        # Assemble sub-chunk equations over GF(2) in the unknowns
        # (a1, a2, b1, b2) and solve by elimination on 4-bit masks.
        equations: list[tuple[int, np.ndarray]] = []
        for idx, chunk in known.items():
            s0, s1 = self._split(chunk)
            equations.append((_SUBCHUNK_MASKS[(idx, 0)], s0.copy()))
            equations.append((_SUBCHUNK_MASKS[(idx, 1)], s1.copy()))
        solution = _solve_gf2(equations)
        a = np.concatenate([solution[0], solution[1]])
        b = np.concatenate([solution[2], solution[3]])
        stripe = self.encode([a, b])
        for i, buf in known.items():
            stripe[i] = buf.copy()
        return stripe

    def repair_equation(
        self, failed: int, available: set[int] | None = None
    ) -> RepairEquation:
        """Traffic-accounting view of a single-chunk repair.

        When all three survivors are available, data/P repairs read half
        of each of the three survivors (read_fraction 0.5); Q repair reads
        chunks A and P in full. With fewer survivors the repair degrades
        to a whole-chunk decode from any 2 chunks.
        """
        if not 0 <= failed < 4:
            raise CodingError(f"chunk index {failed} out of range for {self.name}")
        usable = set(range(4)) - {failed}
        if available is not None:
            usable &= set(available)
        reads, _ = _REPAIR_RECIPES[failed]
        if set(reads) <= usable:
            fraction = 0.5 if failed != 3 else 1.0
            return RepairEquation(
                failed=failed,
                coefficients={src: 1 for src in reads},
                read_fraction=fraction,
            )
        if len(usable) >= 2:
            chosen = sorted(usable)[:2]
            return RepairEquation(
                failed=failed, coefficients={src: 1 for src in chosen}
            )
        raise CodingError(f"{self.name}: cannot repair chunk {failed} from {usable}")

    def repair_reads(self, failed: int) -> dict[int, list[int]]:
        """Sub-chunk indices each helper must supply for the optimised repair."""
        reads, _ = _REPAIR_RECIPES[failed]
        return {src: list(subs) for src, subs in reads.items()}

    def repair_chunk(self, failed: int, available: dict[int, np.ndarray]) -> np.ndarray:
        """Reconstruct ``failed`` using the optimised sub-chunk recipe.

        ``available`` must contain full chunks for every helper in
        :meth:`repair_reads`; only the required halves are touched,
        matching the repair-by-transfer bandwidth claim.
        """
        reads, combos = _REPAIR_RECIPES[failed]
        subs: dict[tuple[int, int], np.ndarray] = {}
        for src, needed in reads.items():
            if src not in available:
                raise CodingError(f"{self.name}: helper chunk {src} unavailable")
            s0, s1 = self._split(np.asarray(available[src], dtype=np.uint8))
            for sub_idx in needed:
                subs[(src, sub_idx)] = s0 if sub_idx == 0 else s1
        halves = []
        for combo in combos:
            acc = np.zeros_like(next(iter(subs.values())))
            for key in combo:
                acc = acc ^ subs[key]
            halves.append(acc)
        return np.concatenate(halves)


def _solve_gf2(
    equations: list[tuple[int, np.ndarray]]
) -> dict[int, np.ndarray]:
    """Solve for (a1, a2, b1, b2) given (mask, value) XOR equations."""
    rows = [(mask, value.copy()) for mask, value in equations]
    pivots: dict[int, tuple[int, np.ndarray]] = {}
    for mask, value in rows:
        for bit in range(4):
            if mask & (1 << bit) and bit in pivots:
                pmask, pvalue = pivots[bit]
                mask ^= pmask
                value = value ^ pvalue
        if mask == 0:
            continue
        low_bit = (mask & -mask).bit_length() - 1
        pivots[low_bit] = (mask, value)
    if len(pivots) < 4:
        raise CodingError("Butterfly decode: insufficient independent sub-chunks")
    # Back-substitute to express each unknown alone.
    solution: dict[int, np.ndarray] = {}
    for bit in sorted(pivots, reverse=True):
        mask, value = pivots[bit]
        for other in range(bit + 1, 4):
            if mask & (1 << other):
                mask ^= 1 << other
                value = value ^ solution[other]
        if mask != (1 << bit):
            raise CodingError("Butterfly decode: elimination failed")
        solution[bit] = value
    return solution
