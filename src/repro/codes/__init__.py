"""Erasure code constructions: Reed-Solomon, LRC, Butterfly."""

from repro.codes.base import ErasureCode, LinearCode, RepairEquation
from repro.codes.butterfly import ButterflyCode
from repro.codes.lrc import LRCCode
from repro.codes.registry import make_code
from repro.codes.rs import RSCode

__all__ = [
    "ButterflyCode",
    "ErasureCode",
    "LRCCode",
    "LinearCode",
    "RSCode",
    "RepairEquation",
    "make_code",
]
