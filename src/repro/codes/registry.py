"""Name-based construction of erasure codes, e.g. ``make_code("RS(10,4)")``."""

from __future__ import annotations

import re

from repro.codes.base import ErasureCode
from repro.codes.butterfly import ButterflyCode
from repro.codes.lrc import LRCCode
from repro.codes.rs import RSCode
from repro.errors import CodingError

_PATTERNS = [
    (re.compile(r"^RS\((\d+),(\d+)\)$"), lambda k, m: RSCode(int(k), int(m))),
    (
        re.compile(r"^LRC\((\d+),(\d+),(\d+)\)$"),
        lambda k, l, m: LRCCode(int(k), int(l), int(m)),
    ),
    (re.compile(r"^Butterfly\((\d+),(\d+)\)$"), lambda n, k: _butterfly(int(n), int(k))),
]


def _butterfly(n: int, k: int) -> ButterflyCode:
    # The paper names it Butterfly(n, k) = Butterfly(4, 2).
    if (n, k) != (4, 2):
        raise CodingError("only Butterfly(4,2) is supported")
    return ButterflyCode()


def make_code(spec: str) -> ErasureCode:
    """Build a code from a paper-style name.

    Accepted forms: ``RS(k,m)``, ``LRC(k,l,m)``, ``Butterfly(4,2)``.
    """
    compact = spec.replace(" ", "")
    for pattern, factory in _PATTERNS:
        match = pattern.match(compact)
        if match:
            return factory(*match.groups())
    raise CodingError(f"unrecognised code spec {spec!r}")
