"""Azure-style Locally Repairable Codes LRC(k, l, m).

Layout of the ``n = k + l + m`` stripe:

* indices ``0 .. k-1``        — data chunks, split into ``l`` equal groups;
* indices ``k .. k+l-1``      — one XOR local parity per group;
* indices ``k+l .. k+l+m-1``  — RS (Cauchy) global parities.

Repairing a data chunk reads only the ``k/l`` other chunks of its local
group; repairing a global parity reads ``k`` chunks, exactly the paper's
Section II-C description.
"""

from __future__ import annotations

import numpy as np

from repro.codes.base import LinearCode
from repro.errors import CodingError
from repro.gf.matrix import cauchy, identity


class LRCCode(LinearCode):
    """Locally Repairable Code with ``l`` local and ``m`` global parities."""

    def __init__(self, k: int, l: int, m: int) -> None:
        if l < 1 or k % l != 0:
            raise CodingError(f"k={k} must be divisible by l={l}")
        group_size = k // l
        local_rows = np.zeros((l, k), dtype=np.uint8)
        for g in range(l):
            local_rows[g, g * group_size : (g + 1) * group_size] = 1
        generator = np.vstack([identity(k), local_rows, cauchy(k, m)])
        super().__init__(k, l + m, generator)
        self.l = l
        self.m = m
        self.group_size = group_size

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``LRC(10,2,2)``."""
        return f"LRC({self.k},{self.l},{self.m})"

    def group_of(self, index: int) -> int | None:
        """Local group id of a data or local-parity chunk, else None."""
        if 0 <= index < self.k:
            return index // self.group_size
        if self.k <= index < self.k + self.l:
            return index - self.k
        return None

    def local_group_members(self, group: int) -> list[int]:
        """All chunk indices (data + local parity) of ``group``."""
        if not 0 <= group < self.l:
            raise CodingError(f"group {group} out of range for {self.name}")
        data = list(range(group * self.group_size, (group + 1) * self.group_size))
        return data + [self.k + group]

    def fault_tolerance(self) -> int:
        """LRCs are not MDS: only ``m + 1`` arbitrary failures are guaranteed."""
        return self.m + 1

    def is_local_repair(self, failed: int) -> bool:
        """True when ``failed`` is repairable inside its local group."""
        return self.group_of(failed) is not None
