"""Abstract erasure-code interfaces shared by RS, LRC, and Butterfly codes.

A code over a stripe of ``n = k + m_total`` chunks is described by chunk
indices ``0 .. n-1``; indices ``0 .. k-1`` are the systematic data chunks.
Linear codes additionally expose a generator matrix ``G`` (n x k over
GF(2^8)) with ``chunk_i = sum_j G[i, j] * data_j``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CodingError
from repro.gf.field import as_field_array
from repro.gf.matrix import matvec_data, rank, solve
from repro.gf.tables import MUL_TABLE


@dataclass(frozen=True)
class RepairEquation:
    """A linear repair recipe: ``chunk[failed] = xor_i coeff_i * chunk[i]``.

    ``read_fraction`` is the fraction of each source chunk that must be
    read and transferred (1.0 for RS/LRC; 0.5 for Butterfly sub-chunk
    repair, where the equation is over half-chunks and kept only for
    traffic accounting).
    """

    failed: int
    coefficients: dict[int, int] = field(default_factory=dict)
    read_fraction: float = 1.0

    @property
    def sources(self) -> list[int]:
        """Chunk indices read by this repair, in ascending order."""
        return sorted(self.coefficients)

    @property
    def traffic_chunks(self) -> float:
        """Repair traffic in units of one chunk size."""
        return len(self.coefficients) * self.read_fraction


class ErasureCode(ABC):
    """Common interface for all codes: encode, decode, repair recipes."""

    #: Whether relays may combine partially decoded chunks in transit.
    #: True for linear whole-chunk codes; False for sub-chunk codes like
    #: Butterfly, where ChameleonEC falls back to direct transfers (the
    #: paper makes the same restriction for Butterfly(4,2)).
    supports_partial_combine: bool = True

    def __init__(self, k: int, m_total: int) -> None:
        if k < 1 or m_total < 1:
            raise CodingError(f"invalid code parameters k={k}, m={m_total}")
        self.k = k
        self.m_total = m_total
        self.n = k + m_total

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable code name, e.g. ``RS(10,4)``."""

    @abstractmethod
    def encode(self, data_chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Encode ``k`` data chunks into the full stripe of ``n`` chunks."""

    @abstractmethod
    def decode(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct the full stripe from any decodable subset."""

    @abstractmethod
    def repair_equation(
        self, failed: int, available: set[int] | None = None
    ) -> RepairEquation:
        """Repair recipe for a single failed chunk.

        ``available`` restricts usable sources (defaults to all other
        chunks). Raises :class:`CodingError` if the failure cannot be
        repaired from the given survivors.
        """

    def fault_tolerance(self) -> int:
        """Number of arbitrary concurrent chunk failures always tolerated."""
        return self.m_total

    def validate_stripe(self, chunks: list[np.ndarray]) -> bool:
        """True if ``chunks`` is a consistent codeword of this code."""
        if len(chunks) != self.n:
            return False
        re_encoded = self.encode([as_field_array(c) for c in chunks[: self.k]])
        return all(np.array_equal(a, b) for a, b in zip(re_encoded, chunks))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<{self.name}>"


class LinearCode(ErasureCode):
    """A code defined by an ``n x k`` generator matrix over GF(2^8)."""

    def __init__(self, k: int, m_total: int, generator: np.ndarray) -> None:
        super().__init__(k, m_total)
        generator = np.asarray(generator, dtype=np.uint8)
        if generator.shape != (self.n, k):
            raise CodingError(
                f"generator must be {self.n}x{k}, got {generator.shape}"
            )
        if not np.array_equal(generator[:k], np.eye(k, dtype=np.uint8)):
            raise CodingError("generator must be systematic (identity on top)")
        self.generator = generator

    def encode(self, data_chunks: list[np.ndarray]) -> list[np.ndarray]:
        """Encode ``k`` data chunks: data (copied) + parity rows of G."""
        if len(data_chunks) != self.k:
            raise CodingError(f"{self.name} expects {self.k} data chunks")
        buffers = [as_field_array(c) for c in data_chunks]
        length = len(buffers[0])
        if any(len(b) != length for b in buffers):
            raise CodingError("all data chunks must have equal length")
        parity = matvec_data(self.generator[self.k :], buffers)
        return [b.copy() for b in buffers] + parity

    def decode(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Reconstruct the stripe from any spanning chunk subset."""
        known = {i: as_field_array(c) for i, c in available.items()}
        if len(known) < self.k:
            raise CodingError(
                f"{self.name}: need at least {self.k} chunks, got {len(known)}"
            )
        indices = sorted(known)
        # Pick k rows whose generator submatrix has full rank.
        chosen = self._spanning_subset(indices)
        sub = self.generator[chosen]
        inv_rows = solve(sub, np.eye(self.k, dtype=np.uint8))
        data = matvec_data(inv_rows, [known[i] for i in chosen])
        stripe = self.encode(data)
        # Preserve the caller's buffers for chunks it already has.
        for i, buf in known.items():
            stripe[i] = buf.copy()
        return stripe

    def repair_equation(
        self, failed: int, available: set[int] | None = None
    ) -> RepairEquation:
        """Minimal-source linear recipe for one failed chunk."""
        if not 0 <= failed < self.n:
            raise CodingError(f"chunk index {failed} out of range for {self.name}")
        usable = set(range(self.n)) - {failed}
        if available is not None:
            usable &= set(available)
        coeffs = self._combination_from(sorted(usable), failed)
        return RepairEquation(failed=failed, coefficients=coeffs)

    def _spanning_subset(self, indices: list[int]) -> list[int]:
        """Greedily pick k indices whose generator rows are independent."""
        chosen: list[int] = []
        basis = np.zeros((0, self.k), dtype=np.uint8)
        for i in indices:
            candidate = np.vstack([basis, self.generator[i : i + 1]])
            if rank(candidate) > len(chosen):
                basis = candidate
                chosen.append(i)
                if len(chosen) == self.k:
                    return chosen
        raise CodingError(f"{self.name}: available chunks do not span the data")

    def _combination_from(self, candidates: list[int], target: int) -> dict[int, int]:
        """Express generator row ``target`` as a combination of candidate rows.

        Prefers a minimal set of sources: tries increasing subset sizes of
        a spanning basis. For MDS codes this yields exactly k sources; for
        LRCs it finds the small local-group repair automatically.
        """
        target_row = self.generator[target].astype(np.int32)
        # Solve c^T * G[candidates] = target_row, i.e. G[candidates]^T c = target^T.
        sub = self.generator[candidates]
        a = sub.astype(np.int32).T  # k x len(candidates)
        coeffs = _solve_underdetermined(a, target_row)
        if coeffs is None:
            raise CodingError(
                f"{self.name}: cannot repair chunk {target} from {candidates}"
            )
        return {
            candidates[j]: int(c) for j, c in enumerate(coeffs) if c != 0
        }


def _solve_underdetermined(a: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve ``a @ x = rhs`` over GF(2^8) with a possibly wide matrix ``a``.

    Gaussian elimination with partial pivoting over columns; free
    variables are set to zero, which naturally minimises the number of
    sources used when the leading columns form a sparse local repair.
    Returns None if inconsistent.
    """
    a = a.astype(np.int32).copy()
    rhs = rhs.astype(np.int32).copy()
    rows, cols = a.shape
    pivots: list[tuple[int, int]] = []
    r = 0
    for c in range(cols):
        if r == rows:
            break
        pivot_row = next((i for i in range(r, rows) if a[i, c] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            a[[r, pivot_row]] = a[[pivot_row, r]]
            rhs[[r, pivot_row]] = rhs[[pivot_row, r]]
        from repro.gf.field import gf_inv

        inv = gf_inv(int(a[r, c]))
        a[r] = MUL_TABLE[inv][a[r]]
        rhs[r] = MUL_TABLE[inv][int(rhs[r])]
        for i in range(rows):
            if i != r and a[i, c] != 0:
                factor = int(a[i, c])
                a[i] ^= MUL_TABLE[factor][a[r]]
                rhs[i] ^= int(MUL_TABLE[factor][int(rhs[r])])
        pivots.append((r, c))
        r += 1
    # Consistency: rows below rank must have zero rhs.
    for i in range(r, rows):
        if rhs[i] != 0:
            return None
    x = np.zeros(cols, dtype=np.uint8)
    for row, col in pivots:
        x[col] = rhs[row]
    return x
