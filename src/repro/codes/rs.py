"""Reed-Solomon codes RS(k, m) over GF(2^8)."""

from __future__ import annotations

from repro.codes.base import LinearCode
from repro.errors import CodingError
from repro.gf.matrix import rs_generator_cauchy, rs_generator_vandermonde


class RSCode(LinearCode):
    """Systematic Reed-Solomon code with ``k`` data and ``m`` parity chunks.

    ``matrix`` selects the construction: ``"cauchy"`` (default, the
    construction the ChameleonEC prototype uses through Jerasure) or
    ``"vandermonde"``.
    """

    def __init__(self, k: int, m: int, matrix: str = "cauchy") -> None:
        if matrix == "cauchy":
            generator = rs_generator_cauchy(k, m)
        elif matrix == "vandermonde":
            generator = rs_generator_vandermonde(k, m)
        else:
            raise CodingError(f"unknown RS matrix construction {matrix!r}")
        super().__init__(k, m, generator)
        self.m = m
        self.matrix_kind = matrix

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``RS(10,4)``."""
        return f"RS({self.k},{self.m})"

    def is_data_chunk(self, index: int) -> bool:
        """True for systematic (data) chunk indices."""
        return 0 <= index < self.k
