"""Evaluates declarative SLOs against a finished run's telemetry.

The evaluator is pure: it reads a :class:`RunTelemetry` bundle (series
from a :class:`~repro.obs.timeseries.TimeseriesRecorder`, the integrity
ledger, repair timing) and renders verdicts — it never touches the
simulator. That keeps the SLO gate re-runnable against archived
telemetry and trivially deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError
from repro.integrity.ledger import IntegrityLedger
from repro.obs.timeseries import TimeseriesRecorder
from repro.slo.spec import SLOBreach, SLOReport, SLOSpec, SLOVerdict


@dataclass
class RunTelemetry:
    """Everything the evaluator may consult about one finished run.

    Only the fields a given spec set needs must be populated — e.g. a
    pure repair-deadline gate needs no timeseries. ``baseline_p99`` is
    the calm-period foreground P99 the inflation ceiling multiplies;
    measure it over pre-chaos windows or carry it in from a separate
    baseline run.
    """

    end_time: float
    timeseries: TimeseriesRecorder | None = None
    #: Series holding the per-window foreground P99 (seconds).
    latency_series: str = "lat.foreground.p99"
    baseline_p99: float = 0.0
    repair_started_at: float | None = None
    repair_finished_at: float | None = None
    chunks_lost: int = 0
    unverified_chunks: int = 0
    ledger: IntegrityLedger | None = None


class SLOEvaluator:
    """Applies a list of :class:`SLOSpec` to one run's telemetry."""

    def __init__(self, specs: list[SLOSpec]) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate SLO names in {names}")
        self.specs = list(specs)

    def evaluate(self, telemetry: RunTelemetry) -> SLOReport:
        """One verdict per spec, with structured breach records."""
        report = SLOReport()
        for spec in self.specs:
            handler = getattr(self, f"_eval_{spec.kind}")
            report.verdicts.append(handler(spec, telemetry))
        return report

    # -- kind handlers ---------------------------------------------------------

    def _eval_foreground_p99_inflation(
        self, spec: SLOSpec, t: RunTelemetry
    ) -> SLOVerdict:
        if t.timeseries is None:
            return SLOVerdict(spec, True, 0.0, note="no timeseries: not evaluated")
        if t.baseline_p99 <= 0:
            return SLOVerdict(spec, True, 0.0, note="no baseline P99: not evaluated")
        series = t.timeseries.series.get(t.latency_series)
        if series is None or not series.values:
            return SLOVerdict(
                spec, True, 0.0, note=f"series {t.latency_series!r} empty"
            )
        count_series = t.timeseries.series.get(
            t.latency_series.rsplit(".", 1)[0] + ".count"
        )
        breaches = []
        worst = 0.0
        for i, (time, p99) in enumerate(zip(series.times, series.values)):
            # Windows with no completed requests sample as 0.0 — they
            # carry no latency evidence either way.
            if count_series is not None and count_series.values[i] == 0:
                continue
            inflation = p99 / t.baseline_p99
            worst = max(worst, inflation)
            if inflation > spec.threshold:
                breaches.append(
                    SLOBreach(
                        slo=spec.name,
                        time=time,
                        observed=inflation,
                        threshold=spec.threshold,
                        window=i,
                        detail=(
                            f"window P99 {p99 * 1e3:.2f} ms vs baseline "
                            f"{t.baseline_p99 * 1e3:.2f} ms"
                        ),
                    )
                )
        return SLOVerdict(spec, not breaches, worst, breaches)

    def _eval_repair_deadline(self, spec: SLOSpec, t: RunTelemetry) -> SLOVerdict:
        if t.repair_started_at is None:
            return SLOVerdict(spec, True, 0.0, note="no repair ran: not evaluated")
        if t.repair_finished_at is None:
            observed = t.end_time - t.repair_started_at
            breach = SLOBreach(
                slo=spec.name,
                time=t.end_time,
                observed=observed,
                threshold=spec.threshold,
                detail="repair never completed within the run",
            )
            return SLOVerdict(spec, False, observed, [breach])
        observed = t.repair_finished_at - t.repair_started_at
        if observed > spec.threshold:
            breach = SLOBreach(
                slo=spec.name,
                time=t.repair_finished_at,
                observed=observed,
                threshold=spec.threshold,
                detail=(
                    f"repair took {observed:.2f} s; deadline {spec.threshold:.2f} s"
                ),
            )
            return SLOVerdict(spec, False, observed, [breach])
        return SLOVerdict(spec, True, observed)

    def _eval_detection_latency(self, spec: SLOSpec, t: RunTelemetry) -> SLOVerdict:
        if t.ledger is None:
            return SLOVerdict(spec, True, 0.0, note="no ledger: not evaluated")
        breaches = []
        worst = 0.0
        for record in t.ledger.injected:
            if record.detected:
                latency = record.detection_latency
                time = record.detected_at
                detail = f"{record.kind} on {record.chunk} detected by {record.detected_by}"
            else:
                # Still latent at the end of the run: at least this long.
                latency = t.end_time - record.injected_at
                time = t.end_time
                detail = f"{record.kind} on {record.chunk} never detected"
            worst = max(worst, latency)
            if latency > spec.threshold or not record.detected:
                breaches.append(
                    SLOBreach(
                        slo=spec.name,
                        time=time,
                        observed=latency,
                        threshold=spec.threshold,
                        detail=detail,
                    )
                )
        return SLOVerdict(spec, not breaches, worst, breaches)

    def _eval_zero_loss(self, spec: SLOSpec, t: RunTelemetry) -> SLOVerdict:
        unexplained = len(t.ledger.unexplained) if t.ledger is not None else 0
        losses = t.chunks_lost + t.unverified_chunks + unexplained
        if losses > spec.threshold:
            breach = SLOBreach(
                slo=spec.name,
                time=t.end_time,
                observed=float(losses),
                threshold=spec.threshold,
                detail=(
                    f"lost={t.chunks_lost} unverified={t.unverified_chunks} "
                    f"unexplained={unexplained}"
                ),
            )
            return SLOVerdict(spec, False, float(losses), [breach])
        return SLOVerdict(spec, True, float(losses))
