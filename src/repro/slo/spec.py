"""Declarative service-level objectives and their breach records.

An :class:`SLOSpec` states one objective a run must hold; the evaluator
(:mod:`repro.slo.evaluator`) checks each spec against a finished run's
telemetry and produces an :class:`SLOReport` of per-spec
:class:`SLOVerdict`\\ s. Every violated window / event becomes a
structured :class:`SLOBreach` carrying the *virtual* timestamp and the
offending value, so a failed gate points at the exact moment the run
went out of budget instead of a curve to eyeball.

Spec kinds (``threshold`` semantics in brackets):

* ``foreground_p99_inflation`` — per-window foreground P99 may not
  exceed [threshold] × the run's calm-period baseline P99;
* ``repair_deadline`` — the repair must complete within [threshold]
  virtual seconds of its start;
* ``detection_latency`` — every injected corruption must be detected
  within [threshold] virtual seconds;
* ``zero_loss`` — at most [threshold] (normally 0) integrity losses:
  unrepairable chunks, checksum-failing chunks, unexplained detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError

#: The closed set of objective kinds the evaluator understands.
SLO_KINDS = (
    "foreground_p99_inflation",
    "repair_deadline",
    "detection_latency",
    "zero_loss",
)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective: a kind and a threshold."""

    name: str
    kind: str
    threshold: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ReproError(
                f"unknown SLO kind {self.kind!r}; choose from {SLO_KINDS}"
            )
        if not self.name:
            raise ReproError("SLO needs a non-empty name")
        if self.threshold < 0:
            raise ReproError(f"SLO {self.name!r} threshold cannot be negative")
        if self.kind == "foreground_p99_inflation" and self.threshold < 1.0:
            raise ReproError(
                f"SLO {self.name!r}: an inflation ceiling below 1.0x would "
                "fail even a perfectly calm run"
            )

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "description": self.description,
        }


@dataclass(frozen=True)
class SLOBreach:
    """One violation: what was observed, when (virtual time), and where."""

    slo: str
    time: float  #: virtual timestamp of the violation
    observed: float
    threshold: float
    window: int | None = None  #: offending sampling-window index, if windowed
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        out = {
            "slo": self.slo,
            "time": self.time,
            "observed": self.observed,
            "threshold": self.threshold,
            "detail": self.detail,
        }
        if self.window is not None:
            out["window"] = self.window
        return out


@dataclass
class SLOVerdict:
    """One spec's outcome: pass/fail plus every breach found."""

    spec: SLOSpec
    passed: bool
    observed: float  #: worst value seen (same units as the threshold)
    breaches: list[SLOBreach] = field(default_factory=list)
    note: str = ""  #: e.g. "no baseline: not evaluated"

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "slo": self.spec.to_dict(),
            "passed": self.passed,
            "observed": self.observed,
            "breaches": [b.to_dict() for b in self.breaches],
            "note": self.note,
        }


@dataclass
class SLOReport:
    """All verdicts for one run."""

    verdicts: list[SLOVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every objective held."""
        return all(v.passed for v in self.verdicts)

    @property
    def breaches(self) -> list[SLOBreach]:
        """Every breach across all verdicts, in verdict order."""
        return [b for v in self.verdicts for b in v.breaches]

    def verdict(self, name: str) -> SLOVerdict:
        """Look up one verdict by its spec name."""
        for v in self.verdicts:
            if v.spec.name == name:
                return v
        raise ReproError(
            f"no verdict for SLO {name!r}; have {[v.spec.name for v in self.verdicts]}"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form (the BENCH_chaos.json verdict block)."""
        return {
            "passed": self.passed,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }
