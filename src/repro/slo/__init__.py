"""Declarative SLOs evaluated against virtual-time run telemetry.

The second half of the second-generation observability layer: the
:mod:`repro.obs.timeseries` recorder produces per-window series; this
package asserts objectives over them — foreground P99 inflation
ceilings, repair-completion deadlines, scrub detection-latency bounds,
and the zero-integrity-loss invariant — and renders machine-readable
verdicts with structured, virtually-timestamped breach records
(consumed by ``exp17_chaos``'s ``BENCH_chaos.json`` and the CI gate).
"""

from repro.slo.evaluator import RunTelemetry, SLOEvaluator
from repro.slo.spec import SLO_KINDS, SLOBreach, SLOReport, SLOSpec, SLOVerdict

__all__ = [
    "RunTelemetry",
    "SLO_KINDS",
    "SLOBreach",
    "SLOEvaluator",
    "SLOReport",
    "SLOSpec",
    "SLOVerdict",
]
