"""Closed-loop admission control over the virtual-time telemetry.

The inverse of the paper's idle-bandwidth dispatch: instead of pushing
repair traffic *into* measured headroom, :class:`AdmissionController`
pulls background intensity *back* when the foreground latency series
shows the headroom is gone. It rides the same
:meth:`~repro.sim.engine.Simulator.every` clock hook as the
:class:`~repro.obs.timeseries.TimeseriesRecorder` it reads, acts only
at window boundaries on already-closed windows, and turns two
actuators: the scrubber's scan rate and each repairer's parallelism
cap. See :mod:`repro.control.admission` for the AIMD mechanics.
"""

from repro.control.admission import AdmissionController, AIMDPolicy

__all__ = [
    "AIMDPolicy",
    "AdmissionController",
]
