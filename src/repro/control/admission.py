"""AIMD admission controller: throttle background work to protect P99.

ChameleonEC's core idea is *tuning* repair aggressiveness against
foreground interference; this module closes the telemetry loop the
timeseries recorder opened. Every sampling window the controller reads
the foreground P99 of the window that just closed, computes its
inflation over a calm baseline, and steps an AIMD intensity level:

* **multiplicative back-off** when inflation crosses the high-water
  mark — scrub rate and repair parallelism shrink together, fast,
  because a breach window is already a user-visible event;
* **additive recovery** when inflation drops below the low-water mark —
  intensity creeps back so repair/scrub throughput is not permanently
  sacrificed to one transient spike;
* **hysteresis** between the marks — no action, so the controller
  cannot oscillate on a series hovering near one threshold;
* a **floor** — repair deadlines are SLOs too, so background work is
  never throttled to a standstill.

Determinism is the contract that makes the controller testable: it
acts only at window boundaries, only on windows the recorder already
closed (never on half-accumulated state), and only through the
deterministic actuators (:meth:`~repro.integrity.scrubber.Scrubber.set_rate`,
``set_concurrency`` on the repairers). Same-seed runs are therefore
byte-identical — and a controller whose thresholds never trigger is
byte-identical to no controller at all (enforced by the equivalence
test).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.integrity.scrubber import Scrubber
    from repro.obs.timeseries import TimeseriesRecorder
    from repro.sim.engine import PeriodicHook


@dataclass(frozen=True)
class AIMDPolicy:
    """The AIMD step function and its thresholds (pure, unit-testable).

    ``high_water``/``low_water`` are *inflation ratios* — window P99
    over the calm baseline — not absolute latencies, so one policy
    transfers across traffic families whose baselines differ by three
    orders of magnitude. ``backoff`` multiplies the intensity level on
    breach; ``recover`` is added per calm window; ``floor`` bounds the
    level from below.
    """

    high_water: float = 2.0
    low_water: float = 1.25
    backoff: float = 0.5
    recover: float = 0.1
    floor: float = 0.1

    def __post_init__(self) -> None:
        if self.high_water <= 0:
            raise ReproError("high_water must be positive")
        if not 0 < self.low_water < self.high_water:
            raise ReproError(
                "low_water must sit in (0, high_water) — the gap is the "
                "hysteresis band"
            )
        if not 0 < self.backoff < 1:
            raise ReproError("backoff must be a factor in (0, 1)")
        if self.recover <= 0:
            raise ReproError("recover must be a positive additive step")
        if not 0 < self.floor <= 1:
            raise ReproError("floor must be in (0, 1]")

    def step(self, level: float, inflation: float) -> float:
        """Next intensity level given this window's P99 inflation."""
        if inflation > self.high_water:
            return max(self.floor, level * self.backoff)
        if inflation < self.low_water:
            return min(1.0, level + self.recover)
        return level  # hysteresis band: hold


class AdmissionController:
    """Window-synchronous AIMD throttle for scrub + repair intensity.

    Construct with a *started* :class:`TimeseriesRecorder`, attach
    actuators (:meth:`attach_scrubber`, :meth:`attach_repairer`), then
    :meth:`start`. The controller installs its own
    :meth:`~repro.sim.engine.Simulator.every` hook at the recorder's
    window cadence; queue FIFO order at equal timestamps guarantees the
    recorder samples *before* the controller reads, and a
    ``windows_closed`` guard makes out-of-phase installation merely lag
    one window instead of reading a half-window.

    ``baseline_p99`` anchors the inflation ratio; pass the calm-period
    P99 when you have one, or leave it ``None`` to auto-calibrate over
    the first ``calibration_windows`` non-empty windows (the controller
    holds fire until calibrated).
    """

    def __init__(
        self,
        recorder: "TimeseriesRecorder",
        *,
        policy: AIMDPolicy | None = None,
        scrub_policy: AIMDPolicy | None = None,
        repair_policy: AIMDPolicy | None = None,
        repair_deadline: float | None = None,
        baseline_p99: float | None = None,
        calibration_windows: int = 3,
        latency_source: str = "foreground",
    ) -> None:
        if baseline_p99 is not None and baseline_p99 <= 0:
            raise ReproError(
                "baseline_p99 must be positive (or None to auto-calibrate)"
            )
        if calibration_windows < 1:
            raise ReproError("calibration_windows must be at least 1")
        if repair_deadline is not None and repair_deadline <= 0:
            raise ReproError("repair_deadline must be positive (or None)")
        self.recorder = recorder
        self.sim = recorder.sim
        self.policy = policy if policy is not None else AIMDPolicy()
        #: Per-actuator step functions. Defaults fall back to the shared
        #: ``policy``, which keeps both levels in lockstep — identical to
        #: the single-level controller. Passing a distinct
        #: ``scrub_policy`` lets the scrubber (no deadline of its own)
        #: back off far more aggressively than repair.
        self.scrub_policy = scrub_policy if scrub_policy is not None else self.policy
        self.repair_policy = (
            repair_policy if repair_policy is not None else self.policy
        )
        #: Virtual-time deadline by which repair should finish. When
        #: set, repair's multiplicative backoff is tempered by remaining
        #: headroom: a breach early in the run throttles repair hard, a
        #: breach near the deadline barely at all (repair completion is
        #: an SLO too).
        self.repair_deadline = repair_deadline
        self._deadline_start: float | None = None
        self.baseline_p99 = baseline_p99
        self.calibration_windows = calibration_windows
        self.latency_source = latency_source
        #: Per-actuator intensity levels in [policy.floor, 1.0].
        self.scrub_level = 1.0
        self.repair_level = 1.0
        self.min_level = 1.0
        self.backoffs = 0
        self.recoveries = 0
        self.windows_seen = 0
        self._calibration: list[float] = []
        self._scrubbers: list[tuple["Scrubber", float]] = []
        self._repairers: list[tuple[object, int]] = []
        self._windows_acted = recorder.windows_closed
        self._hook: "PeriodicHook | None" = None

    @property
    def level(self) -> float:
        """The controller's overall intensity: the tighter of the two
        per-actuator levels (identical to both under the default shared
        policy, preserving the single-level surface)."""
        return min(self.scrub_level, self.repair_level)

    # -- actuators -------------------------------------------------------------

    def attach_scrubber(self, scrubber: "Scrubber") -> None:
        """Manage ``scrubber``'s scan rate (its current rate = level 1.0)."""
        self._scrubbers.append((scrubber, scrubber.rate))
        self._apply_scrubber(scrubber, scrubber.rate)

    def attach_repairer(self, repairer) -> None:
        """Manage ``repairer``'s parallelism cap (current cap = level 1.0).

        Works for both :class:`~repro.repair.runner.RepairRunner`
        (``concurrency``) and the Chameleon coordinators
        (``max_inflight``) through their shared ``set_concurrency``.
        """
        base = getattr(repairer, "concurrency", None)
        if base is None:
            base = repairer.max_inflight
        self._repairers.append((repairer, int(base)))
        self._apply_repairer(repairer, int(base))

    # -- lifecycle -------------------------------------------------------------

    @property
    def started(self) -> bool:
        """True while the window hook is live."""
        return self._hook is not None and not self._hook.cancelled

    @property
    def armed(self) -> bool:
        """True once a baseline exists and the controller may act."""
        return self.baseline_p99 is not None

    def start(self) -> None:
        """Install the control hook at the recorder's window cadence."""
        if self.started:
            raise ReproError("admission controller already started")
        if not self.recorder.started:
            raise ReproError(
                "admission controller needs a started TimeseriesRecorder "
                "(it reads the recorder's closed windows)"
            )
        self._windows_acted = self.recorder.windows_closed
        self._hook = self.sim.every(self.recorder.window, self._on_window)

    def stop(self) -> None:
        """Cancel the hook (idempotent); actuator levels are left as-is."""
        if self._hook is not None:
            self._hook.cancel()
            self._hook = None

    # -- the control step ------------------------------------------------------

    def _on_window(self) -> None:
        closed = self.recorder.windows_closed
        if closed <= self._windows_acted:
            # The recorder has not closed a new window yet (out-of-phase
            # installation): wait rather than act on stale data.
            return
        self._windows_acted = closed
        self.windows_seen += 1
        count = self.recorder.latest(f"lat.{self.latency_source}.count")
        if count <= 0:
            return  # no foreground evidence either way: hold
        p99 = self.recorder.latest(f"lat.{self.latency_source}.p99")
        if self.baseline_p99 is None:
            self._calibration.append(p99)
            if len(self._calibration) >= self.calibration_windows:
                self.baseline_p99 = (
                    sum(self._calibration) / len(self._calibration)
                )
            return
        inflation = p99 / self.baseline_p99
        new_scrub = self.scrub_policy.step(self.scrub_level, inflation)
        new_repair = self._repair_step(self.repair_level, inflation)
        registry = get_registry()
        if registry.enabled:
            registry.counter("control.windows").inc()
            registry.gauge("control.level").set(min(new_scrub, new_repair))
        if new_scrub == self.scrub_level and new_repair == self.repair_level:
            return
        # One direction per window: any shrink is a backoff (a breach
        # window was user-visible), otherwise it was a recovery creep.
        backed_off = (
            new_scrub < self.scrub_level or new_repair < self.repair_level
        )
        direction = "backoff" if backed_off else "recover"
        self.scrub_level = new_scrub
        self.repair_level = new_repair
        self.min_level = min(self.min_level, self.level)
        if direction == "backoff":
            self.backoffs += 1
        else:
            self.recoveries += 1
        if registry.enabled:
            registry.counter(f"control.{direction}s").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                f"control.{direction}",
                track="control",
                inflation=inflation,
                level=self.level,
                scrub_level=new_scrub,
                repair_level=new_repair,
                window=closed,
            )
        self._apply()

    def _repair_step(self, level: float, inflation: float) -> float:
        """Repair's AIMD step, with deadline-headroom-tempered backoff.

        Without a ``repair_deadline`` this is exactly
        ``repair_policy.step``. With one, the multiplicative backoff is
        lifted toward 1.0 as headroom shrinks — at half the headroom a
        0.5 backoff becomes 0.75, at zero headroom repair is never
        backed off at all — because finishing the repair before the
        deadline is itself an SLO the controller must not sacrifice.
        """
        pol = self.repair_policy
        if inflation > pol.high_water:
            backoff = pol.backoff
            headroom = self._deadline_headroom()
            if headroom is not None:
                backoff = 1.0 - (1.0 - backoff) * headroom
            return max(pol.floor, level * backoff)
        if inflation < pol.low_water:
            return min(1.0, level + pol.recover)
        return level

    def _deadline_headroom(self) -> float | None:
        """Remaining fraction of the repair-deadline budget, in [0, 1].

        Anchored at the earliest attached repairer's start time (the
        controller's first breach otherwise), so the fraction measures
        how much of the actual repair run remains, not wall-clock since
        time zero.
        """
        if self.repair_deadline is None:
            return None
        if self._deadline_start is None:
            starts = [
                r.meter.started_at
                for r, _ in self._repairers
                if getattr(r, "meter", None) is not None
                and r.meter.started_at is not None
            ]
            self._deadline_start = min(starts) if starts else self.sim.now
        span = self.repair_deadline - self._deadline_start
        if span <= 0:
            return 0.0
        remaining = (self.repair_deadline - self.sim.now) / span
        return min(1.0, max(0.0, remaining))

    # -- actuation -------------------------------------------------------------

    def _apply(self) -> None:
        for scrubber, base in self._scrubbers:
            self._apply_scrubber(scrubber, base)
        for repairer, base in self._repairers:
            self._apply_repairer(repairer, base)

    def _apply_scrubber(self, scrubber: "Scrubber", base: float) -> None:
        target = base * self.scrub_level
        if scrubber.rate != target:
            scrubber.set_rate(target)

    def _apply_repairer(self, repairer, base: int) -> None:
        if getattr(repairer, "crashed", False):
            return  # a dead coordinator has no knobs; recovery re-attaches
        target = max(1, int(round(base * self.repair_level)))
        current = getattr(repairer, "concurrency", None)
        if current is None:
            current = repairer.max_inflight
        if current != target:
            repairer.set_concurrency(target)


__all__ = [
    "AIMDPolicy",
    "AdmissionController",
]
