"""Windowed per-link bandwidth statistics (Figures 5 and 6).

Fig. 5 plots the fluctuation (max minus min across windows) of the
bandwidth the foreground traffic occupies per link; Fig. 6 contrasts the
most-loaded and least-loaded up/downlinks, split into repair bandwidth
and foreground bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.resources import Resource

REPAIR_TAG = "repair"

#: Tag for background scrubber traffic. Scrub flows are deliberately
#: *not* REPAIR_TAG: a node crash must not tear them down as lost repair
#: work, and FlowInterruption events target repair transfers only.
SCRUB_TAG = "scrub"


@dataclass
class LinkWindowSeries:
    """Per-window average bandwidth of one resource, split by class."""

    resource_name: str
    capacity: float
    repair: list[float] = field(default_factory=list)
    foreground: list[float] = field(default_factory=list)

    def fluctuation(self) -> float:
        """Max minus min of the per-window foreground bandwidth."""
        if not self.foreground:
            return 0.0
        return max(self.foreground) - min(self.foreground)

    def mean_repair(self) -> float:
        """Average repair bandwidth across windows (B/s)."""
        return sum(self.repair) / len(self.repair) if self.repair else 0.0

    def mean_foreground(self) -> float:
        """Average foreground bandwidth across windows (B/s)."""
        return sum(self.foreground) / len(self.foreground) if self.foreground else 0.0

    def mean_total(self) -> float:
        """Average total (repair + foreground) bandwidth (B/s)."""
        return self.mean_repair() + self.mean_foreground()


class LinkStatsCollector:
    """Samples cumulative resource counters into fixed windows.

    Call :meth:`sample` every ``window`` seconds of simulated time (the
    paper uses 15 s windows, Section II-D).
    """

    def __init__(self, resources: list[Resource], window: float = 15.0) -> None:
        if window <= 0:
            raise SimulationError("window must be positive")
        self.window = window
        self.series: dict[str, LinkWindowSeries] = {
            res.name: LinkWindowSeries(res.name, res.capacity) for res in resources
        }
        self._resources = list(resources)
        self._last_counts: dict[str, tuple[float, float]] = {
            res.name: self._split_counts(res) for res in resources
        }

    @staticmethod
    def _split_counts(res: Resource) -> tuple[float, float]:
        repair = res.bytes_for(REPAIR_TAG)
        foreground = res.total_bytes - repair
        return repair, foreground

    def sample(self) -> None:
        """Close the current window for every tracked resource."""
        for res in self._resources:
            repair, foreground = self._split_counts(res)
            last_repair, last_fg = self._last_counts[res.name]
            series = self.series[res.name]
            series.repair.append((repair - last_repair) / self.window)
            series.foreground.append((foreground - last_fg) / self.window)
            self._last_counts[res.name] = (repair, foreground)

    def fluctuation_stats(self) -> tuple[float, float, float]:
        """(mean, min, max) of per-link foreground fluctuation (Fig. 5)."""
        values = [s.fluctuation() for s in self.series.values()]
        if not values:
            return 0.0, 0.0, 0.0
        return sum(values) / len(values), min(values), max(values)

    def most_and_least_loaded(self) -> tuple[LinkWindowSeries, LinkWindowSeries]:
        """The (most-loaded, least-loaded) links by total mean bw (Fig. 6)."""
        ordered = sorted(self.series.values(), key=lambda s: s.mean_total())
        if not ordered:
            raise SimulationError("no links tracked")
        return ordered[-1], ordered[0]
