"""Request latency recording and percentile reporting."""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


class LatencyRecorder:
    """Collects request latencies and reports P50/P99/mean.

    The paper's service-quality metric is the P99 (tail) latency of
    foreground requests (Section II-D, Exp#1).
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self.samples: list[float] = []

    def record(self, latency: float) -> None:
        """Add one request latency sample (seconds)."""
        if latency < 0:
            raise SimulationError("latency cannot be negative")
        self.samples.append(latency)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]); 0.0 when empty."""
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, q))

    @property
    def p50(self) -> float:
        """Median latency in seconds."""
        return self.percentile(50)

    @property
    def p99(self) -> float:
        """Tail (99th percentile) latency in seconds."""
        return self.percentile(99)

    @property
    def mean(self) -> float:
        """Mean latency in seconds."""
        return float(np.mean(self.samples)) if self.samples else 0.0

    @property
    def max(self) -> float:
        """Worst observed latency in seconds."""
        return float(np.max(self.samples)) if self.samples else 0.0

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """A new recorder holding both sample sets (cross-client P99)."""
        merged = LatencyRecorder(self.name)
        merged.samples = self.samples + other.samples
        return merged
