"""Repair throughput accounting."""

from __future__ import annotations

from repro.errors import SimulationError


class RepairThroughputMeter:
    """Tracks repaired bytes over time.

    Repair throughput is "the amount of data being repaired per time
    unit" (Section V-A); the meter also exposes a windowed time-series
    for the adaptivity experiment (Exp#4, Fig. 15).
    """

    def __init__(self) -> None:
        self.events: list[tuple[float, float]] = []  # (time, bytes)
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def start(self, time: float) -> None:
        """Mark the repair batch as started at simulated ``time``."""
        self.started_at = time

    def record_repair(self, time: float, nbytes: float) -> None:
        """Record one repaired chunk of ``nbytes`` at simulated ``time``."""
        if nbytes <= 0:
            raise SimulationError("repaired bytes must be positive")
        self.events.append((time, nbytes))

    def finish(self, time: float) -> None:
        """Mark the repair batch as finished at simulated ``time``."""
        self.finished_at = time

    @property
    def repaired_bytes(self) -> float:
        """Total bytes repaired so far."""
        return sum(nbytes for _, nbytes in self.events)

    @property
    def chunks_repaired(self) -> int:
        """Number of chunk-repair completions recorded."""
        return len(self.events)

    @property
    def elapsed(self) -> float:
        """Seconds from start to finish (or to the last completion)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at
        if end is None:
            end = max((t for t, _ in self.events), default=self.started_at)
        return max(end - self.started_at, 0.0)

    @property
    def throughput(self) -> float:
        """Average repair throughput in bytes/second."""
        elapsed = self.elapsed
        return self.repaired_bytes / elapsed if elapsed > 0 else 0.0

    def windowed_throughput(self, window: float, until: float | None = None):
        """(window_start, bytes/s) series; used for Fig. 15 time plots."""
        if window <= 0:
            raise SimulationError("window must be positive")
        if self.started_at is None:
            return []
        end = until if until is not None else (
            self.finished_at
            if self.finished_at is not None
            else max((t for t, _ in self.events), default=self.started_at)
        )
        series = []
        t = self.started_at
        while t < end:
            hi = t + window
            moved = sum(b for ts, b in self.events if t <= ts < hi)
            series.append((t, moved / window))
            t = hi
        return series
