"""Interference-degree metric (Exp#2)."""

from __future__ import annotations

from repro.errors import SimulationError


def interference_degree(time_with_repair: float, time_without_repair: float) -> float:
    """Relative slowdown of a trace caused by concurrent repair.

    Defined in Exp#2 as ``T*/T - 1`` where ``T`` is the trace execution
    time without repair and ``T*`` the time under repair.
    """
    if time_without_repair <= 0:
        raise SimulationError("baseline trace time must be positive")
    if time_with_repair < 0:
        raise SimulationError("trace time cannot be negative")
    return time_with_repair / time_without_repair - 1.0


def improvement_ratio(new: float, old: float) -> float:
    """Relative improvement ``new/old - 1`` (positive = better)."""
    if old <= 0:
        raise SimulationError("baseline must be positive")
    return new / old - 1.0
