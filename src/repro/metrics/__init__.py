"""Measurement utilities: latency, throughput, interference, link stats."""

from repro.metrics.interference import improvement_ratio, interference_degree
from repro.metrics.latency import LatencyRecorder
from repro.metrics.linkstats import REPAIR_TAG, LinkStatsCollector, LinkWindowSeries
from repro.metrics.throughput import RepairThroughputMeter

__all__ = [
    "REPAIR_TAG",
    "LatencyRecorder",
    "LinkStatsCollector",
    "LinkWindowSeries",
    "RepairThroughputMeter",
    "improvement_ratio",
    "interference_degree",
]
