"""Terminal repair outcomes under faults."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.stripes import ChunkId


@dataclass
class ToleranceExceeded:
    """A crash pushed some stripes beyond the code's fault tolerance.

    Reported by the repair drivers instead of raising mid-simulation:
    the run completes, the repairable chunks are repaired, and the lost
    ones are accounted for here. ``bool(outcome)`` is truthy, so
    ``if runner.tolerance_exceeded:`` reads naturally.
    """

    failed_nodes: tuple[int, ...]
    lost_chunks: tuple[ChunkId, ...] = field(default_factory=tuple)
    at: float = 0.0

    def __str__(self) -> str:
        return (
            f"tolerance exceeded at t={self.at:.2f}s: "
            f"{len(self.lost_chunks)} chunk(s) unrecoverable after "
            f"node failures {sorted(self.failed_nodes)}"
        )
