"""Runtime fault injection and recovery (``repro.faults``).

The paper's central claim is adaptivity: ChameleonEC re-tunes repair
plans when node conditions change *mid-repair* (Section III-C, Exp#4,
Exp#6). This subsystem makes such churn injectable and deterministic:

* :class:`FaultTimeline` — a seedable schedule of fault events (node
  crashes, disk/NIC degradation with recovery, transient stragglers,
  single-flow interruptions, network partitions with automatic heal,
  silent payload corruption and latent sector errors) executed against
  the simulator's virtual clock;
* :class:`ToleranceExceeded` — the graceful outcome reported when a
  crash exhausts the erasure code's fault tolerance (instead of an
  unhandled exception mid-simulation).

Recovery itself lives where the scheduling decisions are made:
:class:`repro.repair.runner.RepairRunner` and
:class:`repro.core.chameleon.ChameleonRepair` retry failed chunk repairs
with backoff and re-plan around newly dead or degraded helpers. Every
fault and every retry lands in the Chrome trace and the ``faults.*`` /
``repair.retry.*`` metrics.
"""

from repro.faults.outcomes import ToleranceExceeded
from repro.faults.timeline import (
    BandwidthDegradation,
    CoordinatorCrash,
    FaultEvent,
    FaultTimeline,
    FlowInterruption,
    LatentSectorError,
    NetworkPartition,
    NodeCrash,
    SilentCorruption,
    TransientStraggler,
)

__all__ = [
    "BandwidthDegradation",
    "CoordinatorCrash",
    "FaultEvent",
    "FaultTimeline",
    "FlowInterruption",
    "LatentSectorError",
    "NetworkPartition",
    "NodeCrash",
    "SilentCorruption",
    "ToleranceExceeded",
    "TransientStraggler",
]
