"""A deterministic, seedable schedule of runtime faults.

A :class:`FaultTimeline` is built up front (explicitly, event by event,
or via the seeded :meth:`FaultTimeline.churn` generator) and then
*armed* against a cluster: every event is scheduled on the simulator at
``arm-time + event.at`` seconds of virtual time. Event times are
relative offsets so the same timeline can be armed "when the repair
starts" without knowing that absolute timestamp in advance.

Event kinds:

* :class:`NodeCrash` — the node dies mid-run: all live repair transfers
  crossing any of its resources fail (their owners are notified and
  retry), and the node's chunks become new repair targets;
* :class:`BandwidthDegradation` — a node's disk/NIC capacity drops to a
  fraction for a duration, then recovers (ageing disks, throttled NICs);
* :class:`TransientStraggler` — a degradation with straggler semantics:
  onset + duration, default severity deep enough to trip the
  coordinator's straggler detection;
* :class:`FlowInterruption` — one (or a few) in-flight repair transfers
  are killed outright (a TCP reset, an I/O error on a source);
* :class:`SilentCorruption` — bit-rot: random bytes of a stored payload
  flip with *no externally visible signal* (no node dies, no transfer
  fails, no hook fires toward detectors — only the ``corrupted``
  bookkeeping hook for ledgers). Detection is entirely up to checksum
  verification (scrubber, verified repair, degraded reads);
* :class:`LatentSectorError` — the chunk's sectors become unreadable:
  every subsequent checksum verification of the chunk fails;
* :class:`CoordinatorCrash` — the repair *control plane* dies: the live
  repair coordinator is torn down mid-run (all its in-flight plan
  transfers cancelled), leaving recovery to whatever durable state it
  journalled (see :mod:`repro.journal` and
  :meth:`repro.api.Testbed.recover_repairer`);
* :class:`NetworkPartition` — the cluster splits into connectivity
  groups for a duration: every node stays *alive*, but traffic between
  groups is blackholed. Live transfers crossing the cut stall (their
  in-flight slice is re-sent after heal), new cross-cut slices are
  refused, and heal restores connectivity and releases the stalled
  transfers. The only fault kind where timeout is the wrong detector —
  see :class:`repro.monitor.FailureDetector` for the accrual detector
  that suspects unreachable helpers before ``chunk_timeout`` fires.

Overlapping degradations compose multiplicatively and restore exactly:
the timeline tracks each resource's base capacity and the stack of
active multipliers, so recovery never clobbers a concurrent fault.

Determinism: two timelines built with the same seed and the same calls
produce identical event sequences, and — because execution draws only on
the timeline's own RNG in virtual-time order — identical injections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.datastore import ChunkStore
from repro.cluster.failures import FailureInjector, FailureReport
from repro.cluster.stripes import ChunkId
from repro.cluster.topology import Cluster
from repro.errors import SimulationError
from repro.events import HookEmitter
from repro.metrics.linkstats import REPAIR_TAG, SCRUB_TAG
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.sim.resources import Resource

#: Resource kinds a degradation may target.
RESOURCE_KINDS = ("uplink", "downlink", "disk_read", "disk_write")

#: Never throttle a resource below this fraction of its base capacity
#: (capacities must stay positive and estimates finite).
_MIN_CAPACITY_FRACTION = 1e-3


@dataclass(frozen=True)
class FaultEvent:
    """Base fault event; ``at`` is seconds after the timeline is armed."""

    at: float


@dataclass(frozen=True)
class NodeCrash(FaultEvent):
    """Node ``node_id`` dies ``at`` seconds after arming."""

    node_id: int


@dataclass(frozen=True)
class BandwidthDegradation(FaultEvent):
    """Capacity of the node's ``resources`` drops to ``factor`` for ``duration``."""

    node_id: int
    factor: float
    duration: float
    resources: tuple[str, ...] = ("uplink", "downlink")


@dataclass(frozen=True)
class TransientStraggler(FaultEvent):
    """The node straggles (links at ``severity`` of capacity) for ``duration``."""

    node_id: int
    duration: float
    severity: float = 0.1


@dataclass(frozen=True)
class FlowInterruption(FaultEvent):
    """Kill ``count`` in-flight repair transfers (seeded-random victims)."""

    count: int = 1


@dataclass(frozen=True)
class SilentCorruption(FaultEvent):
    """Flip ``flips`` bytes of ``chunk``'s stored payload, silently.

    ``chunk=None`` picks a random stored chunk at execution time (drawn
    from the timeline's own RNG over the store's deterministic chunk
    order, so equal seeds corrupt equal chunks).
    """

    chunk: ChunkId | None = None
    flips: int = 1


@dataclass(frozen=True)
class LatentSectorError(FaultEvent):
    """``chunk``'s sectors become unreadable (None = random stored chunk)."""

    chunk: ChunkId | None = None


@dataclass(frozen=True)
class CoordinatorCrash(FaultEvent):
    """The repair coordinator process dies ``at`` seconds after arming.

    A *control-plane* fault: no stored bytes are harmed and no node
    dies, but the coordinator's in-memory scheduling state evaporates
    and every repair transfer it owned is cancelled. The timeline only
    emits the ``coordinator_crashed`` hook — tearing down the actual
    repairer object(s) is the subscriber's job (the
    :class:`repro.api.Testbed` wires this to ``repairer.crash()``).

    ``shard`` targets one partition of a sharded control plane: only
    that shard's coordinator dies, sibling shards keep repairing.
    ``None`` (the default) kills every live coordinator — the whole
    plane, matching the pre-sharding behaviour.
    """

    shard: int | None = None


@dataclass(frozen=True)
class NetworkPartition(FaultEvent):
    """The cluster splits into ``groups`` for ``duration`` seconds.

    ``groups`` is a tuple of node-id tuples; any node not named joins
    implicit group 0, so a single-group partition isolates that group
    from the rest of the cluster. Nodes stay alive and keep serving
    traffic *within* their side of the cut; only cross-group movement
    stalls. The heal is scheduled automatically at ``at + duration``.
    """

    groups: tuple[tuple[int, ...], ...] = ()
    duration: float = 1.0


@dataclass
class _Throttle:
    """Bookkeeping for one resource under one or more active faults."""

    base_capacity: float
    multipliers: list[float] = field(default_factory=list)

    def effective(self) -> float:
        capacity = self.base_capacity
        for m in self.multipliers:
            capacity *= m
        return max(capacity, self.base_capacity * _MIN_CAPACITY_FRACTION)


class FaultTimeline(HookEmitter):
    """Seedable fault schedule, armed once against a cluster."""

    HOOK_EVENTS = (
        "fault",
        "node_crashed",
        "degraded",
        "recovered",
        "flow_interrupted",
        "corrupted",
        "sector_error",
        "coordinator_crashed",
        "partitioned",
        "healed",
    )

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.events: list[FaultEvent] = []
        self.injected: list[FaultEvent] = []
        self.cluster: Cluster | None = None
        self.injector: FailureInjector | None = None
        self.chunk_store: ChunkStore | None = None
        self._armed = False
        self._throttles: dict[str, _Throttle] = {}

    # -- building the schedule -------------------------------------------------

    def crash(self, at: float, node_id: int) -> "FaultTimeline":
        """Schedule a node crash."""
        self._add(NodeCrash(at=self._check_at(at), node_id=node_id))
        return self

    def degrade(
        self,
        at: float,
        node_id: int,
        *,
        factor: float,
        duration: float,
        resources: tuple[str, ...] = ("uplink", "downlink"),
    ) -> "FaultTimeline":
        """Schedule a bandwidth degradation with recovery after ``duration``."""
        if not 0 < factor <= 1:
            raise SimulationError("degradation factor must lie in (0, 1]")
        if duration <= 0:
            raise SimulationError("degradation duration must be positive")
        unknown = set(resources) - set(RESOURCE_KINDS)
        if unknown:
            raise SimulationError(
                f"unknown resource kind(s) {sorted(unknown)}; "
                f"choose from {RESOURCE_KINDS}"
            )
        self._add(
            BandwidthDegradation(
                at=self._check_at(at),
                node_id=node_id,
                factor=factor,
                duration=duration,
                resources=tuple(resources),
            )
        )
        return self

    def straggler(
        self, at: float, node_id: int, *, duration: float, severity: float = 0.1
    ) -> "FaultTimeline":
        """Schedule a transient straggler (onset ``at``, given ``duration``)."""
        if not 0 < severity <= 1:
            raise SimulationError("straggler severity must lie in (0, 1]")
        if duration <= 0:
            raise SimulationError("straggler duration must be positive")
        self._add(
            TransientStraggler(
                at=self._check_at(at),
                node_id=node_id,
                duration=duration,
                severity=severity,
            )
        )
        return self

    def interrupt_flow(self, at: float, count: int = 1) -> "FaultTimeline":
        """Schedule the interruption of ``count`` in-flight repair transfers."""
        if count < 1:
            raise SimulationError("must interrupt at least one flow")
        self._add(FlowInterruption(at=self._check_at(at), count=count))
        return self

    def corrupt(
        self, at: float, chunk: ChunkId | None = None, *, flips: int = 1
    ) -> "FaultTimeline":
        """Schedule a silent corruption (``chunk=None`` = random victim)."""
        if flips < 1:
            raise SimulationError("corruption must flip at least one byte")
        self._add(SilentCorruption(at=self._check_at(at), chunk=chunk, flips=flips))
        return self

    def sector_error(
        self, at: float, chunk: ChunkId | None = None
    ) -> "FaultTimeline":
        """Schedule a latent sector error (``chunk=None`` = random victim)."""
        self._add(LatentSectorError(at=self._check_at(at), chunk=chunk))
        return self

    def crash_coordinator(
        self, at: float, shard: int | None = None
    ) -> "FaultTimeline":
        """Schedule a repair control-plane crash.

        ``shard`` kills only that partition's coordinator; ``None``
        kills the whole plane.
        """
        if shard is not None and shard < 0:
            raise SimulationError("shard id must be >= 0")
        self._add(CoordinatorCrash(at=self._check_at(at), shard=shard))
        return self

    def partition(
        self, at: float, groups, *, duration: float
    ) -> "FaultTimeline":
        """Schedule a network partition healing after ``duration``.

        ``groups`` is an iterable of node-id groups (e.g. ``[[3, 4]]``
        isolates nodes 3 and 4 from everyone else; ``[[0, 1], [2, 3]]``
        makes a three-way split with the unlisted rest). A node may
        appear in at most one group.
        """
        if duration <= 0:
            raise SimulationError("partition duration must be positive")
        normalized = tuple(
            tuple(int(n) for n in members) for members in groups
        )
        if not normalized or not any(normalized):
            raise SimulationError("a partition needs at least one named node")
        seen: set[int] = set()
        for members in normalized:
            for node_id in members:
                if node_id in seen:
                    raise SimulationError(
                        f"node {node_id} appears in two partition groups"
                    )
                seen.add(node_id)
        self._add(
            NetworkPartition(
                at=self._check_at(at), groups=normalized, duration=duration
            )
        )
        return self

    def partitions(
        self,
        *,
        nodes: list[int],
        horizon: float,
        count: int = 1,
        duration: tuple[float, float] = (2.0, 6.0),
        group_fraction: tuple[float, float] = (0.2, 0.5),
    ) -> "FaultTimeline":
        """Generate seeded partition waves over ``[0, horizon)``.

        Each wave isolates a random ``group_fraction`` slice of
        ``nodes`` from the rest of the cluster for a random duration —
        the repeated-partition regime that composes with
        :meth:`churn` and :meth:`fluctuate` on the same timeline. Two
        timelines with equal seeds and equal calls build identical
        waves.
        """
        if horizon <= 0:
            raise SimulationError("partition horizon must be positive")
        if count < 1:
            raise SimulationError("need at least one partition wave")
        if len(nodes) < 2:
            raise SimulationError("partitions need at least two candidate nodes")
        lo, hi = duration
        if not 0 < lo <= hi:
            raise SimulationError("duration bounds must satisfy 0 < low <= high")
        flo, fhi = group_fraction
        if not 0 < flo <= fhi < 1:
            raise SimulationError(
                "group_fraction bounds must satisfy 0 < low <= high < 1"
            )
        rng = self.rng
        for _ in range(count):
            onset = float(rng.uniform(0, horizon))
            fraction = float(rng.uniform(flo, fhi))
            size = int(round(fraction * len(nodes)))
            size = max(1, min(size, len(nodes) - 1))
            picks = rng.choice(np.asarray(nodes), size=size, replace=False)
            self.partition(
                onset,
                [sorted(int(n) for n in picks)],
                duration=float(rng.uniform(lo, hi)),
            )
        return self

    def rot(
        self,
        *,
        chunks: list[ChunkId],
        horizon: float,
        corruptions: int = 0,
        sector_errors: int = 0,
        flips: int = 1,
        max_per_stripe: int | None = None,
    ) -> "FaultTimeline":
        """Generate seeded bit-rot over ``[0, horizon)`` — churn's twin.

        Victims for corruptions *and* sector errors are drawn from
        ``chunks`` in one combined draw without replacement, so no chunk
        is hit twice and every scheduled event damages a distinct chunk
        (which keeps detection accounting exact: injected == damaged).
        ``max_per_stripe`` bounds how many victims share a stripe —
        pass ``m - 1`` (or less, if nodes also fail) to keep the damage
        within the code's repair tolerance; the uncapped default models
        rot that has no respect for stripe boundaries. Two timelines
        with equal seeds and equal ``rot`` calls build identical event
        sequences.
        """
        if horizon <= 0:
            raise SimulationError("rot horizon must be positive")
        if corruptions < 0 or sector_errors < 0:
            raise SimulationError("rot event counts cannot be negative")
        if max_per_stripe is not None and max_per_stripe < 1:
            raise SimulationError("max_per_stripe must be >= 1 (or None)")
        total = corruptions + sector_errors
        if total == 0:
            return self
        if not chunks:
            raise SimulationError("rot needs candidate chunks")
        if total > len(chunks):
            raise SimulationError("cannot damage more chunks than candidates")
        rng = self.rng
        # ChunkId is frozen but unordered; sort by (stripe, index) so the
        # draw is independent of the caller's list order.
        pool = sorted(set(chunks), key=lambda c: (c.stripe, c.index))
        if len(pool) != len(chunks):
            raise SimulationError("rot candidate chunks must be unique")
        if max_per_stripe is None:
            picks = rng.choice(len(pool), size=total, replace=False)
            victims = [pool[int(i)] for i in picks]
        else:
            per_stripe: dict[int, int] = {}
            victims = []
            for i in rng.permutation(len(pool)):
                chunk = pool[int(i)]
                if per_stripe.get(chunk.stripe, 0) >= max_per_stripe:
                    continue
                per_stripe[chunk.stripe] = per_stripe.get(chunk.stripe, 0) + 1
                victims.append(chunk)
                if len(victims) == total:
                    break
            if len(victims) < total:
                raise SimulationError(
                    f"cannot place {total} rot victims with at most "
                    f"{max_per_stripe} per stripe"
                )
        for chunk in victims[:corruptions]:
            self.corrupt(float(rng.uniform(0, horizon)), chunk, flips=flips)
        for chunk in victims[corruptions:]:
            self.sector_error(float(rng.uniform(0, horizon)), chunk)
        return self

    def fluctuate(
        self,
        *,
        nodes: list[int],
        horizon: float,
        period: float,
        amplitude: tuple[float, float] = (0.3, 0.9),
        fraction: float = 0.5,
        resources: tuple[str, ...] = ("uplink", "downlink"),
    ) -> "FaultTimeline":
        """Generate rapidly-fluctuating link bandwidth over ``[0, horizon)``.

        Models the "rapidly-changing network" regime (see PAPERS.md:
        *Multi-level Forwarding and Scheduling Recovery in
        Rapidly-changing Network*): every ``period`` seconds a seeded
        subset of ``fraction`` × len(nodes) nodes gets its link capacity
        cut to a factor drawn uniformly from ``amplitude``, recovering
        before the next wave lands — so the usable bandwidth surface
        shifts continuously under foreground, repair, and scrub traffic
        alike. Built entirely from :class:`BandwidthDegradation` events,
        so overlaps with other faults compose multiplicatively as usual.
        Two timelines with equal seeds and equal calls build identical
        waves.
        """
        if horizon <= 0:
            raise SimulationError("fluctuation horizon must be positive")
        if period <= 0 or period > horizon:
            raise SimulationError("fluctuation period must lie in (0, horizon]")
        if not nodes:
            raise SimulationError("fluctuation needs candidate nodes")
        low, high = amplitude
        if not 0 < low <= high <= 1:
            raise SimulationError("amplitude bounds must satisfy 0 < low <= high <= 1")
        if not 0 < fraction <= 1:
            raise SimulationError("fraction must lie in (0, 1]")
        rng = self.rng
        victims_per_wave = max(1, int(round(fraction * len(nodes))))
        waves = int(horizon / period)
        for wave in range(waves):
            onset = wave * period
            # Each wave ends just before the next begins; jitter the
            # per-node onset inside the first fifth of the period so
            # waves ramp rather than step.
            picks = rng.choice(
                np.asarray(nodes), size=victims_per_wave, replace=False
            )
            for node_id in picks:
                jitter = float(rng.uniform(0, 0.2 * period))
                duration = period - jitter - 1e-3 * period
                start = onset + jitter
                if start + duration > horizon:
                    duration = max(horizon - start, 1e-3 * period)
                self.degrade(
                    start,
                    int(node_id),
                    factor=float(rng.uniform(low, high)),
                    duration=duration,
                    resources=resources,
                )
        return self

    def churn(
        self,
        *,
        nodes: list[int],
        horizon: float,
        crashes: int = 0,
        stragglers: int = 0,
        degradations: int = 0,
        interruptions: int = 0,
        straggler_duration: float = 3.0,
        degradation_factor: float = 0.3,
    ) -> "FaultTimeline":
        """Generate a random-but-seeded mix of events over ``[0, horizon)``.

        Crash targets are drawn without replacement (a node dies once);
        everything else samples ``nodes`` independently. Two timelines
        with equal seeds and equal ``churn`` calls build identical event
        sequences.
        """
        if horizon <= 0:
            raise SimulationError("churn horizon must be positive")
        if not nodes:
            raise SimulationError("churn needs candidate nodes")
        if crashes > len(nodes):
            raise SimulationError("cannot crash more nodes than candidates")
        rng = self.rng
        crash_targets = rng.choice(np.asarray(nodes), size=crashes, replace=False)
        for node_id in crash_targets:
            self.crash(float(rng.uniform(0, horizon)), int(node_id))
        for _ in range(stragglers):
            self.straggler(
                float(rng.uniform(0, horizon)),
                int(rng.choice(np.asarray(nodes))),
                duration=straggler_duration,
                severity=float(rng.uniform(0.05, 0.2)),
            )
        for _ in range(degradations):
            self.degrade(
                float(rng.uniform(0, horizon)),
                int(rng.choice(np.asarray(nodes))),
                factor=degradation_factor,
                duration=float(rng.uniform(1.0, horizon / 2)),
            )
        for _ in range(interruptions):
            self.interrupt_flow(float(rng.uniform(0, horizon)))
        return self

    def sorted_events(self) -> list[FaultEvent]:
        """The schedule in injection order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.at)

    # -- arming ---------------------------------------------------------------

    def arm(
        self,
        cluster: Cluster,
        injector: FailureInjector | None = None,
        chunk_store: ChunkStore | None = None,
    ) -> None:
        """Schedule every event at ``cluster.sim.now + event.at``.

        ``injector`` is required when the schedule contains crashes (a
        crash must know which chunks the dead node held); ``chunk_store``
        is required when it contains corruption or sector-error events
        (bit-rot damages actual stored bytes).
        """
        if self._armed:
            raise SimulationError("fault timeline already armed")
        if injector is None and any(isinstance(e, NodeCrash) for e in self.events):
            raise SimulationError("crash events need a FailureInjector")
        if chunk_store is None and any(
            isinstance(e, (SilentCorruption, LatentSectorError)) for e in self.events
        ):
            raise SimulationError("corruption events need a ChunkStore")
        self._armed = True
        self.cluster = cluster
        self.injector = injector
        self.chunk_store = chunk_store
        base = cluster.sim.now
        for event in self.sorted_events():
            cluster.sim.call_at(base + event.at, self._execute, event)

    @property
    def armed(self) -> bool:
        """True once :meth:`arm` ran."""
        return self._armed

    # -- execution ------------------------------------------------------------

    def _execute(self, event: FaultEvent) -> None:
        assert self.cluster is not None
        self.injected.append(event)
        if isinstance(event, NodeCrash):
            self._run_crash(event)
        elif isinstance(event, TransientStraggler):
            self._run_throttle(
                event.node_id,
                ("uplink", "downlink"),
                event.severity,
                event.duration,
                kind="straggler",
            )
        elif isinstance(event, BandwidthDegradation):
            self._run_throttle(
                event.node_id,
                event.resources,
                event.factor,
                event.duration,
                kind="degradation",
            )
        elif isinstance(event, FlowInterruption):
            self._run_interruption(event)
        elif isinstance(event, SilentCorruption):
            self._run_corruption(event)
        elif isinstance(event, LatentSectorError):
            self._run_sector_error(event)
        elif isinstance(event, CoordinatorCrash):
            self._run_coordinator_crash(event)
        elif isinstance(event, NetworkPartition):
            self._run_partition(event)
        else:  # pragma: no cover - the event set is closed
            raise SimulationError(f"unknown fault event {event!r}")

    def _run_crash(self, event: NodeCrash) -> None:
        assert self.cluster is not None and self.injector is not None
        node = self.cluster.node(event.node_id)
        if not node.alive:
            return
        report: FailureReport = self.injector.crash_node(event.node_id)
        # Every in-flight repair movement touching the dead node is lost;
        # foreground service continues (degraded reads keep serving).
        victims = self.cluster.transfers.fail_crossing(
            node.all_resources(),
            f"node {event.node_id} crashed",
            tag=REPAIR_TAG,
        )
        # Scrub reads crossing the dead node die too (their owner just
        # paces on to the next chunk; they are not repair work to retry).
        self.cluster.transfers.fail_crossing(
            node.all_resources(),
            f"node {event.node_id} crashed",
            tag=SCRUB_TAG,
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.crash",
                track="faults",
                node=event.node_id,
                failed_chunks=len(report.failed_chunks),
                failed_transfers=len(victims),
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.crashes").inc()
            registry.counter("faults.transfers_killed").inc(len(victims))
        self.emit("fault", self, event=event)
        self.emit(
            "node_crashed",
            self,
            node_id=event.node_id,
            report=report,
            failed_transfers=victims,
        )

    def _run_throttle(
        self,
        node_id: int,
        resources: tuple[str, ...],
        factor: float,
        duration: float,
        *,
        kind: str,
    ) -> None:
        assert self.cluster is not None
        node = self.cluster.node(node_id)
        targets = [getattr(node, name) for name in resources]
        for res in targets:
            throttle = self._throttles.get(res.name)
            if throttle is None:
                throttle = self._throttles[res.name] = _Throttle(res.capacity)
            throttle.multipliers.append(factor)
            res.set_capacity(throttle.effective())
        self.cluster.flows.capacity_changed(*targets)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                f"fault.{kind}",
                track="faults",
                node=node_id,
                factor=factor,
                duration=duration,
                resources=list(resources),
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter(f"faults.{kind}s").inc()
        self.emit("fault", self, event=None, kind=kind, node_id=node_id)
        self.emit(
            "degraded", self, node_id=node_id, kind=kind, factor=factor
        )
        self.cluster.sim.schedule(
            duration, self._recover, node_id, tuple(resources), factor, kind
        )

    def _recover(
        self,
        node_id: int,
        resources: tuple[str, ...],
        factor: float,
        kind: str,
    ) -> None:
        assert self.cluster is not None
        node = self.cluster.node(node_id)
        targets = [getattr(node, name) for name in resources]
        for res in targets:
            throttle = self._throttles.get(res.name)
            if throttle is None:  # pragma: no cover - recovery implies a throttle
                continue
            if factor in throttle.multipliers:
                throttle.multipliers.remove(factor)
            res.set_capacity(throttle.effective())
        self.cluster.flows.capacity_changed(*targets)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                f"fault.{kind}.recovered", track="faults", node=node_id
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.recoveries").inc()
        self.emit("recovered", self, node_id=node_id, kind=kind)

    def _run_interruption(self, event: FlowInterruption) -> None:
        assert self.cluster is not None
        live = self.cluster.transfers.live_transfers(tag=REPAIR_TAG)
        if not live:
            return
        count = min(event.count, len(live))
        picks = self.rng.choice(len(live), size=count, replace=False)
        victims = [live[int(i)] for i in sorted(picks)]
        for transfer in victims:
            self.cluster.transfers.fail(transfer, "flow interrupted")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.interruption",
                track="faults",
                transfers=[t.name for t in victims],
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.interruptions").inc(len(victims))
        self.emit("fault", self, event=event)
        self.emit("flow_interrupted", self, transfers=victims)

    def _resolve_victim(self, chunk: ChunkId | None) -> ChunkId | None:
        """The chunk an integrity fault lands on, or None to skip.

        Explicit targets whose payload is gone (their node died and took
        the bytes with it) are skipped — there is nothing left to rot.
        Random targets draw from the store's deterministic chunk order.
        """
        assert self.chunk_store is not None
        if chunk is not None:
            return chunk if self.chunk_store.has(chunk) else None
        candidates = list(self.chunk_store.chunks())
        if not candidates:
            return None
        return candidates[int(self.rng.integers(len(candidates)))]

    def _run_corruption(self, event: SilentCorruption) -> None:
        assert self.chunk_store is not None
        chunk = self._resolve_victim(event.chunk)
        if chunk is None:
            return
        positions = self.chunk_store.corrupt(
            chunk, rng=self.rng, flips=event.flips
        )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.corruption",
                track="faults",
                stripe=chunk.stripe,
                index=chunk.index,
                flips=len(positions),
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.corruption.injected").inc()
            registry.counter("faults.corruption.bytes_flipped").inc(len(positions))
        self.emit("fault", self, event=event)
        self.emit("corrupted", self, chunk=chunk, positions=positions)

    def _run_sector_error(self, event: LatentSectorError) -> None:
        assert self.chunk_store is not None
        chunk = self._resolve_victim(event.chunk)
        if chunk is None or self.chunk_store.is_unreadable(chunk):
            return
        self.chunk_store.mark_unreadable(chunk)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.sector_error",
                track="faults",
                stripe=chunk.stripe,
                index=chunk.index,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.corruption.sector_errors").inc()
        self.emit("fault", self, event=event)
        self.emit("sector_error", self, chunk=chunk)

    def _run_coordinator_crash(self, event: CoordinatorCrash) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            detail = {} if event.shard is None else {"shard": event.shard}
            tracer.instant("fault.coordinator_crash", track="faults", **detail)
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.coordinator_crashes").inc()
        self.emit("fault", self, event=event)
        self.emit("coordinator_crashed", self, event=event)

    def _run_partition(self, event: NetworkPartition) -> None:
        assert self.cluster is not None
        pid = self.cluster.apply_partition(event.groups)
        stalled = [
            t for t in self.cluster.transfers.live_transfers() if t.stalled
        ]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.partition",
                track="faults",
                groups=[list(g) for g in event.groups],
                duration=event.duration,
                stalled=len(stalled),
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.partitions").inc()
        self.emit("fault", self, event=event)
        self.emit("partitioned", self, event=event, stalled=stalled)
        self.cluster.sim.schedule(
            event.duration, self._heal_partition, pid, event
        )

    def _heal_partition(self, pid: int, event: NetworkPartition) -> None:
        assert self.cluster is not None
        self.cluster.heal_partition(pid)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "fault.partition.healed",
                track="faults",
                groups=[list(g) for g in event.groups],
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("faults.partition_heals").inc()
        self.emit("healed", self, event=event)

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _check_at(at: float) -> float:
        if at < 0:
            raise SimulationError("fault offsets cannot be negative")
        return float(at)

    def _add(self, event: FaultEvent) -> None:
        if self._armed:
            raise SimulationError("cannot add events to an armed timeline")
        self.events.append(event)
