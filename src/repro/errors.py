"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CodingError(ReproError):
    """Erasure-coding failure (bad parameters, undecodable erasure set)."""


class SimulationError(ReproError):
    """Inconsistent simulator state (negative time, orphan flow, ...)."""


class PlanError(ReproError):
    """A repair plan is malformed or cannot be executed."""


class SchedulingError(ReproError):
    """The scheduler could not dispatch tasks or build a plan."""


class ConvergenceError(ReproError, RuntimeError):
    """A bounded simulation run hit its time limit before converging.

    Subclasses :class:`RuntimeError` as well so callers can catch either
    the package hierarchy or the builtin; existing ``except ReproError``
    handlers keep working.
    """
