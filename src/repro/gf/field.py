"""Scalar and vectorised arithmetic over GF(2^8)."""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError
from repro.gf.tables import EXP_TABLE, FIELD_SIZE, INV_TABLE, LOG_TABLE, MUL_TABLE


def gf_add(a: int, b: int) -> int:
    """Add two field elements (XOR in characteristic 2)."""
    return a ^ b


def gf_sub(a: int, b: int) -> int:
    """Subtract two field elements (identical to addition)."""
    return a ^ b


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    return int(MUL_TABLE[a, b])


def gf_div(a: int, b: int) -> int:
    """Divide ``a`` by ``b``; raises on division by zero."""
    if b == 0:
        raise CodingError("division by zero in GF(2^8)")
    if a == 0:
        return 0
    return int(EXP_TABLE[LOG_TABLE[a] - LOG_TABLE[b] + (FIELD_SIZE - 1)])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises for a == 0."""
    if a == 0:
        raise CodingError("0 has no inverse in GF(2^8)")
    return int(INV_TABLE[a])


def gf_pow(a: int, n: int) -> int:
    """Raise ``a`` to the integer power ``n`` (n may be negative)."""
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise CodingError("0 has no inverse in GF(2^8)")
        return 0
    exponent = (LOG_TABLE[a] * n) % (FIELD_SIZE - 1)
    return int(EXP_TABLE[exponent])


def vec_scale(data: np.ndarray, coeff: int) -> np.ndarray:
    """Multiply every byte of ``data`` by the scalar ``coeff``.

    ``data`` must be a uint8 array; a new array is returned.
    """
    if coeff == 0:
        return np.zeros_like(data)
    if coeff == 1:
        return data.copy()
    return MUL_TABLE[coeff][data]


def vec_addmul(acc: np.ndarray, data: np.ndarray, coeff: int) -> None:
    """In-place ``acc ^= coeff * data`` over GF(2^8)."""
    if coeff == 0:
        return
    if coeff == 1:
        np.bitwise_xor(acc, data, out=acc)
    else:
        np.bitwise_xor(acc, MUL_TABLE[coeff][data], out=acc)


def vec_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Byte-wise XOR of two equal-length uint8 arrays."""
    return np.bitwise_xor(a, b)


def as_field_array(data: bytes | bytearray | np.ndarray) -> np.ndarray:
    """Coerce bytes-like input into a uint8 numpy array (no copy if possible)."""
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise CodingError(f"expected uint8 array, got {data.dtype}")
        return data
    return np.frombuffer(bytes(data), dtype=np.uint8)
