"""Matrix algebra over GF(2^8): multiply, invert, solve, code matrices."""

from __future__ import annotations

import numpy as np

from repro.errors import CodingError
from repro.gf.field import gf_inv, gf_pow
from repro.gf.tables import MUL_TABLE


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply two GF(2^8) matrices (uint8 in, uint8 out).

    Implemented row-by-row with the 64 KiB multiplication table and
    XOR-reduction; fast enough for the small (k x k) matrices used in
    erasure coding.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise CodingError(f"matmul shape mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        # products[j, :] = a[i, j] * b[j, :]
        products = MUL_TABLE[a[i][:, None], b]
        out[i] = np.bitwise_xor.reduce(products, axis=0)
    return out


def matvec_data(matrix: np.ndarray, rows: list[np.ndarray]) -> list[np.ndarray]:
    """Apply a coefficient matrix to a list of equal-length data buffers.

    Returns ``len(matrix)`` new buffers where output ``i`` is
    ``xor_j matrix[i, j] * rows[j]`` over GF(2^8).
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.shape[1] != len(rows):
        raise CodingError(
            f"matrix has {matrix.shape[1]} columns but {len(rows)} buffers given"
        )
    outputs: list[np.ndarray] = []
    for i in range(matrix.shape[0]):
        acc = np.zeros_like(rows[0])
        for j, row in enumerate(rows):
            coeff = int(matrix[i, j])
            if coeff == 0:
                continue
            if coeff == 1:
                np.bitwise_xor(acc, row, out=acc)
            else:
                np.bitwise_xor(acc, MUL_TABLE[coeff][row], out=acc)
        outputs.append(acc)
    return outputs


def identity(n: int) -> np.ndarray:
    """The n x n identity matrix over GF(2^8)."""
    return np.eye(n, dtype=np.uint8)


def inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(2^8) matrix via Gauss-Jordan elimination."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise CodingError(f"cannot invert non-square matrix of shape {matrix.shape}")
    work = matrix.astype(np.int32)
    inv = np.eye(n, dtype=np.int32)
    for col in range(n):
        pivot_row = next((r for r in range(col, n) if work[r, col] != 0), None)
        if pivot_row is None:
            raise CodingError("matrix is singular over GF(2^8)")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
            inv[[col, pivot_row]] = inv[[pivot_row, col]]
        pivot_inv = gf_inv(int(work[col, col]))
        work[col] = MUL_TABLE[pivot_inv][work[col]]
        inv[col] = MUL_TABLE[pivot_inv][inv[col]]
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            work[row] ^= MUL_TABLE[factor][work[col]]
            inv[row] ^= MUL_TABLE[factor][inv[col]]
    return inv.astype(np.uint8)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2^8) (rhs may be a matrix)."""
    rhs = np.asarray(rhs, dtype=np.uint8)
    squeeze = rhs.ndim == 1
    if squeeze:
        rhs = rhs[:, None]
    x = matmul(inverse(matrix), rhs)
    return x[:, 0] if squeeze else x


def rank(matrix: np.ndarray) -> int:
    """Rank of a GF(2^8) matrix via Gaussian elimination."""
    work = np.asarray(matrix, dtype=np.uint8).astype(np.int32).copy()
    rows, cols = work.shape
    r = 0
    for col in range(cols):
        if r == rows:
            break
        pivot_row = next((i for i in range(r, rows) if work[i, col] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            work[[r, pivot_row]] = work[[pivot_row, r]]
        pivot_inv = gf_inv(int(work[r, col]))
        work[r] = MUL_TABLE[pivot_inv][work[r]]
        for i in range(rows):
            if i != r and work[i, col] != 0:
                work[i] ^= MUL_TABLE[int(work[i, col])][work[r]]
        r += 1
    return r


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """A ``rows x cols`` Vandermonde matrix with evaluation points 0..rows-1.

    Note: raw Vandermonde matrices are used only through systematisation
    (see :func:`rs_generator_vandermonde`), which guarantees every square
    submatrix relevant to decoding is invertible.
    """
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j) if not (i == 0 and j == 0) else 1
    return out


def cauchy(k: int, m: int) -> np.ndarray:
    """An ``m x k`` Cauchy matrix: entry (i, j) = 1 / (x_i + y_j).

    Uses x_i = k + i and y_j = j, which are disjoint for k + m <= 256.
    Every square submatrix of a Cauchy matrix is invertible, which makes
    the stacked (identity over Cauchy) generator matrix MDS.
    """
    if k + m > 256:
        raise CodingError(f"k + m = {k + m} exceeds GF(2^8) field size")
    out = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            out[i, j] = gf_inv((k + i) ^ j)
    return out


def rs_generator_cauchy(k: int, m: int) -> np.ndarray:
    """Systematic ``(k+m) x k`` RS generator matrix built from a Cauchy matrix."""
    return np.vstack([identity(k), cauchy(k, m)])


def rs_generator_vandermonde(k: int, m: int) -> np.ndarray:
    """Systematic ``(k+m) x k`` RS generator via Vandermonde systematisation.

    Builds a (k+m) x k Vandermonde matrix with distinct evaluation points
    and right-multiplies by the inverse of its top k x k block, yielding
    an MDS systematic generator (the classic Jerasure construction).
    """
    if k + m > 256:
        raise CodingError(f"k + m = {k + m} exceeds GF(2^8) field size")
    vand = np.zeros((k + m, k), dtype=np.uint8)
    for i in range(k + m):
        for j in range(k):
            vand[i, j] = gf_pow(i + 1, j)
    top_inv = inverse(vand[:k])
    return matmul(vand, top_inv)


def is_mds(generator: np.ndarray, k: int) -> bool:
    """Check the MDS property: every k x k row-submatrix is invertible.

    Exhaustive over all row subsets; intended for tests with small k+m.
    """
    from itertools import combinations

    n = generator.shape[0]
    for subset in combinations(range(n), k):
        if rank(generator[list(subset)]) != k:
            return False
    return True
