"""Exp#16: coordinator failover — crash timing vs repair-time inflation.

ChameleonEC's scheduler is a centralized coordinator (Section III); the
journal subsystem (``repro.journal``) makes its scheduling state durable
so a control-plane crash costs downtime, not correctness. This
experiment quantifies that cost: a :class:`repro.faults.CoordinatorCrash`
kills the coordinator at a swept fraction of the crash-free repair time,
a replacement recovers from the journal ``MTTR_FRACTION`` of the
crash-free time later, and each run measures

* **repair-time inflation** — wall-to-wall repair completion (first
  dispatch to last verified write-back, crash downtime included)
  relative to the crash-free baseline;
* **foreground P99 inflation** — the client tail latency relative to
  the same baseline (a late crash re-runs little work; an early crash
  repeats almost the whole batch against the foreground);
* **exactly-once accounting** — chunks repaired by both incarnations
  (must be 0), chunks requeued at recovery, chunks the journal proved
  committed, and post-run checksum failures (must be 0).

Runs use verified repair (integrity enabled) so "repaired" means
byte-exact, and the journal's replay is reconciled against the chunk
store — the full recovery path, not just the happy path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig

#: Crash offset as a fraction of the crash-free repair time
#: (None = no crash: the baseline).
CRASH_FRACTIONS = (None, 0.2, 0.5, 0.8)

#: Control-plane mean-time-to-recovery, as a fraction of the crash-free
#: repair time (the failure detector + replacement start-up window).
MTTR_FRACTION = 0.25

#: Chunk size for this experiment (MB); smaller than the repair
#: experiments' 64 MB so multiple incarnations fit a bounded window.
CHUNK_MB = 16.0


@dataclass
class FailoverRun:
    """One (crash timing) measurement."""

    crash_frac: float | None
    repair_time: float
    p99_latency: float
    chunks: int
    completed_before: int
    completed_after: int
    requeued: int
    proven_committed: int
    duplicates: int
    unverified: int
    journal_records: int
    lost: int


def run_one(
    config: ExperimentConfig,
    crash_frac: float | None,
    *,
    baseline_time: float | None = None,
) -> FailoverRun:
    """One run: foreground + repair (+ optional crash & auto-recovery)."""
    testbed = Testbed.build(config)
    testbed.enable_journal()
    testbed.enable_integrity()
    testbed.start_foreground()
    # Let the monitor observe pure foreground before the failure.
    testbed.cluster.sim.run(until=testbed.cluster.sim.now + 2.0)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer("ChameleonEC")
    start = testbed.cluster.sim.now
    repairer.repair(report.failed_chunks)
    if crash_frac is not None:
        assert baseline_time is not None, "crash runs need the baseline time"
        testbed.inject_coordinator_crash(
            crash_frac * baseline_time,
            recover_after=MTTR_FRACTION * baseline_time,
        )
    testbed.run_until(
        lambda: bool(testbed.repairers)
        and all(
            not getattr(r, "crashed", False) and r.done for r in testbed.repairers
        ),
        step=1.0,
    )
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=1.0)

    survivor = testbed.repairers[-1]
    end = survivor.meter.finished_at
    recovery = getattr(survivor, "recovery", None)
    before = repairer.completed if survivor is not repairer else []
    duplicates = len(set(before) & set(survivor.completed))
    unverified = sum(
        1 for c in report.failed_chunks if not testbed.chunk_store.verify(c)
    )
    return FailoverRun(
        crash_frac=crash_frac,
        repair_time=(end if end is not None else testbed.cluster.sim.now) - start,
        p99_latency=testbed.latency.p99 if testbed.latency else 0.0,
        chunks=len(report.failed_chunks),
        completed_before=len(before),
        completed_after=len(survivor.completed),
        requeued=len(recovery.requeue) if recovery is not None else 0,
        proven_committed=len(recovery.completed) if recovery is not None else 0,
        duplicates=duplicates,
        unverified=unverified,
        journal_records=len(testbed.journal) + testbed.journal.compacted_records,
        lost=len(survivor.lost),
    )


def run_exp16(
    scale: float = 0.08,
    seed: int = 0,
    crash_fractions: tuple = CRASH_FRACTIONS,
) -> dict:
    """{crash fraction: measurement} across the crash-timing sweep."""
    config = ExperimentConfig.scaled(scale, seed=seed, chunk_mb=CHUNK_MB)
    baseline = run_one(config, None)
    results: dict = {None: baseline}
    for frac in crash_fractions:
        if frac is None:
            continue
        results[frac] = run_one(
            config, frac, baseline_time=baseline.repair_time
        )
    return results


def rows(results: dict) -> list[list]:
    """Table rows: inflation and exactly-once accounting per crash time."""
    baseline = results.get(None)
    out = []
    for frac in sorted(results, key=lambda f: -1.0 if f is None else f):
        run = results[frac]
        time_inflation = (
            run.repair_time / baseline.repair_time
            if baseline is not None and baseline.repair_time > 0
            else 0.0
        )
        p99_inflation = (
            run.p99_latency / baseline.p99_latency
            if baseline is not None and baseline.p99_latency > 0
            else 0.0
        )
        out.append(
            [
                "none" if frac is None else frac,
                run.repair_time,
                time_inflation,
                run.p99_latency * 1e3,
                p99_inflation,
                f"{run.completed_before}+{run.completed_after}/{run.chunks}",
                run.requeued,
                run.duplicates,
                run.unverified,
                run.journal_records,
            ]
        )
    return out


HEADERS = [
    "crash@",
    "repair s",
    "time inflation",
    "P99 ms",
    "P99 inflation",
    "repaired",
    "requeued",
    "dupes",
    "unverified",
    "wal records",
]
