"""Exp#19: sharded control plane — shard count vs failover blast radius.

Exp#16 measured whole-plane failover: one coordinator, so a crash
stalls *every* pending chunk until recovery. This experiment sweeps the
sharded control plane (:meth:`repro.api.Testbed.start_sharded_repair`):
the chunk batch is hash-partitioned across N concurrent coordinators,
each journalling to its own partition, and a
:class:`repro.faults.CoordinatorCrash` targets exactly one shard — the
deterministically largest one, the worst case — at a swept fraction of
that shard count's crash-free repair time. Per (shard count × crash
time) cell it measures

* **failover blast radius** — the fraction of open (pending + leased)
  chunks stalled by the crash, read from the journal state at the
  crash instant (``Testbed.crash_blasts``). One shard stalls
  everything (blast 1.0); more shards must shrink it strictly;
* **repair-time inflation** — completion time relative to the same
  shard count's crash-free run (sibling shards keep repairing through
  the dead shard's downtime, so inflation should shrink with shards
  too);
* **exactly-once accounting** — chunks repaired by two incarnations
  (must be 0 across *all* coordinators, dead and replacement), chunks
  requeued at recovery, chunks the journal proved committed, and
  post-run checksum failures (must be 0).

Everything is seeded and virtual-time only, so two runs with the same
``--scale``/``--seed`` emit byte-identical ``BENCH_shard.json`` — CI
``cmp``-diffs the document and asserts the blast-radius verdict.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig

#: Shard counts swept (1 = the single-coordinator baseline plane).
SHARD_COUNTS = (1, 2, 4)

#: Crash offset as a fraction of the same shard count's crash-free
#: repair time (None = no crash: that shard count's baseline).
CRASH_FRACTIONS = (None, 0.15, 0.4)

#: Control-plane mean-time-to-recovery, as a fraction of the crash-free
#: repair time (matches exp16's failure-detector + restart window).
MTTR_FRACTION = 0.25

#: Chunk size (MB); matches exp16 so failover windows stay bounded.
CHUNK_MB = 16.0


@dataclass
class ShardRun:
    """One (shard count × crash timing) measurement."""

    shards: int
    crash_frac: float | None
    crash_shard: int | None
    repair_time: float
    chunks: int
    partition_sizes: list[int]
    #: Fraction of open chunks stalled at the crash instant (0 = no crash).
    blast: float
    stalled: int
    open_at_crash: int
    completed_total: int
    duplicates: int
    requeued: int
    proven_committed: int
    unverified: int
    lost: int
    journal_records: int


def run_one(
    config: ExperimentConfig,
    shards: int,
    crash_frac: float | None,
    *,
    baseline_time: float | None = None,
) -> ShardRun:
    """One run: foreground + N-shard repair (+ optional one-shard crash)."""
    testbed = Testbed.build(config)
    testbed.enable_journal()
    testbed.enable_integrity()
    testbed.start_foreground()
    # Let the monitor observe pure foreground before the failure.
    testbed.cluster.sim.run(until=testbed.cluster.sim.now + 2.0)
    report = testbed.fail_nodes(1)
    start = testbed.cluster.sim.now
    incarnations = testbed.start_sharded_repair(
        "ChameleonEC", report.failed_chunks, shards=shards
    )
    parts = testbed.shard_router.partition(report.failed_chunks)
    # Crash the largest initial partition — the worst-case blast for
    # this shard count; ties break to the lowest shard id.
    crash_shard = max(range(shards), key=lambda s: (len(parts[s]), -s))
    if crash_frac is not None:
        assert baseline_time is not None, "crash runs need the baseline time"
        testbed.inject_coordinator_crash(
            crash_frac * baseline_time,
            recover_after=MTTR_FRACTION * baseline_time,
            shard=crash_shard,
        )
    testbed.run_until(
        lambda: bool(testbed.repairers)
        and all(
            not getattr(r, "crashed", False) and r.done for r in testbed.repairers
        ),
        step=1.0,
    )
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=1.0)

    # Every incarnation that ever repaired: the initial coordinators
    # plus any post-crash replacements still registered on the testbed.
    all_incarnations = list(incarnations)
    for repairer in testbed.repairers:
        if all(repairer is not seen for seen in all_incarnations):
            all_incarnations.append(repairer)
    completions: Counter = Counter()
    lost_chunks = set()
    for repairer in all_incarnations:
        completions.update(repairer.completed)
        lost_chunks.update(repairer.lost)
    duplicates = sum(count - 1 for count in completions.values() if count > 1)
    recoveries = [
        r.recovery for r in all_incarnations if getattr(r, "recovery", None)
    ]
    blast_entry = testbed.crash_blasts[-1] if testbed.crash_blasts else None
    finished = [
        r.meter.finished_at
        for r in testbed.repairers
        if r.meter.finished_at is not None
    ]
    end = max(finished) if finished else testbed.cluster.sim.now
    unverified = sum(
        1 for c in report.failed_chunks if not testbed.chunk_store.verify(c)
    )
    return ShardRun(
        shards=shards,
        crash_frac=crash_frac,
        crash_shard=crash_shard if crash_frac is not None else None,
        repair_time=end - start,
        chunks=len(report.failed_chunks),
        partition_sizes=[len(p) for p in parts],
        blast=blast_entry["blast"] if blast_entry else 0.0,
        stalled=blast_entry["stalled"] if blast_entry else 0,
        open_at_crash=blast_entry["open"] if blast_entry else 0,
        completed_total=len(completions),
        duplicates=duplicates,
        requeued=sum(len(p.requeue) for p in recoveries),
        proven_committed=sum(len(p.completed) for p in recoveries),
        unverified=unverified,
        lost=len(lost_chunks),
        journal_records=len(testbed.journal) + testbed.journal.compacted_records,
    )


def run_exp19(
    scale: float = 0.08,
    seed: int = 0,
    shard_counts: tuple = SHARD_COUNTS,
    crash_fractions: tuple = CRASH_FRACTIONS,
) -> dict:
    """{shard count: {crash fraction: measurement}} across the sweep."""
    config = ExperimentConfig.scaled(scale, seed=seed, chunk_mb=CHUNK_MB)
    results: dict = {}
    for shards in shard_counts:
        baseline = run_one(config, shards, None)
        per_shard: dict = {None: baseline}
        for frac in crash_fractions:
            if frac is None:
                continue
            per_shard[frac] = run_one(
                config, shards, frac, baseline_time=baseline.repair_time
            )
        results[shards] = per_shard
    return results


def _mean_blast(per_shard: dict) -> float:
    blasts = [
        run.blast for frac, run in per_shard.items() if frac is not None
    ]
    return sum(blasts) / len(blasts) if blasts else 0.0


def verdict_payload(results: dict, *, scale: float, seed: int) -> dict:
    """The ``BENCH_shard.json`` document (stable keys, virtual time only)."""
    shard_counts = sorted(results)
    mean_blasts = {s: _mean_blast(results[s]) for s in shard_counts}
    blast_shrinks = all(
        mean_blasts[a] > mean_blasts[b]
        for a, b in zip(shard_counts, shard_counts[1:])
    )
    all_runs = [run for per in results.values() for run in per.values()]
    exactly_once = all(run.duplicates == 0 for run in all_runs)
    repair_complete = all(
        run.completed_total == run.chunks
        and run.lost == 0
        and run.unverified == 0
        for run in all_runs
    )
    return {
        "experiment": "exp19_shard_failover",
        "schema_version": 1,
        "scale": scale,
        "seed": seed,
        "passed": blast_shrinks and exactly_once and repair_complete,
        "blast_shrinks": blast_shrinks,
        "exactly_once": exactly_once,
        "repair_complete": repair_complete,
        "mean_blast_by_shards": {
            str(s): mean_blasts[s] for s in shard_counts
        },
        "shards": {
            str(shards): {
                "crash_free_repair_s": per[None].repair_time,
                "partition_sizes": per[None].partition_sizes,
                "runs": {
                    "none" if frac is None else str(frac): {
                        "crash_shard": run.crash_shard,
                        "repair_time_s": run.repair_time,
                        "time_inflation": (
                            run.repair_time / per[None].repair_time
                            if per[None].repair_time > 0
                            else 0.0
                        ),
                        "blast": run.blast,
                        "stalled": run.stalled,
                        "open_at_crash": run.open_at_crash,
                        "chunks": run.chunks,
                        "completed": run.completed_total,
                        "duplicates": run.duplicates,
                        "requeued": run.requeued,
                        "proven_committed": run.proven_committed,
                        "unverified": run.unverified,
                        "lost": run.lost,
                        "journal_records": run.journal_records,
                    }
                    for frac, run in per.items()
                },
            }
            for shards, per in results.items()
        },
    }


def write_bench(results: dict, path: str, *, scale: float, seed: int) -> dict:
    """Serialise the verdict document; returns the payload written."""
    payload = verdict_payload(results, scale=scale, seed=seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def rows(results: dict) -> list[list]:
    """Table rows: blast radius and exactly-once columns per cell."""
    out = []
    for shards in sorted(results):
        per = results[shards]
        baseline = per[None]
        for frac in sorted(per, key=lambda f: -1.0 if f is None else f):
            run = per[frac]
            inflation = (
                run.repair_time / baseline.repair_time
                if baseline.repair_time > 0
                else 0.0
            )
            out.append(
                [
                    shards,
                    "none" if frac is None else frac,
                    "-" if run.crash_shard is None else run.crash_shard,
                    run.blast,
                    f"{run.stalled}/{run.open_at_crash}",
                    run.repair_time,
                    inflation,
                    f"{run.completed_total}/{run.chunks}",
                    run.duplicates,
                    run.requeued,
                    run.unverified,
                    run.journal_records,
                ]
            )
    return out


HEADERS = [
    "shards",
    "crash@",
    "dead shard",
    "blast",
    "stalled",
    "repair s",
    "time inflation",
    "repaired",
    "dupes",
    "requeued",
    "unverified",
    "wal records",
]
