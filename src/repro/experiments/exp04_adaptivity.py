"""Exp#4 (Fig. 15): adaptivity under dynamically transitioning traces.

Each client cycles through the four traces (the paper switches every
15 s); the measured output is a repair-throughput time series per
algorithm plus the overall average.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")
TRACE_CYCLE = ("YCSB-A", "IBM-OS", "Memcached", "Facebook-ETC")


def run_exp04(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    segment_seconds: float | None = None,
) -> dict[str, RepairResult]:
    """Returns {algorithm: RepairResult}; extras carry the time series."""
    config = ExperimentConfig.scaled(scale, seed=seed)
    segment = (
        segment_seconds
        if segment_seconds is not None
        else max(2.0, 15.0 * config.t_phase / 20.0)
    )
    segments = [(segment, name) for name in TRACE_CYCLE]
    results: dict[str, RepairResult] = {}
    for algorithm in algorithms:
        result = run_repair_experiment(
            config, algorithm, transition_segments=segments
        )
        meter = result.extras["meter"]
        result.extras["series"] = meter.windowed_throughput(window=segment / 3)
        results[algorithm] = result
    return results


def rows(results: dict[str, RepairResult]) -> list[list]:
    """Table rows: average throughput and repair time per algorithm."""
    return [
        [name, r.throughput_mbs, r.repair_time] for name, r in results.items()
    ]


def series_rows(results: dict[str, RepairResult], points: int = 8) -> list[list]:
    """First ``points`` samples of each algorithm's throughput series."""
    out = []
    for name, result in results.items():
        series = result.extras.get("series", [])[:points]
        out.append([name] + [bw / 1e6 for _, bw in series])
    return out
