"""Exp#18: adaptive admission control, on vs off, under exp17's chaos.

Exp#17 proved the telemetry + SLO machinery; nothing *consumed* it at
runtime. This experiment closes the loop: the same seeded chaos
schedule (node failure, churn crash, stragglers, fluctuating links,
bit-rot under a live scrubber, coordinator failover) runs twice per
traffic family —

* **controller off** — the open-loop exp17 behaviour: scrub rate and
  repair parallelism stay at their configured values no matter what
  the foreground latency series does;
* **controller on** — :class:`~repro.control.AdmissionController`
  rides the sampling clock and AIMD-throttles both actuators whenever
  a closed window's foreground P99 inflates past the high-water mark.

The headline comparison is the number of **breach windows** of a
deliberately tight ``foreground_p99_inflation`` SLO (``TIGHT_CEILING``,
well inside the inflation the chaos schedule provokes open-loop),
under the constraint that throttling must not blow the exp17 repair
deadline — repair deadlines are SLOs too, which is exactly why the
controller has a floor. ``BENCH_adaptive.json`` carries both runs'
verdicts and is byte-identical across same-seed runs (virtual time
only, sorted keys), so CI diffs the document instead of parsing logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.control import AIMDPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.exp17_chaos import CHUNK_MB, ChaosRun, run_one
from repro.slo import SLOReport
from repro.traffic.traces import TRACE_FACTORIES

#: The tight per-window inflation ceiling both runs are judged against.
#: Exp17's open-loop chaos runs inflate 3-6x, so this ceiling is
#: breached without the controller — the gap is what adaptivity closes.
#: It cannot sit below ~2.5x: fluctuating-link windows inflate the
#: foreground that far with *zero* background traffic (the chaos
#: schedule degrades links under pure foreground load), and stretching
#: a throttled repair across more of those windows only adds breaches.
TIGHT_CEILING = 3.0

#: Controller thresholds, in the same inflation units as the ceiling.
#: The high-water mark sits at half the ceiling: by the time a window
#: is hot enough to *breach*, an earlier merely-warm window has already
#: halved background intensity — backing off at the ceiling itself
#: would always be one window too late. Recovery is slow (8 calm
#: windows to return to full intensity) so one quiet window between
#: fault phases does not restore full pressure, and the floor keeps a
#: quarter of the intensity so repair still meets its deadline SLO.
POLICY = AIMDPolicy(
    high_water=0.5 * TIGHT_CEILING,
    low_water=0.37 * TIGHT_CEILING,
    backoff=0.5,
    recover=0.125,
    floor=0.25,
)


def _verdict(gate: SLOReport, name: str):
    for verdict in gate.verdicts:
        if verdict.spec.name == name:
            return verdict
    raise KeyError(name)


@dataclass
class AdaptiveRun:
    """One traffic family's controller-off vs controller-on pair."""

    trace: str
    off: ChaosRun
    on: ChaosRun

    @property
    def off_breach_windows(self) -> int:
        return len(_verdict(self.off.gate, "chaos.p99").breaches)

    @property
    def on_breach_windows(self) -> int:
        return len(_verdict(self.on.gate, "chaos.p99").breaches)

    @property
    def deadline_s(self) -> float:
        return _verdict(self.on.gate, "chaos.repair-deadline").spec.threshold

    @property
    def on_deadline_met(self) -> bool:
        return _verdict(self.on.gate, "chaos.repair-deadline").passed

    @property
    def off_deadline_met(self) -> bool:
        return _verdict(self.off.gate, "chaos.repair-deadline").passed

    def block(self) -> dict:
        """The per-trace JSON block of ``BENCH_adaptive.json``."""
        return {
            "baseline_p99_ms": self.off.baseline_p99 * 1e3,
            "p99_breach_windows": {
                "controller_off": self.off_breach_windows,
                "controller_on": self.on_breach_windows,
            },
            "worst_window_inflation": {
                "controller_off": _verdict(self.off.gate, "chaos.p99").observed,
                "controller_on": _verdict(self.on.gate, "chaos.p99").observed,
            },
            "repair_time_s": {
                "controller_off": self.off.repair_time,
                "controller_on": self.on.repair_time,
            },
            "repair_deadline_s": self.deadline_s,
            "repair_deadline_met": {
                "controller_off": self.off_deadline_met,
                "controller_on": self.on_deadline_met,
            },
            "controller": {
                "backoffs": self.on.controller_backoffs,
                "recoveries": self.on.controller_recoveries,
                "min_level": self.on.controller_min_level,
            },
            "slos": {
                "controller_off": self.off.gate.to_dict(),
                "controller_on": self.on.gate.to_dict(),
            },
        }


def run_pair(config: ExperimentConfig) -> AdaptiveRun:
    """The same chaos schedule, open-loop then closed-loop."""
    off = run_one(config, p99_ceiling=TIGHT_CEILING)
    on = run_one(
        config, p99_ceiling=TIGHT_CEILING, admission={"policy": POLICY}
    )
    return AdaptiveRun(trace=config.trace, off=off, on=on)


def run_exp18(scale: float = 0.08, seed: int = 0,
              traces: tuple[str, ...] | None = None) -> dict[str, AdaptiveRun]:
    """{trace family: off/on pair} across all traffic families."""
    chosen = tuple(TRACE_FACTORIES) if traces is None else traces
    return {
        trace: run_pair(
            ExperimentConfig.scaled(
                scale, seed=seed, chunk_mb=CHUNK_MB, trace=trace
            )
        )
        for trace in chosen
    }


def verdict_payload(results: dict[str, AdaptiveRun], *,
                    scale: float, seed: int) -> dict:
    """The ``BENCH_adaptive.json`` document (stable keys, virtual time)."""
    off_total = sum(r.off_breach_windows for r in results.values())
    on_total = sum(r.on_breach_windows for r in results.values())
    deadline_met = all(r.on_deadline_met for r in results.values())
    return {
        "experiment": "exp18_adaptive",
        "schema_version": 1,
        "scale": scale,
        "seed": seed,
        "tight_ceiling": TIGHT_CEILING,
        "p99_breach_windows": {
            "controller_off": off_total,
            "controller_on": on_total,
        },
        # CI's gate: closing the loop must never make interference worse,
        # and the acceptance bar is a strict improvement.
        "no_worse": on_total <= off_total,
        "improved": on_total < off_total,
        "repair_deadline_met": deadline_met,
        "passed": on_total < off_total and deadline_met,
        "traces": {
            trace: run.block() for trace, run in results.items()
        },
    }


def write_bench(results: dict[str, AdaptiveRun], path: str, *,
                scale: float, seed: int) -> dict:
    """Serialise the verdict document; returns the payload written."""
    payload = verdict_payload(results, scale=scale, seed=seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def rows(results: dict[str, AdaptiveRun]) -> list[list]:
    """Table rows: breach windows and repair time, off vs on."""
    out = []
    for trace, run in results.items():
        out.append(
            [
                trace,
                run.off_breach_windows,
                run.on_breach_windows,
                _verdict(run.off.gate, "chaos.p99").observed,
                _verdict(run.on.gate, "chaos.p99").observed,
                run.off.repair_time,
                run.on.repair_time,
                "yes" if run.on_deadline_met else "NO",
                run.on.controller_backoffs,
                run.on.controller_recoveries,
                run.on.controller_min_level,
            ]
        )
    return out


HEADERS = [
    "trace",
    "breach w (off)",
    "breach w (on)",
    "worst infl off",
    "worst infl on",
    "repair s off",
    "repair s on",
    "deadline",
    "backoffs",
    "recovers",
    "min level",
]
