"""Exp#10 (Fig. 21): degraded-read performance.

A client requests a chunk on a failed node; the surviving chunks are
combined on the fly and delivered to the client (no persistence). The
metric is chunk size over the request-to-reconstruction latency. Larger
k narrows ChameleonEC's optimisation space (a repair touches half the
20-node testbed at k = 10).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_sim_until
from repro.api import Testbed
from repro.repair.base import ConventionalRepair, ECPipe, PPR
from repro.repair.degraded import run_degraded_read

CODES = ("RS(6,3)", "RS(10,4)")
ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")
_BASELINES = {"CR": ConventionalRepair, "PPR": PPR, "ECPipe": ECPipe}


def degraded_read_throughput(
    config: ExperimentConfig, algorithm: str, *, foreground: bool = True
) -> float:
    """One degraded read under foreground traffic; returns MB/s."""
    scenario = Testbed.build(config)
    if foreground:
        scenario.start_foreground()
        scenario.cluster.sim.run(until=scenario.cluster.sim.now + 6.0)
    report = scenario.fail_nodes(1)
    chunk = report.failed_chunks[0]
    client = scenario.cluster.clients[0].id
    if algorithm in _BASELINES:
        read, _ = run_degraded_read(
            scenario.cluster, scenario.store, scenario.injector, chunk, client,
            algorithm=_BASELINES[algorithm](seed=config.seed + 1),
            slice_size=config.slice_size,
        )
    else:
        read, _ = run_degraded_read(
            scenario.cluster, scenario.store, scenario.injector, chunk, client,
            monitor=scenario.monitor, slice_size=config.slice_size,
        )
    run_sim_until(
        scenario.cluster, lambda: read.completed_at is not None, step=0.5
    )
    if foreground:
        scenario.stop_foreground()
    return read.throughput(config.chunk_size) / 1e6


def run_exp10(
    scale: float = 0.12,
    seed: int = 0,
    codes: tuple[str, ...] = CODES,
    algorithms: tuple[str, ...] = ALGORITHMS,
    reads: int = 3,
) -> dict[tuple[str, str], float]:
    """{(code, algorithm): mean degraded-read throughput MB/s}."""
    results: dict[tuple[str, str], float] = {}
    for code in codes:
        for algorithm in algorithms:
            samples = []
            for i in range(reads):
                config = ExperimentConfig.scaled(
                    scale, seed=seed + i, code=code, num_chunks=6
                )
                samples.append(degraded_read_throughput(config, algorithm))
            results[(code, algorithm)] = sum(samples) / len(samples)
    return results


def rows(results: dict) -> list[list]:
    """Table rows: degraded-read throughput per code and algorithm."""
    codes = sorted({c for c, _ in results})
    out = []
    for code in codes:
        out.append(
            [code]
            + [results.get((code, a), float("nan")) for a in ALGORITHMS]
        )
    return out
