"""Exp#11 (Fig. 22): breakdown study with an injected straggler.

Decomposes ChameleonEC into ETRP (tunable plans only) and ETRP+SAR (the
full system with straggler-aware re-scheduling). A straggler is mimicked
the paper's way: eight reader threads continuously pulling 1 MB objects
from one node participating in the repair, started 0 / 5 / 10 seconds
into a phase. The metric is repair throughput over that phase.
"""

from __future__ import annotations

from repro.cluster.node import MB
from repro.cluster.topology import Cluster
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_sim_until
from repro.api import Testbed

ALGORITHMS = ("CR", "PPR", "ECPipe", "ETRP", "ChameleonEC")
PAPER_OFFSETS = (0.0, 5.0, 10.0)


class StragglerLoad:
    """Closed-loop readers hammering one node's uplink (the Redis hog)."""

    def __init__(
        self,
        cluster: Cluster,
        node_id: int,
        *,
        threads: int = 24,
        object_mb: float = 1.0,
        mode: str = "read",
    ) -> None:
        self.cluster = cluster
        self.node_id = node_id
        self.threads = threads
        self.object_size = object_mb * MB
        # "read" hogs the node's uplink, "write" its downlink, "mixed"
        # alternates — the downlink pressure is what repair re-tuning
        # (Fig. 10(b)) can bypass.
        self.mode = mode
        self.active = False
        self._seq = 0

    def start(self) -> None:
        """Launch the reader threads against the target node."""
        self.active = True
        # Spread hog endpoints over every client machine so the target
        # node's link — not a single client's — is the bottleneck.
        self._sinks = [c.id for c in self.cluster.clients]
        for _ in range(self.threads):
            self._issue()

    def stop(self) -> None:
        """Stop issuing further hog reads (in-flight ones finish)."""
        self.active = False

    def _issue(self) -> None:
        if not self.active:
            return
        self._seq += 1
        if not self._sinks:  # pragma: no cover - clusters always have clients
            return
        sink = self._sinks[self._seq % len(self._sinks)]
        write = self.mode == "write" or (self.mode == "mixed" and self._seq % 2 == 0)
        if write:
            transfer = self.cluster.make_transfer(
                sink,
                self.node_id,
                self.object_size,
                self.object_size,
                tag="straggler",
                read_disk=False,
                write_disk=True,
                name=f"hog-w{self._seq}",
            )
        else:
            transfer = self.cluster.make_transfer(
                self.node_id,
                sink,
                self.object_size,
                self.object_size,
                tag="straggler",
                read_disk=True,
                name=f"hog-r{self._seq}",
            )
        transfer.on_complete.append(lambda _t: self._issue())
        self.cluster.start(transfer)


def phase_throughput_with_straggler(
    config: ExperimentConfig,
    algorithm: str,
    offset: float,
    *,
    straggler_node: int = 1,
) -> float:
    """Repair throughput (MB/s) of the phase containing the straggler."""
    scenario = Testbed.build(config)
    scenario.start_foreground()
    scenario.cluster.sim.run(until=scenario.cluster.sim.now + 6.0)
    report = scenario.fail_nodes(1)
    repairer = scenario.make_repairer(algorithm)
    phase_start = scenario.cluster.sim.now
    repairer.repair(report.failed_chunks)
    hog = StragglerLoad(scenario.cluster, straggler_node)
    scenario.cluster.sim.call_at(phase_start + offset, hog.start)
    phase_end = phase_start + config.t_phase
    run_sim_until(
        scenario.cluster,
        lambda: repairer.done or scenario.cluster.sim.now >= phase_end,
        step=0.5,
    )
    hog.stop()
    scenario.stop_foreground()
    repaired = sum(
        nbytes
        for ts, nbytes in repairer.meter.events
        if phase_start <= ts <= phase_end
    )
    # Drain remaining repair so the run ends cleanly.
    run_sim_until(scenario.cluster, lambda: repairer.done, step=2.0)
    return repaired / config.t_phase / 1e6


def run_exp11(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    offsets: tuple[float, ...] = PAPER_OFFSETS,
) -> dict[tuple[float, str], float]:
    """{(paper offset, algorithm): phase repair throughput MB/s}."""
    config = ExperimentConfig.scaled(scale, seed=seed)
    factor = config.t_phase / 20.0  # paper offsets assume a 20 s phase
    results: dict[tuple[float, str], float] = {}
    for offset in offsets:
        for algorithm in algorithms:
            results[(offset, algorithm)] = phase_throughput_with_straggler(
                config, algorithm, offset * factor
            )
    return results


def rows(results: dict) -> list[list]:
    """Table rows: phase throughput per straggler offset and algorithm."""
    offsets = sorted({o for o, _ in results})
    algorithms = [a for a in ALGORITHMS if any((o, a) in results for o in offsets)]
    out = []
    for offset in offsets:
        out.append(
            [f"straggler@{offset:g}s"]
            + [results.get((offset, a), float("nan")) for a in algorithms]
        )
    return out
