"""Exp#2 (Fig. 13): interference degree — trace slowdown under repair.

For each trace, measures the execution time of a fixed request batch
without repair (``T``) and under each repair algorithm (``T*``); the
interference degree is ``T*/T - 1``.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_trace_only, run_trace_with_repair
from repro.metrics.interference import interference_degree

TRACES = ("YCSB-A", "IBM-OS", "Memcached", "Facebook-ETC")
ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")


def run_exp02(
    scale: float = 0.12,
    seed: int = 0,
    traces: tuple[str, ...] = TRACES,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> dict[tuple[str, str], float]:
    """Returns {(trace, algorithm): interference degree}."""
    requests = max(150, int(6000 * scale))
    results: dict[tuple[str, str], float] = {}
    for trace in traces:
        config = ExperimentConfig.scaled(scale, seed=seed, trace=trace)
        baseline = run_trace_only(
            config, requests_per_client=requests, trace=trace
        )
        for algorithm in algorithms:
            with_repair, _ = run_trace_with_repair(
                config, algorithm, requests_per_client=requests, trace=trace
            )
            results[(trace, algorithm)] = interference_degree(with_repair, baseline)
    return results


def rows(results: dict) -> list[list]:
    """Table rows: interference degree per trace and algorithm."""
    traces = sorted({t for t, _ in results})
    algorithms = [a for a in ALGORITHMS if any((t, a) in results for t in traces)]
    out = []
    for trace in traces:
        out.append(
            [trace] + [results.get((trace, a), float("nan")) for a in algorithms]
        )
    return out
