"""Exp#15: background scrubbing — detection latency vs foreground cost.

A scrubber is the one repair-adjacent workload that runs *all the time*:
its disk reads and cross-node verification flows share the storage
nodes' disk-read and uplink bandwidth with foreground YCSB traffic.
This experiment sweeps the scrub rate and measures both sides of the
trade-off the paper's interference story predicts:

* **detection latency** — virtual seconds from a silent corruption's
  injection to the scrubber catching it (faster scans catch rot sooner);
* **foreground P99 inflation** — tail latency relative to the no-scrub
  baseline (faster scans steal more bandwidth from clients).

The scrub rate is expressed as *intensity*: the fraction of one storage
node's disk-read bandwidth the scrubber targets (the way operational
scrubbers are budgeted — e.g. Ceph's scrub sleep). Intensity 1.0 keeps
one scrub read in flight back-to-back; 0.25 idles three quarters of the
time. Bit-rot lands via a seeded ``rot()`` timeline *before* the scan
starts, and the measurement window is sized so the slowest swept rate
completes one full pass — every corruption is therefore detected in
every non-zero run, and mean detection latency is governed by the scan
rate alone.

Chunks are shrunk to 16 MB here (repair experiments use the paper's
64 MB): a scrub pass reads the whole store, and the smaller chunk keeps
the pass — and hence the simulated window — bounded at small ``--scale``
without changing the contention mechanism being measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig

#: Scrub rate as a fraction of one node's disk-read bandwidth
#: (0 = no scrubber: the P99 baseline).
INTENSITIES = (0.0, 0.25, 0.5, 1.0)

#: Chunk size for this experiment (MB); see module docstring.
CHUNK_MB = 16.0

#: Silent corruptions / latent sector errors injected per run.
CORRUPTIONS = 6
SECTOR_ERRORS = 2

#: The scan window is this multiple of a full pass at the slowest
#: non-zero swept rate (margin for contention slowing the scan down).
PASS_MARGIN = 1.15


@dataclass
class ScrubRun:
    """One (scrub intensity) measurement."""

    intensity: float
    rate_mbs: float
    p99_latency: float
    injected: int
    detected: int
    mean_detection_latency: float
    max_detection_latency: float
    chunks_scanned: int
    scrub_passes: int


def run_one(
    config: ExperimentConfig,
    intensity: float,
    *,
    rot_horizon: float,
    scan_window: float,
) -> ScrubRun:
    """One fixed-duration run: foreground + bit-rot + paced scrubbing."""
    testbed = Testbed.build(config)
    testbed.enable_integrity()
    testbed.start_foreground()
    start = testbed.cluster.sim.now
    testbed.inject_bitrot(
        corruptions=CORRUPTIONS,
        sector_errors=SECTOR_ERRORS,
        horizon=rot_horizon,
    )
    # All rot lands before the scan starts: one pass then catches
    # everything, and detection latency is a pure function of scan rate.
    testbed.cluster.sim.run(until=start + rot_horizon)
    rate_mbs = intensity * config.disk_read_bw / 1e6
    if intensity > 0:
        testbed.start_scrubber(rate_mbs=rate_mbs)
    testbed.cluster.sim.run(until=start + rot_horizon + scan_window)
    if testbed.scrubber is not None:
        testbed.scrubber.stop()
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=1.0)

    summary = testbed.ledger.summary()
    return ScrubRun(
        intensity=intensity,
        rate_mbs=rate_mbs,
        p99_latency=testbed.latency.p99 if testbed.latency else 0.0,
        injected=int(summary["injected"]),
        detected=int(summary["detected"]),
        mean_detection_latency=summary["mean_detection_latency"],
        max_detection_latency=summary["max_detection_latency"],
        chunks_scanned=(
            testbed.scrubber.chunks_scanned if testbed.scrubber else 0
        ),
        scrub_passes=(
            testbed.scrubber.passes_completed if testbed.scrubber else 0
        ),
    )


def run_exp15(
    scale: float = 0.08,
    seed: int = 0,
    intensities: tuple[float, ...] = INTENSITIES,
) -> dict[float, ScrubRun]:
    """{intensity: measurement} across the scrub-rate sweep."""
    config = ExperimentConfig.scaled(scale, seed=seed, chunk_mb=CHUNK_MB)
    # Size the shared window off the store (a cheap probe testbed — the
    # stripe count depends on placement) and the slowest non-zero rate.
    probe = Testbed.build(config)
    store_bytes = len(probe.store) * probe.code.n * config.chunk_size
    slowest = min((i for i in intensities if i > 0), default=1.0)
    scan_window = PASS_MARGIN * store_bytes / (slowest * config.disk_read_bw)
    rot_horizon = 0.5 * config.t_phase
    return {
        intensity: run_one(
            config,
            intensity,
            rot_horizon=rot_horizon,
            scan_window=scan_window,
        )
        for intensity in intensities
    }


def rows(results: dict[float, ScrubRun]) -> list[list]:
    """Table rows: the detection-latency / P99-inflation trade-off."""
    baseline = results.get(0.0)
    out = []
    for intensity in sorted(results):
        run = results[intensity]
        inflation = (
            run.p99_latency / baseline.p99_latency
            if baseline is not None and baseline.p99_latency > 0
            else 0.0
        )
        out.append(
            [
                intensity,
                run.rate_mbs,
                run.p99_latency * 1e3,
                inflation,
                f"{run.detected}/{run.injected}",
                run.mean_detection_latency,
                run.max_detection_latency,
                run.chunks_scanned,
            ]
        )
    return out


HEADERS = [
    "intensity",
    "rate MB/s",
    "P99 ms",
    "P99 inflation",
    "detected",
    "mean detect s",
    "max detect s",
    "scanned",
]
