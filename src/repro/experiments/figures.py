"""Figures 2, 5, and 6: reliability analysis and link-utilisation studies."""

from __future__ import annotations

from repro.analysis.reliability import ReliabilityModel, loss_probability_curve
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import run_sim_until
from repro.api import Testbed
from repro.metrics.linkstats import LinkStatsCollector

FIG2_THROUGHPUTS_MBS = [50, 100, 200, 400, 800, 1600]


def run_fig2(throughputs_mbs=None) -> list[tuple[float, float]]:
    """Fig. 2: data-loss probability vs repair throughput (k=10, m=4)."""
    pts = throughputs_mbs if throughputs_mbs is not None else FIG2_THROUGHPUTS_MBS
    return loss_probability_curve(pts, ReliabilityModel(k=10, m=4))


def fig2_rows(curve: list[tuple[float, float]]) -> list[list]:
    """Fig. 2 table rows from the reliability curve."""
    return [[f"{t:g} MB/s", p] for t, p in curve]


def _scaled_window(config: ExperimentConfig) -> float:
    """The paper's 15 s window, shrunk so a scaled repair spans ~10 windows."""
    return max(0.3, 15.0 * config.t_phase / 20.0 / 8.0)


def _collect_link_stats(
    config: ExperimentConfig, algorithm: str, window: float
) -> tuple[LinkStatsCollector, LinkStatsCollector]:
    """Run a repair under YCSB-A; sample per-window link bandwidth.

    Returns (uplink collector, downlink collector) over storage nodes.
    """
    scenario = Testbed.build(config)
    scenario.start_foreground()
    scenario.cluster.sim.run(until=scenario.cluster.sim.now + window)
    report = scenario.fail_nodes(1)
    repairer = scenario.make_repairer(algorithm)
    uplinks = LinkStatsCollector(
        [n.uplink for n in scenario.cluster.storage_nodes if n.alive], window=window
    )
    downlinks = LinkStatsCollector(
        [n.downlink for n in scenario.cluster.storage_nodes if n.alive], window=window
    )

    def tick():
        """Close one sampling window and reschedule while repairing."""
        scenario.cluster.flows.settle_now()
        uplinks.sample()
        downlinks.sample()
        if not repairer.done:
            scenario.cluster.sim.schedule(window, tick)

    repairer.repair(report.failed_chunks)
    scenario.cluster.sim.schedule(window, tick)
    run_sim_until(scenario.cluster, lambda: repairer.done)
    scenario.stop_foreground()
    return uplinks, downlinks


def run_fig5(scale: float = 0.12, seed: int = 0) -> dict[str, tuple[float, float, float]]:
    """Fig. 5: foreground-bandwidth fluctuation per time window.

    Returns {"uplink"/"downlink": (mean, min, max) fluctuation in Gb/s}.
    The paper uses 15 s windows; the window shrinks with scale.
    """
    config = ExperimentConfig.scaled(scale, seed=seed)
    window = _scaled_window(config)
    uplinks, downlinks = _collect_link_stats(config, "CR", window)
    to_gbps = 8 / 1e9
    return {
        "uplink": tuple(v * to_gbps for v in uplinks.fluctuation_stats()),
        "downlink": tuple(v * to_gbps for v in downlinks.fluctuation_stats()),
    }


def fig5_rows(stats: dict) -> list[list]:
    """Fig. 5 table rows from the fluctuation statistics."""
    return [
        [direction, mean, lo, hi] for direction, (mean, lo, hi) in stats.items()
    ]


def run_fig6(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ("CR", "PPR", "ECPipe"),
) -> dict[tuple[str, str, str], tuple[float, float]]:
    """Fig. 6: most/least-loaded link utilisation split by traffic class.

    Returns {(algorithm, "up"/"down", "ML"/"LL"):
             (repair Gb/s, foreground Gb/s)}.
    """
    out: dict[tuple[str, str, str], tuple[float, float]] = {}
    to_gbps = 8 / 1e9
    for algorithm in algorithms:
        config = ExperimentConfig.scaled(scale, seed=seed)
        window = _scaled_window(config)
        uplinks, downlinks = _collect_link_stats(config, algorithm, window)
        for direction, collector in (("up", uplinks), ("down", downlinks)):
            most, least = collector.most_and_least_loaded()
            out[(algorithm, direction, "ML")] = (
                most.mean_repair() * to_gbps,
                most.mean_foreground() * to_gbps,
            )
            out[(algorithm, direction, "LL")] = (
                least.mean_repair() * to_gbps,
                least.mean_foreground() * to_gbps,
            )
    return out


def fig6_rows(stats: dict) -> list[list]:
    """Fig. 6 table rows from the ML/LL link statistics."""
    rows = []
    for (algorithm, direction, which), (repair, fg) in sorted(stats.items()):
        rows.append([f"{algorithm}_{which} ({direction})", repair, fg, repair + fg])
    return rows
