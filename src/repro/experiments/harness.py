"""Shared experiment driver: runs a repair against foreground traffic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.experiments.config import ExperimentConfig
from repro.experiments.driver import MAX_SIM_TIME, run_sim_until
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (api -> harness)
    from repro.api import Testbed

__all__ = [
    "MAX_SIM_TIME",
    "RepairResult",
    "format_table",
    "run_repair_experiment",
    "run_sim_until",
    "run_trace_only",
    "run_trace_with_repair",
]


@dataclass
class RepairResult:
    """Metrics from one repair run."""

    algorithm: str
    trace: str
    repair_time: float
    repaired_bytes: float
    chunks: int
    p99_latency: float = 0.0
    mean_latency: float = 0.0
    foreground_requests: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Average repair throughput in bytes/second."""
        return self.repaired_bytes / self.repair_time if self.repair_time > 0 else 0.0

    @property
    def throughput_mbs(self) -> float:
        """Average repair throughput in MB/s."""
        return self.throughput / 1e6

    def to_dict(self) -> dict:
        """JSON-serialisable summary (extras are deliberately dropped)."""
        return {
            "algorithm": self.algorithm,
            "trace": self.trace,
            "repair_time_s": self.repair_time,
            "repaired_bytes": self.repaired_bytes,
            "chunks": self.chunks,
            "throughput_mbs": self.throughput_mbs,
            "p99_latency_s": self.p99_latency,
            "mean_latency_s": self.mean_latency,
            "foreground_requests": self.foreground_requests,
        }


def run_repair_experiment(
    config: ExperimentConfig,
    algorithm: str,
    *,
    failed_nodes: int = 1,
    foreground: bool = True,
    trace: str | None = None,
    transition_segments: list[tuple[float, str]] | None = None,
    warmup: float = 6.0,
    scenario: "Testbed | None" = None,
    repairer_overrides: dict | None = None,
) -> RepairResult:
    """One full measurement: foreground + failure + repair to completion.

    ``scenario`` accepts a pre-built :class:`repro.api.Testbed` (the
    keyword keeps its historical name); ``None`` builds one from
    ``config``.

    Foreground latency is always measured over a *fixed* horizon (at
    least three phases), not just the repair window: a fast repair
    concentrates its interference into a short burst, and cutting the
    trace off right at repair completion would charge the fast algorithm
    a window consisting purely of its worst moments.
    """
    from repro.api import Testbed

    scenario = scenario if scenario is not None else Testbed.build(config)
    tracer = get_tracer()
    run_span = tracer.span(
        "experiment.run",
        track="harness",
        algorithm=algorithm,
        trace=(trace or config.trace) if foreground else "none",
        failed_nodes=failed_nodes,
    )
    if foreground:
        scenario.start_foreground(trace, transition_segments=transition_segments)
        # Let the monitor observe at least one window of pure foreground.
        scenario.cluster.sim.run(until=scenario.cluster.sim.now + warmup)
    report = scenario.fail_nodes(failed_nodes)
    repairer = scenario.make_repairer(algorithm, **(repairer_overrides or {}))
    start = scenario.cluster.sim.now
    repairer.repair(report.failed_chunks)
    run_sim_until(scenario.cluster, lambda: repairer.done)
    if foreground:
        horizon = start + 3.0 * config.t_phase
        if scenario.cluster.sim.now < horizon:
            scenario.cluster.sim.run(until=horizon)
        scenario.stop_foreground()
    # The meter records exact start/finish timestamps; the stepped run
    # loop overshoots, so never derive the repair time from sim.now.
    elapsed = repairer.meter.elapsed
    run_span.finish(
        repair_time=elapsed,
        chunks=len(report.failed_chunks),
        sim_events=scenario.cluster.sim.events_dispatched,
    )
    result = RepairResult(
        algorithm=algorithm,
        trace=(trace or config.trace) if foreground else "none",
        repair_time=elapsed if elapsed > 0 else scenario.cluster.sim.now - start,
        repaired_bytes=repairer.meter.repaired_bytes,
        chunks=len(report.failed_chunks),
        p99_latency=scenario.latency.p99 if scenario.latency else 0.0,
        mean_latency=scenario.latency.mean if scenario.latency else 0.0,
        foreground_requests=scenario.latency.count if scenario.latency else 0,
        extras={"meter": repairer.meter, "scenario": scenario, "repairer": repairer},
    )
    return result


def run_trace_only(
    config: ExperimentConfig,
    *,
    requests_per_client: int,
    trace: str | None = None,
) -> float:
    """Trace execution time with no repair running (Exp#2's ``T``)."""
    from repro.api import Testbed

    cfg = config.with_(requests_per_client=requests_per_client)
    scenario = Testbed.build(cfg)
    scenario.start_foreground(trace)
    run_sim_until(scenario.cluster, scenario.foreground_done)
    return max(c.execution_time for c in scenario.clients)


def run_trace_with_repair(
    config: ExperimentConfig,
    algorithm: str,
    *,
    requests_per_client: int,
    trace: str | None = None,
) -> tuple[float, RepairResult]:
    """Trace execution time while a repair runs (Exp#2's ``T*``)."""
    from repro.api import Testbed

    cfg = config.with_(requests_per_client=requests_per_client)
    scenario = Testbed.build(cfg)
    run_span = get_tracer().span(
        "experiment.run", track="harness", algorithm=algorithm,
        trace=trace or cfg.trace,
    )
    scenario.start_foreground(trace)
    scenario.cluster.sim.run(until=scenario.cluster.sim.now + 2.0)
    report = scenario.fail_nodes(1)
    repairer = scenario.make_repairer(algorithm)
    start = scenario.cluster.sim.now
    repairer.repair(report.failed_chunks)
    run_sim_until(
        scenario.cluster, lambda: repairer.done and scenario.foreground_done()
    )
    end = scenario.cluster.sim.now
    run_span.finish(repair_time=end - start, chunks=len(report.failed_chunks))
    result = RepairResult(
        algorithm=algorithm,
        trace=trace or cfg.trace,
        repair_time=end - start,
        repaired_bytes=repairer.meter.repaired_bytes,
        chunks=len(report.failed_chunks),
        p99_latency=scenario.latency.p99,
        mean_latency=scenario.latency.mean,
        foreground_requests=scenario.latency.count,
    )
    trace_time = max(c.execution_time for c in scenario.clients)
    return trace_time, result


def format_table(title: str, headers: list[str], rows: list[list]) -> str:
    """Fixed-width ASCII table used by every benchmark's output.

    Short rows are padded with "-" so ragged data (e.g. time series of
    different lengths) still renders.
    """
    str_rows = [
        [_fmt(v) for v in row] + ["-"] * max(0, len(headers) - len(row))
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
