"""The Section II-D motivation study (Fig. 4): interference vs #clients.

Runs CR, PPR, and ECPipe repairs while 0 to 4 YCSB-A clients replay
traffic; reports repair time and P99, plus the YCSB-only P99 baseline.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    RepairResult,
    run_repair_experiment,
    run_sim_until,
)
from repro.api import Testbed

ALGORITHMS = ("CR", "PPR", "ECPipe")
CLIENT_COUNTS = (0, 1, 2, 3, 4)


def run_motivation(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    client_counts: tuple[int, ...] = CLIENT_COUNTS,
) -> dict:
    """Returns {"repair": {(clients, algo): RepairResult},
                 "ycsb_only_p99": float}."""
    repair: dict[tuple[int, str], RepairResult] = {}
    for clients in client_counts:
        for algorithm in algorithms:
            config = ExperimentConfig.scaled(scale, seed=seed)
            if clients == 0:
                result = run_repair_experiment(config, algorithm, foreground=False)
            else:
                scenario = Testbed.build(config)
                scenario.start_foreground(num_clients=clients)
                scenario.cluster.sim.run(until=scenario.cluster.sim.now + 6.0)
                report = scenario.fail_nodes(1)
                repairer = scenario.make_repairer(algorithm)
                repairer.repair(report.failed_chunks)
                run_sim_until(scenario.cluster, lambda: repairer.done)
                scenario.stop_foreground()
                result = RepairResult(
                    algorithm=algorithm,
                    trace=config.trace,
                    repair_time=repairer.meter.elapsed,
                    repaired_bytes=repairer.meter.repaired_bytes,
                    chunks=len(report.failed_chunks),
                    p99_latency=scenario.latency.p99,
                )
            repair[(clients, algorithm)] = result

    # YCSB-only latency baseline (no repair at all).
    config = ExperimentConfig.scaled(scale, seed=seed)
    scenario = Testbed.build(config)
    scenario.start_foreground()
    scenario.cluster.sim.run(until=scenario.cluster.sim.now + 20.0)
    scenario.stop_foreground()
    return {"repair": repair, "ycsb_only_p99": scenario.latency.p99}


def rows_repair_time(results: dict) -> list[list]:
    """Fig. 4(a) rows: repair time per client count."""
    repair = results["repair"]
    counts = sorted({c for c, _ in repair})
    out = []
    for clients in counts:
        out.append(
            [f"C={clients}"]
            + [
                repair[(clients, a)].repair_time if (clients, a) in repair else "-"
                for a in ALGORITHMS
            ]
        )
    return out


def rows_p99(results: dict) -> list[list]:
    """Fig. 4(b) rows: P99 (ms) per client count."""
    repair = results["repair"]
    counts = sorted({c for c, _ in repair if c > 0})
    out = [["YCSB-Only", results["ycsb_only_p99"] * 1000, "-", "-"]]
    for clients in counts:
        out.append(
            [f"C={clients}"]
            + [
                repair[(clients, a)].p99_latency * 1000
                if (clients, a) in repair
                else "-"
                for a in ALGORITHMS
            ]
        )
    return out
