"""Exp#20: repair under network partitions — detection & hedging vs timeouts.

Exp#14 stressed repair with crashes and stragglers; this experiment
adds the remaining distributed-systems fault: the network *partition*.
A seeded :class:`repro.faults.NetworkPartition` isolates a small group
of live helper nodes shortly after repair starts — every cross-cut
flow stalls (blackholed in-flight slice, refused fresh slices) until
the heal. Four repair configurations race the same cut, per swept
partition duration:

* **baseline** — timeout-only: a stalled chunk waits out
  ``chunk_timeout`` before replanning (and the fresh plan may pick the
  same unreachable helpers — nothing marks them);
* **detector** — the accrual failure detector
  (:meth:`repro.api.Testbed.enable_failure_detector`) suspects the cut
  group within a few heartbeats; in-flight instances touching a
  suspect fail immediately and fresh plans avoid suspects;
* **hedged** — hedged reads alone
  (:meth:`~repro.api.Testbed.enable_hedged_reads`): chunks running
  past the hedge delay launch a backup plan around their slowest
  helper. Without suspicion the backup may pick other cut helpers, so
  hedging alone duplicates work blindly — that cost is part of the
  measurement;
* **full** — detector + hedging, the configuration the verdict gates:
  its p99 chunk-completion time must beat the timeout-only baseline
  *strictly* at every duration.

A separate **zombie** scenario exercises the fencing half of the
design: a shard-bound coordinator is pinned
(:meth:`~repro.api.Testbed.place_coordinator`) to a storage node that
a partition then cuts off from the journal. The rest of the cluster
fences its shard; every write-through the isolated-but-alive
coordinator makes is rejected (``journal.fenced_writes``), the heal
makes it step down, and recovery proceeds under the next epoch. The
verdict asserts the log accepted **zero** stale writes
(:func:`repro.journal.audit_fenced_writes`), recorded **zero** double
commits, and that the fence actually bit (rejections > 0,
step-downs >= 1).

Everything is seeded and virtual-time only, so two runs with the same
``--scale``/``--seed`` emit byte-identical ``BENCH_partition.json`` —
CI ``cmp``-diffs the document and asserts the verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig
from repro.faults import FaultTimeline
from repro.journal import audit_fenced_writes
from repro.journal.records import COMMITTED

#: Repair configurations racing the same partition schedule.
MODES = ("baseline", "detector", "hedged", "full")

#: Partition durations swept (seconds of virtual time).
DURATIONS = (4.0, 10.0)

#: Chunk size (MB); the paper's default keeps individual repairs long
#: enough for a mid-repair cut to stall real work.
CHUNK_MB = 64.0

#: Timeout-only recovery knob, shared by every mode (the baseline's
#: sole defence; the detector should beat it by an order of magnitude).
CHUNK_TIMEOUT = 8.0

#: Partition onset after repair start. Early enough that nearly the
#: whole batch is still in flight.
PARTITION_AT = 0.2

#: Live storage nodes isolated per wave. With RS(10,4) on 20 nodes one
#: node is already dead, so 13 survivors hold each stripe; cutting 3
#: leaves exactly k=10 trusted helpers — every stripe stays repairable
#: *around* the cut (a larger cut would force plans through it).
CUT_SIZE = 3

#: Detector heartbeat period; suspicion fires at ~threshold intervals.
HEARTBEAT_INTERVAL = 0.25

#: Hedge floor when the live foreground-p99 series is still cold.
HEDGE_MIN_DELAY = 1.0

#: How long the zombie coordinator's home stays cut off.
ZOMBIE_DURATION = 6.0


@dataclass
class PartitionRun:
    """One (mode x partition duration) measurement."""

    mode: str
    duration: float
    p99: float
    repair_time: float
    chunks: int
    completed: int
    lost: int
    unverified: int
    suspicions: int
    false_suspicions: int
    suspect_replans: int
    hedges_launched: int
    hedges_won: int


@dataclass
class ZombieRun:
    """The fencing scenario: an isolated-but-alive coordinator."""

    fenced_writes: int
    stepdowns: int
    stale_accepted: int
    double_commits: int
    committed: int
    chunks: int
    unverified: int
    repair_time: float


def _p99(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(0.99 * (len(ordered) - 1))))
    return ordered[idx]


def _cut_group(testbed: Testbed, failed_nodes) -> list[int]:
    """The first ``CUT_SIZE`` live storage nodes, in id order."""
    dead = set(failed_nodes)
    alive = [n for n in testbed.cluster.storage_ids if n not in dead]
    return alive[:CUT_SIZE]


def run_one(config: ExperimentConfig, mode: str, duration: float) -> PartitionRun:
    """One run: foreground + repair racing a mid-repair partition."""
    testbed = Testbed.build(config)
    testbed.enable_journal()
    testbed.enable_integrity()
    testbed.enable_timeseries()
    testbed.start_foreground()
    # Let the monitor observe pure foreground before the failure.
    testbed.cluster.sim.run(until=testbed.cluster.sim.now + 2.0)
    report = testbed.fail_nodes(1)
    if mode in ("detector", "full"):
        testbed.enable_failure_detector(heartbeat_interval=HEARTBEAT_INTERVAL)
    if mode in ("hedged", "full"):
        testbed.enable_hedged_reads(min_delay=HEDGE_MIN_DELAY)
    repairer = testbed.make_repairer("ChameleonEC", chunk_timeout=CHUNK_TIMEOUT)
    start = testbed.cluster.sim.now
    completions: list[float] = []
    repairer.on(
        "chunk_repaired",
        lambda _r, chunk, plan: completions.append(
            testbed.cluster.sim.now - start
        ),
    )
    timeline = FaultTimeline().partition(
        PARTITION_AT, [_cut_group(testbed, report.failed_nodes)], duration=duration
    )
    testbed.install_faults(timeline)
    repairer.repair(report.failed_chunks)
    testbed.run_until(lambda: repairer.done, step=0.25)
    end = testbed.cluster.sim.now
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=1.0)
    unverified = sum(
        1 for c in report.failed_chunks if not testbed.chunk_store.verify(c)
    )
    detector = testbed.detector
    return PartitionRun(
        mode=mode,
        duration=duration,
        p99=_p99(completions),
        repair_time=end - start,
        chunks=len(report.failed_chunks),
        completed=len(repairer.completed),
        lost=len(repairer.lost),
        unverified=unverified,
        suspicions=len(detector.suspicions) if detector else 0,
        false_suspicions=detector.false_suspicions if detector else 0,
        suspect_replans=getattr(repairer, "suspect_replans", 0),
        hedges_launched=getattr(repairer, "hedges_launched", 0),
        hedges_won=getattr(repairer, "hedges_won", 0),
    )


def run_zombie(config: ExperimentConfig) -> ZombieRun:
    """Partition a pinned coordinator away from the journal, then heal."""
    testbed = Testbed.build(config)
    testbed.enable_journal(checkpoint_interval=None)
    testbed.enable_integrity()
    testbed.start_foreground()
    testbed.cluster.sim.run(until=testbed.cluster.sim.now + 2.0)
    report = testbed.fail_nodes(1)
    start = testbed.cluster.sim.now
    repairers = testbed.start_sharded_repair(
        "ChameleonEC", report.failed_chunks, shards=2
    )
    home = testbed.cluster.storage_nodes[-1].id
    testbed.place_coordinator(repairers[0], home)
    timeline = FaultTimeline().partition(
        PARTITION_AT, [[home]], duration=ZOMBIE_DURATION
    )
    testbed.install_faults(timeline)
    horizon = testbed.cluster.sim.now + 4 * ZOMBIE_DURATION
    testbed.run_until(
        lambda: testbed.zombie_stepdowns > 0
        or testbed.cluster.sim.now >= horizon,
        step=0.5,
    )
    if testbed.zombie_stepdowns:
        testbed.recover_repairer(shard=0)
    testbed.run_until(
        lambda: all(
            not getattr(r, "crashed", False) and r.done
            for r in testbed.repairers
        ),
        step=0.5,
    )
    end = testbed.cluster.sim.now
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=1.0)
    commits: dict = {}
    for record in testbed.journal.records:
        if record.kind == COMMITTED and record.chunk is not None:
            commits[record.chunk] = commits.get(record.chunk, 0) + 1
    return ZombieRun(
        fenced_writes=testbed.journal.fenced_writes,
        stepdowns=testbed.zombie_stepdowns,
        stale_accepted=len(audit_fenced_writes(testbed.journal)),
        double_commits=sum(c - 1 for c in commits.values() if c > 1),
        committed=len(commits),
        chunks=len(report.failed_chunks),
        unverified=sum(
            1 for c in report.failed_chunks if not testbed.chunk_store.verify(c)
        ),
        repair_time=end - start,
    )


def run_exp20(
    scale: float = 0.05,
    seed: int = 0,
    durations: tuple = DURATIONS,
    modes: tuple = MODES,
) -> dict:
    """{"sweep": {duration: {mode: run}}, "zombie": ZombieRun}."""
    config = ExperimentConfig.scaled(scale, seed=seed, chunk_mb=CHUNK_MB)
    sweep: dict = {}
    for duration in durations:
        sweep[duration] = {
            mode: run_one(config, mode, duration) for mode in modes
        }
    return {"sweep": sweep, "zombie": run_zombie(config)}


def verdict_payload(results: dict, *, scale: float, seed: int) -> dict:
    """The ``BENCH_partition.json`` document (stable keys, virtual time)."""
    sweep = results["sweep"]
    zombie: ZombieRun = results["zombie"]
    tail_reduced = all(
        per["full"].p99 < per["baseline"].p99 for per in sweep.values()
    )
    all_runs = [run for per in sweep.values() for run in per.values()]
    repair_complete = (
        all(
            run.completed == run.chunks
            and run.lost == 0
            and run.unverified == 0
            for run in all_runs
        )
        and zombie.unverified == 0
    )
    exactly_once = zombie.double_commits == 0
    fencing_held = (
        zombie.stale_accepted == 0
        and zombie.fenced_writes > 0
        and zombie.stepdowns >= 1
    )
    return {
        "experiment": "exp20_partition",
        "schema_version": 1,
        "scale": scale,
        "seed": seed,
        "passed": tail_reduced and repair_complete and exactly_once and fencing_held,
        "tail_reduced": tail_reduced,
        "repair_complete": repair_complete,
        "exactly_once": exactly_once,
        "fencing_held": fencing_held,
        "p99_by_duration": {
            str(duration): {mode: run.p99 for mode, run in per.items()}
            for duration, per in sweep.items()
        },
        "sweep": {
            str(duration): {
                mode: {
                    "p99_s": run.p99,
                    "repair_time_s": run.repair_time,
                    "chunks": run.chunks,
                    "completed": run.completed,
                    "lost": run.lost,
                    "unverified": run.unverified,
                    "suspicions": run.suspicions,
                    "false_suspicions": run.false_suspicions,
                    "suspect_replans": run.suspect_replans,
                    "hedges_launched": run.hedges_launched,
                    "hedges_won": run.hedges_won,
                }
                for mode, run in per.items()
            }
            for duration, per in sweep.items()
        },
        "zombie": {
            "fenced_writes": zombie.fenced_writes,
            "stepdowns": zombie.stepdowns,
            "stale_accepted": zombie.stale_accepted,
            "double_commits": zombie.double_commits,
            "committed": zombie.committed,
            "chunks": zombie.chunks,
            "unverified": zombie.unverified,
            "repair_time_s": zombie.repair_time,
        },
    }


def write_bench(results: dict, path: str, *, scale: float, seed: int) -> dict:
    """Serialise the verdict document; returns the payload written."""
    payload = verdict_payload(results, scale=scale, seed=seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def rows(results: dict) -> list[list]:
    """Table rows: one per (duration x mode), zombie scenario last."""
    out = []
    for duration in sorted(results["sweep"]):
        for mode in MODES:
            run = results["sweep"][duration].get(mode)
            if run is None:
                continue
            out.append(
                [
                    duration,
                    mode,
                    run.p99,
                    run.repair_time,
                    f"{run.completed}/{run.chunks}",
                    run.suspicions,
                    run.false_suspicions,
                    run.suspect_replans,
                    f"{run.hedges_won}/{run.hedges_launched}",
                    run.unverified,
                ]
            )
    zombie = results["zombie"]
    out.append(
        [
            ZOMBIE_DURATION,
            "zombie",
            "-",
            zombie.repair_time,
            f"{zombie.committed}/{zombie.chunks}",
            "-",
            "-",
            "-",
            f"fenced={zombie.fenced_writes}",
            zombie.unverified,
        ]
    )
    return out


HEADERS = [
    "cut s",
    "mode",
    "p99 s",
    "repair s",
    "repaired",
    "suspects",
    "false",
    "replans",
    "hedge w/l",
    "unverified",
]
