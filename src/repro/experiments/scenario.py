"""Deprecated: :class:`Scenario` is now :class:`repro.api.Testbed`.

This module survives only as a compatibility shim. New code should use
the public facade::

    from repro import Testbed

    tb = Testbed.build(config)

The algorithm-name constants moved to
:mod:`repro.experiments.algorithms`; they are re-exported here for
callers that imported them from this module.
"""

from __future__ import annotations

import warnings

from repro.api import Testbed
from repro.experiments.algorithms import (  # noqa: F401  (compat re-exports)
    ALL_ALGORITHMS,
    BASELINES,
    BOOSTED,
    CHAMELEON_VARIANTS,
)
from repro.experiments.config import ExperimentConfig


class Scenario(Testbed):
    """Deprecated alias of :class:`repro.api.Testbed`."""

    __test__ = False  # "Scenario" subclassing Testbed; keep pytest away

    def __init__(self, config: ExperimentConfig) -> None:
        warnings.warn(
            "repro.experiments.scenario.Scenario is deprecated; use "
            "repro.Testbed (e.g. Testbed.build(config)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(config)
