"""Builds a ready-to-run testbed from an :class:`ExperimentConfig`."""

from __future__ import annotations

import math

from repro.cluster.failures import FailureInjector, FailureReport
from repro.cluster.placement import place_stripes
from repro.cluster.stripes import ChunkId
from repro.cluster.topology import Cluster
from repro.codes.registry import make_code
from repro.core.chameleon import ChameleonRepair
from repro.core.chameleon_io import ChameleonRepairIO
from repro.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.monitor.bandwidth import BandwidthMonitor
from repro.obs.tracer import get_tracer
from repro.repair.base import ConventionalRepair, ECPipe, PPR
from repro.repair.repairboost import RepairBoost
from repro.repair.runner import RepairRunner
from repro.traffic.client import TraceClient
from repro.traffic.router import KeyRouter
from repro.traffic.schedule import TransitioningTrace
from repro.traffic.traces import make_trace

BASELINES = ("CR", "PPR", "ECPipe")
BOOSTED = ("RB+CR", "RB+PPR", "RB+ECPipe")
CHAMELEON_VARIANTS = ("ChameleonEC", "ChameleonEC-IO", "ETRP")
ALL_ALGORITHMS = BASELINES + BOOSTED + CHAMELEON_VARIANTS


class Scenario:
    """One experiment testbed: cluster + stripes + monitor + clients."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.code = make_code(config.code)
        self.cluster = Cluster(
            num_nodes=config.num_nodes,
            num_clients=config.num_clients,
            link_bw=config.link_bw,
            disk_read_bw=config.disk_read_bw,
            disk_write_bw=config.disk_write_bw,
            racks=config.racks,
            oversubscription=config.oversubscription,
        )
        # When tracing is on, timestamps follow this scenario's simulator
        # (successive scenarios lay out sequentially in one trace file).
        get_tracer().bind_clock(self.cluster.sim)
        # Enough stripes that the first failed node holds >= num_chunks
        # chunks (each node appears in a stripe with probability n/N).
        expected_per_stripe = self.code.n / config.num_nodes
        num_stripes = max(
            config.num_chunks,
            math.ceil(config.num_chunks / expected_per_stripe * 1.3),
        )
        self.store = place_stripes(
            self.code,
            num_stripes,
            self.cluster.storage_ids,
            chunk_size=int(config.chunk_size),
            seed=config.seed,
        )
        self.injector = FailureInjector(self.cluster, self.store)
        # The paper's 5 s monitoring window, shrunk with the phase length
        # so scaled runs still refresh estimates several times per phase.
        monitor_window = max(0.5, 5.0 * config.t_phase / 20.0)
        self.monitor = BandwidthMonitor(self.cluster, window=monitor_window)
        self.monitor.start()
        self.router = KeyRouter(self.store, self.cluster)
        self.clients: list[TraceClient] = []
        self.latency = None

    # -- foreground --------------------------------------------------------------

    def start_foreground(
        self,
        trace: str | None = None,
        *,
        num_clients: int | None = None,
        transition_segments: list[tuple[float, str]] | None = None,
    ) -> None:
        """Launch closed-loop clients replaying the configured trace."""
        from repro.metrics.latency import LatencyRecorder

        cfg = self.config
        self.latency = LatencyRecorder("foreground")
        count = len(self.cluster.clients) if num_clients is None else num_clients
        for i, node in enumerate(self.cluster.clients[:count]):
            if transition_segments is not None:
                generator = TransitioningTrace(
                    self.cluster.sim,
                    [
                        (duration, make_trace(name, seed=cfg.seed * 97 + i * 13 + j))
                        for j, (duration, name) in enumerate(transition_segments)
                    ],
                )
            else:
                generator = make_trace(
                    trace if trace is not None else cfg.trace,
                    seed=cfg.seed * 97 + i * 13 + 1,
                )
            # Bursty ON/OFF behaviour with per-client hot-key affinity:
            # the occupied bandwidth then fluctuates over time and space,
            # the root causes (R1/R2) ChameleonEC is designed around.
            burst_factor = cfg.t_phase / 20.0
            client = TraceClient(
                self.cluster,
                node,
                generator,
                self.router,
                num_requests=cfg.requests_per_client,
                slice_size=cfg.slice_size,
                latency=self.latency,
                burst_on=8.0 * burst_factor,
                burst_off=5.0 * burst_factor,
                key_offset=i * 7919,
            )
            self.clients.append(client)
            client.start()

    def stop_foreground(self) -> None:
        """Ask every client to finish its in-flight request and stop."""
        for client in self.clients:
            client.stop()

    def foreground_done(self) -> bool:
        """True when every client has drained."""
        return all(c.done for c in self.clients)

    # -- failures ----------------------------------------------------------------

    def fail_nodes(self, count: int = 1) -> FailureReport:
        """Fail the first ``count`` storage nodes; trim to num_chunks chunks."""
        report = self.injector.fail_nodes(list(range(count)))
        per_node = max(1, self.config.num_chunks // count)
        chunks: list[ChunkId] = []
        for node_id in report.failed_nodes:
            node_chunks = [
                c for c in report.failed_chunks if self._original_node(c) == node_id
            ]
            chunks.extend(node_chunks[:per_node])
        report.failed_chunks = chunks[: self.config.num_chunks]
        return report

    def _original_node(self, chunk: ChunkId) -> int:
        return self.store.node_of(chunk)

    # -- algorithms -----------------------------------------------------------------

    def make_repairer(self, name: str, **overrides):
        """Build a runner/coordinator for the named algorithm."""
        cfg = self.config
        seed = cfg.seed + 1
        if name in BASELINES or name in BOOSTED:
            inner = {"CR": ConventionalRepair, "PPR": PPR, "ECPipe": ECPipe}[
                name.replace("RB+", "")
            ](seed=seed)
            algo = RepairBoost(inner, seed=seed) if name.startswith("RB+") else inner
            return RepairRunner(
                self.cluster,
                self.store,
                self.injector,
                algo,
                chunk_size=cfg.chunk_size,
                slice_size=cfg.slice_size,
                concurrency=overrides.pop("concurrency", cfg.concurrency),
                **overrides,
            )
        if name in CHAMELEON_VARIANTS:
            kwargs = dict(
                chunk_size=cfg.chunk_size,
                slice_size=cfg.slice_size,
                t_phase=cfg.t_phase,
                check_interval=cfg.check_interval,
                straggler_threshold=cfg.straggler_threshold,
                # Same reconstruction parallelism as the baselines so the
                # comparison isolates scheduling quality.
                max_inflight=cfg.concurrency,
            )
            kwargs.update(overrides)
            if name == "ETRP":
                kwargs["enable_reordering"] = False
                kwargs["enable_retuning"] = False
                coordinator = ChameleonRepair(
                    self.cluster, self.store, self.injector, self.monitor, **kwargs
                )
                coordinator.name = "ETRP"
                return coordinator
            cls = ChameleonRepairIO if name == "ChameleonEC-IO" else ChameleonRepair
            return cls(self.cluster, self.store, self.injector, self.monitor, **kwargs)
        raise ReproError(f"unknown algorithm {name!r}; choose from {ALL_ALGORITHMS}")
