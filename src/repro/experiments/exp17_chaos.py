"""Exp#17: SLO-gated chaos suite — every fault family at once, verdicted.

PRs 3–6 each exercised one fault family in isolation: churn (exp14),
bit-rot + scrubbing (exp15), coordinator failover (exp16). Production
incidents do not queue up politely, so this experiment composes all of
them — a full-node failure, a mid-repair node crash, transient
stragglers, long bandwidth degradations, rapidly-fluctuating link
capacity (:meth:`~repro.faults.FaultTimeline.fluctuate`), flow
interruptions, silent bit-rot under a live scrubber, and a coordinator
crash with journal-backed failover — under each of the four foreground
traffic families, and asserts declarative SLOs over the run's
virtual-time telemetry instead of eyeballing curves:

* ``chaos.p99`` — no sampling window's foreground P99 may exceed
  ``P99_CEILING`` × the calm warm-up baseline;
* ``chaos.repair-deadline`` — the (twice-interrupted) repair must
  complete within a budget derived from the configured phase length;
* ``chaos.detection`` — every injected corruption must be caught by
  the scrubber within the rot horizon plus a contended scan pass;
* ``chaos.zero-loss`` — no chunk may end the run unrepaired,
  checksum-failing, or unexplained.

A second, *intentionally unattainable* probe spec set (``probe.*``) is
evaluated alongside the gate: its breaches prove the breach-recording
machinery works end-to-end — ``BENCH_chaos.json`` always carries
structured breach records with virtual timestamps, even when the gate
itself is green.

Everything is seeded and driven by the virtual clock, so two runs with
the same ``--scale``/``--seed`` emit byte-identical JSON — which is
what lets CI diff the verdict instead of parsing logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig
from repro.faults.timeline import FaultTimeline, NodeCrash
from repro.slo import SLOReport, SLOSpec
from repro.traffic.traces import TRACE_FACTORIES

#: Chunk size (MB); matches exp15/exp16 — a scrub pass reads the whole
#: store, and 16 MB keeps it bounded at small ``--scale``.
CHUNK_MB = 16.0

#: Silent corruptions / latent sector errors injected per run.
CORRUPTIONS = 3
SECTOR_ERRORS = 1

#: Scrub rate as a fraction of one node's disk-read bandwidth.
SCRUB_INTENSITY = 0.5

#: Sampling windows per configured T_phase (window = t_phase / this).
WINDOWS_PER_PHASE = 4

#: Calm warm-up windows before any fault lands (the P99 baseline).
WARMUP_WINDOWS = 3

#: Gate ceiling: worst-window foreground P99 vs the calm baseline.
#: Chaos runs concentrate repair + scrub + degraded links into single
#: windows, so this is deliberately loose; the probe set owns tightness.
P99_CEILING = 40.0

#: Repair-completion budget in units of T_phase (the repair absorbs a
#: mid-run node crash *and* a coordinator crash + journal recovery).
DEADLINE_PHASES = 30.0

#: Scan-pass slack for the detection bound (fluctuating links slow the
#: scrubber's verification flows well below its paced issue rate).
DETECT_PASS_MARGIN = 4.0

#: Churn mix over the chaos horizon (2 × T_phase).
CRASHES = 1
STRAGGLERS = 2
DEGRADATIONS = 2
INTERRUPTIONS = 1


def gate_specs(
    config: ExperimentConfig,
    *,
    detect_bound: float,
    p99_ceiling: float = P99_CEILING,
) -> list[SLOSpec]:
    """The pass/fail objectives CI asserts (sized from the config)."""
    return [
        SLOSpec(
            "chaos.p99",
            "foreground_p99_inflation",
            p99_ceiling,
            "no window's foreground P99 above the ceiling x calm baseline",
        ),
        SLOSpec(
            "chaos.repair-deadline",
            "repair_deadline",
            DEADLINE_PHASES * config.t_phase,
            "repair completes despite churn + coordinator failover",
        ),
        SLOSpec(
            "chaos.detection",
            "detection_latency",
            detect_bound,
            "scrubber catches every corruption within a contended pass",
        ),
        SLOSpec(
            "chaos.zero-loss",
            "zero_loss",
            0.0,
            "no chunk ends the run lost, checksum-failing, or unexplained",
        ),
    ]


def probe_specs() -> list[SLOSpec]:
    """Unattainably tight probes: guaranteed breach records in the JSON."""
    return [
        SLOSpec(
            "probe.p99-tight",
            "foreground_p99_inflation",
            1.0,
            "probe: any window above the calm baseline breaches",
        ),
        SLOSpec(
            "probe.repair-instant",
            "repair_deadline",
            1e-3,
            "probe: a 1 ms repair deadline no real repair can meet",
        ),
        SLOSpec(
            "probe.detect-instant",
            "detection_latency",
            1e-6,
            "probe: a 1 us detection bound every scrub catch breaches",
        ),
    ]


@dataclass
class ChaosRun:
    """One (traffic family) chaos measurement."""

    trace: str
    #: Control-plane shards (1 = the single-coordinator plane).
    shards: int
    gate: SLOReport
    probe: SLOReport
    repair_time: float
    baseline_p99: float
    worst_window_p99: float
    chunks: int
    injected: int
    detected: int
    restored: int
    windows: int
    series: int
    repair_bw_peak_mbs: float
    scrub_bw_peak_mbs: float
    foreground_bw_mean_mbs: float
    #: Admission-controller stats (exp18); defaults = controller off.
    admission: bool = False
    controller_backoffs: int = 0
    controller_recoveries: int = 0
    controller_min_level: float = 1.0

    def summary(self) -> dict:
        """The JSON ``summary`` block (everything but the verdicts)."""
        return {
            "shards": self.shards,
            "repair_time_s": self.repair_time,
            "baseline_p99_ms": self.baseline_p99 * 1e3,
            "worst_window_p99_ms": self.worst_window_p99 * 1e3,
            "chunks": self.chunks,
            "injected": self.injected,
            "detected": self.detected,
            "restored": self.restored,
            "windows": self.windows,
            "series": self.series,
            "repair_bw_peak_mbs": self.repair_bw_peak_mbs,
            "scrub_bw_peak_mbs": self.scrub_bw_peak_mbs,
            "foreground_bw_mean_mbs": self.foreground_bw_mean_mbs,
        }


def run_one(
    config: ExperimentConfig,
    *,
    p99_ceiling: float = P99_CEILING,
    admission: dict | None = None,
    shards: int = 1,
) -> ChaosRun:
    """One full chaos run for ``config.trace``; see the module docstring.

    ``admission`` (exp18): kwargs for
    :meth:`~repro.api.Testbed.enable_admission_control`, installed right
    after the calm warm-up with the measured ``baseline_p99`` — the same
    anchor the SLO gate multiplies, so the controller's high-water mark
    and the gate's ceiling speak the same inflation units. ``None``
    keeps the controller off (exp17's open-loop behaviour).

    ``shards`` > 1 runs the sharded control plane
    (:meth:`~repro.api.Testbed.start_sharded_repair`) and replaces the
    single whole-plane coordinator crash with *two* targeted shard
    crashes at different times — shard 0 early, shard 1 mid-run — so
    the chaos gate exercises bounded-blast-radius failover under the
    full fault composition. ``shards=1`` is the single-coordinator
    path, unchanged.
    """
    window = config.t_phase / WINDOWS_PER_PHASE
    chaos_horizon = 2.0 * config.t_phase
    rot_horizon = 0.5 * config.t_phase

    testbed = Testbed.build(config)
    testbed.enable_journal()
    testbed.enable_integrity()
    testbed.enable_timeseries(window=window)
    testbed.start_foreground()

    # Calm warm-up: the windows that anchor the P99 inflation ceiling.
    sim = testbed.cluster.sim
    sim.run(until=sim.now + WARMUP_WINDOWS * window)
    baseline_p99 = testbed.latency.p99 if testbed.latency else 0.0

    if admission is not None:
        testbed.enable_admission_control(
            baseline_p99=baseline_p99 if baseline_p99 > 0 else None,
            **admission,
        )

    # The headline failure plus the chaos schedule. Both node-killing
    # events are known up front (the churn timeline is seeded), so rot
    # can be restricted to chunks whose payloads survive the run —
    # otherwise a corruption could vanish with its node and the
    # detection SLO would (correctly, but unhelpfully) never resolve.
    report = testbed.fail_nodes(1)
    alive = sorted(set(testbed.cluster.storage_ids)
                   - testbed.cluster.failed_node_ids())
    chaos = FaultTimeline(seed=config.seed + 41).churn(
        nodes=alive,
        horizon=chaos_horizon,
        crashes=CRASHES,
        stragglers=STRAGGLERS,
        degradations=DEGRADATIONS,
        interruptions=INTERRUPTIONS,
        straggler_duration=0.5 * config.t_phase,
    ).fluctuate(
        nodes=alive,
        horizon=chaos_horizon,
        period=chaos_horizon / 4.0,
        amplitude=(0.5, 0.9),
        fraction=0.4,
    )
    doomed = {e.node_id for e in chaos.events if isinstance(e, NodeCrash)}
    safe_chunks = [
        chunk
        for chunk in testbed.chunk_store.chunks()
        if testbed.store.node_of(chunk) not in doomed
    ]
    rot = FaultTimeline(seed=config.seed + 23).rot(
        chunks=safe_chunks,
        horizon=rot_horizon,
        corruptions=CORRUPTIONS,
        sector_errors=SECTOR_ERRORS,
        max_per_stripe=1,
    )
    testbed.install_faults(rot)

    scrub_rate_mbs = SCRUB_INTENSITY * config.disk_read_bw / 1e6
    testbed.start_scrubber(rate_mbs=scrub_rate_mbs)

    if shards == 1:
        repairer = testbed.make_repairer("ChameleonEC")
        repairer.repair(report.failed_chunks)
        testbed.install_faults(chaos)
        testbed.inject_coordinator_crash(
            0.15 * config.t_phase, recover_after=0.1 * config.t_phase
        )
    else:
        testbed.start_sharded_repair(
            "ChameleonEC", report.failed_chunks, shards=shards
        )
        testbed.install_faults(chaos)
        # Two shards die at different times; each failover touches only
        # its own partition while the sibling keeps repairing.
        testbed.inject_coordinator_crash(
            0.15 * config.t_phase, recover_after=0.1 * config.t_phase, shard=0
        )
        testbed.inject_coordinator_crash(
            0.45 * config.t_phase, recover_after=0.1 * config.t_phase, shard=1
        )

    # Detection bound: rot may land up to rot_horizon after injection
    # starts, then one full (contended) scan pass must catch it.
    store_bytes = len(testbed.store) * testbed.code.n * config.chunk_size
    pass_time = store_bytes / (scrub_rate_mbs * 1e6)
    detect_bound = rot_horizon + DETECT_PASS_MARGIN * pass_time

    def settled() -> bool:
        repairs_done = bool(testbed.repairers) and all(
            not getattr(r, "crashed", False) and r.done
            for r in testbed.repairers
        )
        ledger_done = not testbed.ledger.undetected and all(
            r.restored_at is not None for r in testbed.ledger.injected
        )
        return repairs_done and ledger_done

    testbed.run_until(settled, step=window)
    testbed.scrubber.stop()
    if testbed.controller is not None:
        testbed.controller.stop()
    testbed.stop_foreground()
    testbed.run_until(testbed.foreground_done, step=window)
    testbed.timeseries.stop()

    testbed.set_slos(*gate_specs(
        config, detect_bound=detect_bound, p99_ceiling=p99_ceiling
    ))
    gate = testbed.evaluate_slos(baseline_p99=baseline_p99)
    probe = testbed.evaluate_slos(
        specs=probe_specs(), baseline_p99=baseline_p99
    )

    finish_times = [r.meter.finished_at for r in testbed.repairers]
    finished = (
        max(finish_times)
        if finish_times and all(f is not None for f in finish_times)
        else None
    )
    started = min(
        r.meter.started_at
        for r in testbed.repairers
        if r.meter.started_at is not None
    )
    ledger_summary = testbed.ledger.summary()
    ts = testbed.timeseries
    controller = testbed.controller
    return ChaosRun(
        trace=config.trace,
        shards=shards,
        gate=gate,
        probe=probe,
        repair_time=(finished if finished is not None else sim.now) - started,
        baseline_p99=baseline_p99,
        worst_window_p99=ts.get("lat.foreground.p99").max(),
        chunks=len(report.failed_chunks),
        injected=int(ledger_summary["injected"]),
        detected=int(ledger_summary["detected"]),
        restored=int(ledger_summary["restored"]),
        windows=ts.windows_closed,
        series=len(ts.series),
        repair_bw_peak_mbs=ts.get("bw.total.repair").max() / 1e6,
        scrub_bw_peak_mbs=ts.get("bw.total.scrub").max() / 1e6,
        foreground_bw_mean_mbs=ts.get("bw.total.foreground").mean() / 1e6,
        admission=controller is not None,
        controller_backoffs=controller.backoffs if controller else 0,
        controller_recoveries=controller.recoveries if controller else 0,
        controller_min_level=controller.min_level if controller else 1.0,
    )


def run_exp17(scale: float = 0.08, seed: int = 0,
              traces: tuple[str, ...] | None = None) -> dict[str, ChaosRun]:
    """{trace family: chaos measurement} across all traffic families.

    Alongside the per-trace single-coordinator runs, one sharded
    scenario rides the suite: the first trace family re-run with a
    2-shard control plane and two staggered shard crashes, so the gate
    exercises bounded-blast-radius failover under full chaos.
    """
    chosen = tuple(TRACE_FACTORIES) if traces is None else traces
    results = {
        trace: run_one(
            ExperimentConfig.scaled(
                scale, seed=seed, chunk_mb=CHUNK_MB, trace=trace
            )
        )
        for trace in chosen
    }
    if chosen:
        results[f"{chosen[0]} (2 shards)"] = run_one(
            ExperimentConfig.scaled(
                scale, seed=seed, chunk_mb=CHUNK_MB, trace=chosen[0]
            ),
            shards=2,
        )
    return results


def verdict_payload(results: dict[str, ChaosRun], *,
                    scale: float, seed: int) -> dict:
    """The ``BENCH_chaos.json`` document (stable keys, virtual time only)."""
    return {
        "experiment": "exp17_chaos",
        "schema_version": 1,
        "scale": scale,
        "seed": seed,
        "passed": all(run.gate.passed for run in results.values()),
        "breaches_total": sum(len(r.gate.breaches) for r in results.values()),
        "probe_breaches_total": sum(
            len(r.probe.breaches) for r in results.values()
        ),
        "traces": {
            trace: {
                "passed": run.gate.passed,
                "slos": run.gate.to_dict(),
                "tight_probe": run.probe.to_dict(),
                "summary": run.summary(),
            }
            for trace, run in results.items()
        },
    }


def write_bench(results: dict[str, ChaosRun], path: str, *,
                scale: float, seed: int) -> dict:
    """Serialise the verdict document; returns the payload written."""
    payload = verdict_payload(results, scale=scale, seed=seed)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def rows(results: dict[str, ChaosRun]) -> list[list]:
    """Table rows: the gate verdict and headline stats per trace family."""
    out = []
    for trace, run in results.items():
        inflation = (
            run.worst_window_p99 / run.baseline_p99
            if run.baseline_p99 > 0
            else 0.0
        )
        out.append(
            [
                trace,
                "PASS" if run.gate.passed else "FAIL",
                len(run.gate.breaches),
                run.repair_time,
                run.baseline_p99 * 1e3,
                inflation,
                f"{run.detected}/{run.injected}",
                run.windows,
                run.repair_bw_peak_mbs,
                len(run.probe.breaches),
            ]
        )
    return out


HEADERS = [
    "trace",
    "gate",
    "breaches",
    "repair s",
    "base P99 ms",
    "worst infl",
    "detected",
    "windows",
    "repair pk MB/s",
    "probe breaches",
]
