"""Exp#14: repair under churn — crashes and stragglers mid-repair.

The paper's experiments fail nodes *before* the repair starts; real
clusters churn *while* it runs. This experiment measures how each repair
algorithm degrades when, with YCSB-A foreground traffic running, a
second node crashes and a third straggles partway through a full-node
repair (injected by a seeded :class:`repro.faults.FaultTimeline`):

* the crash kills every in-flight repair transfer touching the dead
  node (those chunks are retried with fresh plans) and adds the dead
  node's chunks to the repair batch;
* the straggler throttles a helper's links to 10% for a few seconds,
  exercising the straggler-aware re-scheduling path.

Metrics per algorithm: fault-free vs churn repair completion time,
retries, chunks adopted from the crash, chunks lost (zero while the
failures stay within the code's tolerance), and foreground P99
inflation relative to the fault-free run.

Fault offsets follow the paper's 20 s phase and shrink with ``t_phase``
exactly like Exp#11's straggler offsets, so scaled runs inject at the
same *relative* point of the repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import Testbed
from repro.experiments.config import ExperimentConfig
from repro.faults.timeline import FaultTimeline

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")

#: Paper-scale fault offsets (seconds after the repair starts, at
#: t_phase = 20 s): the crash lands early, the straggler mid-repair.
CRASH_AT = 2.0
STRAGGLER_AT = 4.0
STRAGGLER_DURATION = 3.0
STRAGGLER_SEVERITY = 0.1


@dataclass
class ChurnRun:
    """One (algorithm, faulted-or-not) measurement."""

    algorithm: str
    churn: bool
    repair_time: float
    repaired_chunks: int
    adopted_chunks: int
    retries: int
    lost_chunks: int
    p99_latency: float


def _pick_fault_nodes(testbed: Testbed) -> tuple[int, int]:
    """(crash target, straggler target): two distinct surviving helpers."""
    alive = sorted(testbed.cluster.alive_storage_ids())
    return alive[0], alive[1]


def run_one(
    config: ExperimentConfig, algorithm: str, *, churn: bool, warmup: float = 6.0
) -> ChurnRun:
    """One full measurement: foreground + failure + (churn +) repair."""
    testbed = Testbed.build(config)
    testbed.start_foreground()
    testbed.cluster.sim.run(until=testbed.cluster.sim.now + warmup)
    report = testbed.fail_nodes(1)
    repairer = testbed.make_repairer(algorithm)
    adopted: list = []
    repairer.on("chunks_added", lambda _r, chunks: adopted.extend(chunks))

    factor = config.t_phase / 20.0  # offsets assume the paper's 20 s phase
    horizon = 0.0
    if churn:
        crash_node, straggler_node = _pick_fault_nodes(testbed)
        timeline = (
            FaultTimeline(seed=config.seed + 11)
            .crash(CRASH_AT * factor, crash_node)
            .straggler(
                STRAGGLER_AT * factor,
                straggler_node,
                duration=STRAGGLER_DURATION * factor,
                severity=STRAGGLER_SEVERITY,
            )
        )
        horizon = (STRAGGLER_AT + STRAGGLER_DURATION) * factor
        testbed.install_faults(timeline)

    start = testbed.cluster.sim.now
    repairer.repair(report.failed_chunks)
    # Every fault must have fired before "done" counts: a crash after an
    # early finish reopens the batch with the dead node's chunks.
    testbed.run_until(
        lambda: repairer.done and testbed.cluster.sim.now >= start + horizon
    )
    fg_horizon = start + 3.0 * config.t_phase
    if testbed.cluster.sim.now < fg_horizon:
        testbed.cluster.sim.run(until=fg_horizon)
    testbed.stop_foreground()
    return ChurnRun(
        algorithm=algorithm,
        churn=churn,
        repair_time=repairer.meter.elapsed,
        repaired_chunks=len(repairer.completed),
        adopted_chunks=len(adopted),
        retries=repairer.retries,
        lost_chunks=len(repairer.lost),
        p99_latency=testbed.latency.p99 if testbed.latency else 0.0,
    )


def run_exp14(
    scale: float = 0.08,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> dict[tuple[str, bool], ChurnRun]:
    """{(algorithm, churn?): measurement} for fault-free and churn runs."""
    config = ExperimentConfig.scaled(scale, seed=seed)
    results: dict[tuple[str, bool], ChurnRun] = {}
    for algorithm in algorithms:
        for churn in (False, True):
            results[(algorithm, churn)] = run_one(config, algorithm, churn=churn)
    return results


def rows(results: dict[tuple[str, bool], ChurnRun]) -> list[list]:
    """Table rows: churn impact per algorithm."""
    algorithms = [a for a in ALGORITHMS if (a, False) in results or (a, True) in results]
    out = []
    for algorithm in algorithms:
        base = results.get((algorithm, False))
        faulted = results.get((algorithm, True))
        if base is None or faulted is None:
            continue
        p99_inflation = (
            faulted.p99_latency / base.p99_latency if base.p99_latency > 0 else 0.0
        )
        out.append(
            [
                algorithm,
                base.repair_time,
                faulted.repair_time,
                faulted.repaired_chunks,
                faulted.adopted_chunks,
                faulted.retries,
                faulted.lost_chunks,
                p99_inflation,
            ]
        )
    return out


HEADERS = [
    "algorithm",
    "fault-free s",
    "churn s",
    "chunks",
    "adopted",
    "retries",
    "lost",
    "P99 inflation",
]
