"""Command-line runner: ``python -m repro.experiments <exp> [--scale S]``.

Regenerates one paper figure/table and prints its rows, e.g.::

    python -m repro.experiments exp01 --scale 0.1
    python -m repro.experiments fig2
    python -m repro.experiments exp09 --seed 3

Observability (any experiment, no per-experiment code):

    python -m repro.experiments exp01 --trace /tmp/exp01.json   # Perfetto
    python -m repro.experiments exp11 --report                  # text report
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.harness import format_table


def _exp01(scale, seed):
    from repro.experiments.exp01_interference import (
        ALGORITHMS,
        rows_p99,
        rows_throughput,
        run_exp01,
    )

    results = run_exp01(scale=scale, seed=seed)
    headers = ["trace", *ALGORITHMS]
    return [
        ("Exp#1 / Fig 12(a): repair throughput (MB/s)", headers, rows_throughput(results)),
        ("Exp#1 / Fig 12(b): P99 latency (ms)", headers, rows_p99(results)),
    ]


def _exp02(scale, seed):
    from repro.experiments.exp02_trace_slowdown import ALGORITHMS, rows, run_exp02

    results = run_exp02(scale=scale, seed=seed)
    return [("Exp#2 / Fig 13: interference degree", ["trace", *ALGORITHMS], rows(results))]


def _exp03(scale, seed):
    from repro.experiments.exp03_tphase import rows, run_exp03

    results = run_exp03(scale=scale, seed=seed)
    return [("Exp#3 / Fig 14: ChameleonEC vs T_phase",
             ["T_phase", "throughput MB/s", "P99 ms"], rows(results))]


def _exp04(scale, seed):
    from repro.experiments.exp04_adaptivity import rows, run_exp04, series_rows

    results = run_exp04(scale=scale, seed=seed)
    return [
        ("Exp#4 / Fig 15: average throughput under trace transitions",
         ["algorithm", "throughput MB/s", "repair time s"], rows(results)),
        ("Exp#4 / Fig 15: throughput series (MB/s)",
         ["algorithm"] + [f"w{i}" for i in range(8)], series_rows(results)),
    ]


def _exp05(scale, seed):
    from repro.experiments.exp05_computation import CHUNK_COUNTS, rows, run_exp05

    results = run_exp05(seed=seed)
    return [("Exp#5 / Fig 16: plan-generation time (s)",
             ["nodes", *(f"{c} chunks" for c in CHUNK_COUNTS)], rows(results))]


def _exp06(scale, seed):
    from repro.experiments.exp06_repairboost import rows, run_exp06

    results = run_exp06(scale=scale, seed=seed)
    return [("Exp#6 / Fig 17: RepairBoost vs ChameleonEC",
             ["algorithm", "throughput MB/s", "P99 ms"], rows(results))]


def _exp07(scale, seed):
    from repro.experiments.exp07_no_foreground import ALGORITHMS, rows, run_exp07

    results = run_exp07(scale=scale, seed=seed)
    return [("Exp#7 / Fig 18: no-foreground throughput (MB/s)",
             ["link bw", *ALGORITHMS], rows(results))]


def _exp08(scale, seed):
    from repro.experiments.exp08_multinode import ALGORITHMS, rows, run_exp08

    results = run_exp08(scale=scale, seed=seed)
    return [("Exp#8 / Fig 19: multi-node repair (MB/s)",
             ["failures", *ALGORITHMS], rows(results))]


def _exp09(scale, seed):
    from repro.experiments.exp09_generality import ALGORITHMS, rows, run_exp09

    results = run_exp09(scale=scale, seed=seed)
    return [("Exp#9 / Fig 20: throughput by erasure code (MB/s)",
             ["code", *ALGORITHMS], rows(results))]


def _exp10(scale, seed):
    from repro.experiments.exp10_degraded_read import ALGORITHMS, rows, run_exp10

    results = run_exp10(scale=scale, seed=seed)
    return [("Exp#10 / Fig 21: degraded-read throughput (MB/s)",
             ["code", *ALGORITHMS], rows(results))]


def _exp11(scale, seed):
    from repro.experiments.exp11_breakdown import ALGORITHMS, rows, run_exp11

    results = run_exp11(scale=scale, seed=seed)
    return [("Exp#11 / Fig 22: phase throughput with straggler (MB/s)",
             ["straggler start", *ALGORITHMS], rows(results))]


def _exp12(scale, seed):
    from repro.experiments.exp12_storage_bottleneck import ALGORITHMS, rows, run_exp12

    results = run_exp12(scale=scale, seed=seed)
    return [("Exp#12 / Fig 23: storage-bottlenecked throughput (MB/s)",
             ["disk bw", *ALGORITHMS], rows(results))]


def _exp13(scale, seed):
    from repro.experiments.exp13_network_bw import ALGORITHMS, rows, run_exp13

    results = run_exp13(scale=scale, seed=seed)
    return [("Exp#13 / Fig 24: throughput vs link bandwidth (MB/s)",
             ["link bw", *ALGORITHMS], rows(results))]


def _exp14(scale, seed):
    from repro.experiments.exp14_churn import HEADERS, rows, run_exp14

    results = run_exp14(scale=scale, seed=seed)
    return [("Exp#14: repair under churn (mid-repair crash + straggler)",
             HEADERS, rows(results))]


def _exp15(scale, seed):
    from repro.experiments.exp15_scrub import HEADERS, rows, run_exp15

    results = run_exp15(scale=scale, seed=seed)
    return [("Exp#15: background scrubbing (detection latency vs P99 inflation)",
             HEADERS, rows(results))]


def _exp16(scale, seed):
    from repro.experiments.exp16_failover import HEADERS, rows, run_exp16

    results = run_exp16(scale=scale, seed=seed)
    return [("Exp#16: coordinator failover (crash timing vs repair inflation)",
             HEADERS, rows(results))]


def _exp17(scale, seed, out="BENCH_chaos.json"):
    from repro.experiments.exp17_chaos import (
        HEADERS,
        rows,
        run_exp17,
        write_bench,
    )

    results = run_exp17(scale=scale, seed=seed)
    payload = write_bench(results, out, scale=scale, seed=seed)
    gate = "PASS" if payload["passed"] else "FAIL"
    return [(
        f"Exp#17: SLO-gated chaos suite — {gate} "
        f"({payload['breaches_total']} gate breaches, verdicts in {out})",
        HEADERS, rows(results),
    )]


def _exp18(scale, seed, out="BENCH_adaptive.json"):
    from repro.experiments.exp18_adaptive import (
        HEADERS,
        rows,
        run_exp18,
        write_bench,
    )

    results = run_exp18(scale=scale, seed=seed)
    payload = write_bench(results, out, scale=scale, seed=seed)
    gate = "PASS" if payload["passed"] else "FAIL"
    breaches = payload["p99_breach_windows"]
    return [(
        f"Exp#18: adaptive admission control — {gate} "
        f"(breach windows {breaches['controller_off']} off vs "
        f"{breaches['controller_on']} on, verdicts in {out})",
        HEADERS, rows(results),
    )]


def _exp19(scale, seed, out="BENCH_shard.json"):
    from repro.experiments.exp19_shard_failover import (
        HEADERS,
        rows,
        run_exp19,
        write_bench,
    )

    results = run_exp19(scale=scale, seed=seed)
    payload = write_bench(results, out, scale=scale, seed=seed)
    gate = "PASS" if payload["passed"] else "FAIL"
    blasts = payload["mean_blast_by_shards"]
    trend = " -> ".join(f"{blasts[s]:.2f}" for s in sorted(blasts, key=int))
    return [(
        f"Exp#19: sharded control-plane failover — {gate} "
        f"(mean blast radius {trend}, verdicts in {out})",
        HEADERS, rows(results),
    )]


def _exp20(scale, seed, out="BENCH_partition.json"):
    from repro.experiments.exp20_partition import (
        HEADERS,
        rows,
        run_exp20,
        write_bench,
    )

    results = run_exp20(scale=scale, seed=seed)
    payload = write_bench(results, out, scale=scale, seed=seed)
    gate = "PASS" if payload["passed"] else "FAIL"
    zombie = payload["zombie"]
    return [(
        f"Exp#20: partition-tolerant repair — {gate} "
        f"(tail_reduced={payload['tail_reduced']}, "
        f"fenced {zombie['fenced_writes']} stale writes, verdicts in {out})",
        HEADERS, rows(results),
    )]


def _fig2(scale, seed):
    from repro.experiments.figures import fig2_rows, run_fig2

    return [("Fig 2: Pr_dl vs repair throughput",
             ["repair throughput", "Pr_dl"], fig2_rows(run_fig2()))]


def _fig4(scale, seed):
    from repro.experiments.motivation import rows_p99, rows_repair_time, run_motivation

    results = run_motivation(scale=scale, seed=seed)
    return [
        ("Fig 4(a): repair time (s)", ["clients", "CR", "PPR", "ECPipe"],
         rows_repair_time(results)),
        ("Fig 4(b): P99 (ms)", ["clients", "CR", "PPR", "ECPipe"], rows_p99(results)),
    ]


def _fig5(scale, seed):
    from repro.experiments.figures import fig5_rows, run_fig5

    return [("Fig 5: foreground bandwidth fluctuation (Gb/s)",
             ["direction", "mean", "min", "max"], fig5_rows(run_fig5(scale, seed)))]


def _fig6(scale, seed):
    from repro.experiments.figures import fig6_rows, run_fig6

    return [("Fig 6: most/least-loaded link bandwidth (Gb/s)",
             ["link", "repair", "foreground", "total"],
             fig6_rows(run_fig6(scale, seed)))]


EXPERIMENTS = {
    "fig2": _fig2, "fig4": _fig4, "fig5": _fig5, "fig6": _fig6,
    "exp01": _exp01, "exp02": _exp02, "exp03": _exp03, "exp04": _exp04,
    "exp05": _exp05, "exp06": _exp06, "exp07": _exp07, "exp08": _exp08,
    "exp09": _exp09, "exp10": _exp10, "exp11": _exp11, "exp12": _exp12,
    "exp13": _exp13, "exp14": _exp14, "exp15": _exp15, "exp16": _exp16,
    "exp17": _exp17, "exp18": _exp18, "exp19": _exp19, "exp20": _exp20,
}

#: Experiments that write a machine-readable verdict document (--out).
BENCH_EXPERIMENTS = {
    "exp17": "BENCH_chaos.json",
    "exp18": "BENCH_adaptive.json",
    "exp19": "BENCH_shard.json",
    "exp20": "BENCH_partition.json",
}


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the experiment, print its tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate one ChameleonEC paper figure/table.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="which experiment")
    parser.add_argument("--scale", type=float, default=0.08,
                        help="workload scale in (0, 1]; 1.0 = paper size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON of the whole run "
                             "(open in Perfetto or chrome://tracing)")
    parser.add_argument("--report", action="store_true",
                        help="print a run report (per-phase breakdown, slowest "
                             "tasks, scheduler decision log)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="exp17/exp18/exp19/exp20 only: where to write "
                             "the machine-readable verdict document")
    args = parser.parse_args(argv)

    if args.trace is not None:
        # Fail before the (potentially long) run, not at export time.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            parser.error(f"cannot write trace file {args.trace!r}: {exc}")

    observing = args.trace is not None or args.report
    tracer = registry = prev_tracer = prev_registry = None
    if observing:
        from repro.obs import (
            MetricsRegistry,
            Tracer,
            build_report,
            set_registry,
            set_tracer,
            write_chrome_trace,
        )

        tracer = Tracer()
        registry = MetricsRegistry()
        prev_tracer = set_tracer(tracer)
        prev_registry = set_registry(registry)
    try:
        handler = EXPERIMENTS[args.experiment]
        if args.experiment in BENCH_EXPERIMENTS:
            out = args.out or BENCH_EXPERIMENTS[args.experiment]
            tables = handler(args.scale, args.seed, out=out)
        else:
            tables = handler(args.scale, args.seed)
        for title, headers, rows in tables:
            print(format_table(title, headers, rows))
            print()
        if observing:
            if args.trace is not None:
                count = write_chrome_trace(tracer, args.trace)
                print(f"trace: {count} events written to {args.trace}")
            if args.report:
                print(build_report(tracer, registry))
    finally:
        if observing:
            set_tracer(prev_tracer)
            set_registry(prev_registry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
