"""Exp#9 (Fig. 20): generality across erasure codes.

RS(8,3) (Yahoo), RS(10,4) (Facebook f4), LRC(8,2,2), LRC(10,2,2), and
Butterfly(4,2). LRCs repair faster than RS for every algorithm (fewer
sources); Butterfly admits no elastic plan, so only CR and ChameleonEC
are compared and the ChameleonEC gain is small.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

CODES = ("RS(8,3)", "RS(10,4)", "LRC(8,2,2)", "LRC(10,2,2)", "Butterfly(4,2)")
ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")
BUTTERFLY_ALGORITHMS = ("CR", "ChameleonEC")


def run_exp09(
    scale: float = 0.12,
    seed: int = 0,
    codes: tuple[str, ...] = CODES,
) -> dict[tuple[str, str], RepairResult]:
    """Repair under each erasure code; {(code, algo): result}."""
    results: dict[tuple[str, str], RepairResult] = {}
    for code in codes:
        algorithms = BUTTERFLY_ALGORITHMS if code.startswith("Butterfly") else ALGORITHMS
        config = ExperimentConfig.scaled(scale, seed=seed, code=code)
        for algorithm in algorithms:
            results[(code, algorithm)] = run_repair_experiment(config, algorithm)
    return results


def rows(results: dict) -> list[list]:
    """Table rows: throughput per code and algorithm."""
    codes = sorted({c for c, _ in results})
    out = []
    for code in codes:
        row = [code]
        for algorithm in ALGORITHMS:
            r = results.get((code, algorithm))
            row.append(r.throughput_mbs if r else "-")
        out.append(row)
    return out
