"""Exp#13 (Fig. 24): impact of network bandwidth (with foreground traffic).

Links sweep 1 Gb/s to 10 Gb/s. Throughput grows with bandwidth; the
relative ChameleonEC gain shrinks once storage I/O starts dominating.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")
BANDWIDTHS_GBPS = (1.0, 4.0, 7.0, 10.0)


def run_exp13(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    bandwidths: tuple[float, ...] = BANDWIDTHS_GBPS,
) -> dict[tuple[float, str], RepairResult]:
    """Sweep link bandwidth with foreground; {(Gb/s, algo): result}."""
    results: dict[tuple[float, str], RepairResult] = {}
    for gbps_value in bandwidths:
        config = ExperimentConfig.scaled(scale, seed=seed, link_gbps=gbps_value)
        for algorithm in algorithms:
            results[(gbps_value, algorithm)] = run_repair_experiment(config, algorithm)
    return results


def rows(results: dict) -> list[list]:
    """Table rows: one per bandwidth, throughput per algorithm."""
    bandwidths = sorted({b for b, _ in results})
    algorithms = [a for a in ALGORITHMS if any((b, a) in results for b in bandwidths)]
    out = []
    for bw in bandwidths:
        out.append(
            [f"{bw:g} Gb/s"]
            + [
                results[(bw, a)].throughput_mbs if (bw, a) in results else "-"
                for a in algorithms
            ]
        )
    return out
