"""Exp#6 (Fig. 17): baselines boosted by RepairBoost vs ChameleonEC.

RepairBoost balances repair traffic statically; ChameleonEC should still
win because RB-boosted algorithms keep their fixed plan structures and
ignore idle bandwidth.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

ALGORITHMS = ("RB+CR", "RB+PPR", "RB+ECPipe", "ChameleonEC")


def run_exp06(
    scale: float = 0.12, seed: int = 0, algorithms: tuple[str, ...] = ALGORITHMS
) -> dict[str, RepairResult]:
    """RB-boosted baselines vs ChameleonEC; {algo: result}."""
    config = ExperimentConfig.scaled(scale, seed=seed)
    return {
        algorithm: run_repair_experiment(config, algorithm)
        for algorithm in algorithms
    }


def rows(results: dict[str, RepairResult]) -> list[list]:
    """Table rows: throughput and P99 per algorithm."""
    return [
        [name, r.throughput_mbs, r.p99_latency * 1000]
        for name, r in results.items()
    ]
