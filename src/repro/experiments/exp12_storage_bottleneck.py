"""Exp#12 (Fig. 23): storage-bottlenecked scenarios.

Disk bandwidth is throttled from 500 MB/s down to 250 MB/s while links
stay at 10 Gb/s (network/storage ratio 2.5 -> 5). ChameleonEC-IO, which
dispatches on idle *disk* bandwidth, overtakes plain ChameleonEC as the
disks become the bottleneck.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

ALGORITHMS = ("CR", "ChameleonEC", "ChameleonEC-IO")
DISK_MBS = (250.0, 375.0, 500.0)


def run_exp12(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    disk_bandwidths: tuple[float, ...] = DISK_MBS,
) -> dict[tuple[float, str], RepairResult]:
    """Sweep disk bandwidth; {(MB/s, algo): result}."""
    results: dict[tuple[float, str], RepairResult] = {}
    for disk in disk_bandwidths:
        config = ExperimentConfig.scaled(scale, seed=seed, disk_mbs=disk)
        for algorithm in algorithms:
            results[(disk, algorithm)] = run_repair_experiment(config, algorithm)
    return results


def rows(results: dict) -> list[list]:
    """Table rows: throughput per disk bandwidth and algorithm."""
    disks = sorted({d for d, _ in results})
    algorithms = [a for a in ALGORITHMS if any((d, a) in results for d in disks)]
    out = []
    for disk in disks:
        out.append(
            [f"disk {disk:g} MB/s"]
            + [
                results[(disk, a)].throughput_mbs if (disk, a) in results else "-"
                for a in algorithms
            ]
        )
    return out
