"""Algorithm-name registry shared by the facade and the harnesses.

A leaf module (no repro imports) so both :mod:`repro.api` and the
experiment drivers can name the supported repair algorithms without
creating an import cycle.
"""

BASELINES = ("CR", "PPR", "ECPipe")
BOOSTED = ("RB+CR", "RB+PPR", "RB+ECPipe")
CHAMELEON_VARIANTS = ("ChameleonEC", "ChameleonEC-IO", "ETRP")
ALL_ALGORITHMS = BASELINES + BOOSTED + CHAMELEON_VARIANTS
