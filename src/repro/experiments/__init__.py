"""Experiment harnesses: one module per paper table/figure.

See DESIGN.md for the experiment-to-module index. Every ``run_*``
function accepts ``scale`` (default ~0.12) so the whole grid completes
in minutes; pass ``scale=1.0`` plus ``ExperimentConfig.paper()`` values
for full-scale replication.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    RepairResult,
    format_table,
    run_repair_experiment,
    run_sim_until,
    run_trace_only,
    run_trace_with_repair,
)
from repro.experiments.scenario import ALL_ALGORITHMS, Scenario

__all__ = [
    "ALL_ALGORITHMS",
    "ExperimentConfig",
    "RepairResult",
    "Scenario",
    "format_table",
    "run_repair_experiment",
    "run_sim_until",
    "run_trace_only",
    "run_trace_with_repair",
]
