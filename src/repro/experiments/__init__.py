"""Experiment harnesses: one module per paper table/figure.

See DESIGN.md for the experiment-to-module index. Every ``run_*``
function accepts ``scale`` (default ~0.12) so the whole grid completes
in minutes; pass ``scale=1.0`` plus ``ExperimentConfig.paper()`` values
for full-scale replication.

``Scenario`` is deprecated — use :class:`repro.Testbed`. It is still
importable from here (lazily, with a ``DeprecationWarning`` at
construction) for old callers.
"""

from repro.experiments.algorithms import ALL_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import (
    RepairResult,
    format_table,
    run_repair_experiment,
    run_sim_until,
    run_trace_only,
    run_trace_with_repair,
)

__all__ = [
    "ALL_ALGORITHMS",
    "ExperimentConfig",
    "RepairResult",
    "Scenario",
    "format_table",
    "run_repair_experiment",
    "run_sim_until",
    "run_trace_only",
    "run_trace_with_repair",
]


def __getattr__(name: str):
    # Lazy so importing repro.experiments (which repro.api does for its
    # config) never pulls in the deprecated shim — and, through it,
    # repro.api itself.
    if name == "Scenario":
        from repro.experiments.scenario import Scenario

        return Scenario
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
