"""Exp#8 (Fig. 19): multi-node repair (1 to 3 concurrent node failures).

RS(10,4) tolerates up to four failures; throughput declines slightly as
nodes vanish (fewer dispatch targets, less aggregate bandwidth), and
ChameleonEC's advantage grows under the tighter bandwidth.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")
FAILURE_COUNTS = (1, 2, 3)


def run_exp08(
    scale: float = 0.12,
    seed: int = 0,
    algorithms: tuple[str, ...] = ALGORITHMS,
    failure_counts: tuple[int, ...] = FAILURE_COUNTS,
) -> dict[tuple[int, str], RepairResult]:
    """Repair with 1-3 failed nodes; {(count, algo): result}."""
    results: dict[tuple[int, str], RepairResult] = {}
    for failures in failure_counts:
        config = ExperimentConfig.scaled(scale, seed=seed)
        for algorithm in algorithms:
            results[(failures, algorithm)] = run_repair_experiment(
                config, algorithm, failed_nodes=failures
            )
    return results


def rows(results: dict) -> list[list]:
    """Table rows: throughput per failure count and algorithm."""
    counts = sorted({c for c, _ in results})
    algorithms = [a for a in ALGORITHMS if any((c, a) in results for c in counts)]
    out = []
    for count in counts:
        out.append(
            [f"{count} failed"]
            + [
                results[(count, a)].throughput_mbs if (count, a) in results else "-"
                for a in algorithms
            ]
        )
    return out
