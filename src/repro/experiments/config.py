"""Experiment configuration with the paper's defaults and a scale knob.

Full-scale values match Section V-A: 20 m5.xlarge-like nodes, 10 Gb/s
links, ~500 MB/s disks, 64 MB chunks, 1 MB slices, RS(10,4),
T_phase = 20 s, 200 chunks per full-node repair and four YCSB clients.
``scaled()`` shrinks the repair batch, enlarges slices, and bounds the
foreground so a whole experiment grid finishes in seconds-to-minutes of
wall time while keeping every bandwidth *ratio* identical — which is
what determines the result shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.node import MB, gbps, mbs
from repro.errors import ReproError


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment harness."""

    num_nodes: int = 20
    num_clients: int = 4
    link_gbps: float = 10.0
    disk_mbs: float = 500.0
    # Asymmetric disks (e.g. SSD reads outpacing writes); None falls
    # back to the symmetric ``disk_mbs`` value for that side.
    disk_read_mbs: float | None = None
    disk_write_mbs: float | None = None
    code: str = "RS(10,4)"
    chunk_mb: float = 64.0
    slice_mb: float = 1.0
    num_chunks: int = 200  # failed chunks repaired in a full-node repair
    t_phase: float = 20.0
    check_interval: float = 1.0
    straggler_threshold: float = 2.0
    trace: str = "YCSB-A"
    requests_per_client: int | None = 100_000
    concurrency: int = 8  # multi-chunk parallelism of the baselines
    # Optional hierarchical topology (None = the paper's flat testbed).
    racks: int | None = None
    oversubscription: float = 1.0
    # Run the numpy columnar flow kernel instead of the dict scheduler
    # (byte-identical results; required for 1000-node/100k-flow scale).
    columnar_kernel: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ReproError("need at least two storage nodes")
        if self.chunk_mb <= 0 or self.slice_mb <= 0:
            raise ReproError("chunk and slice sizes must be positive")
        if self.num_chunks < 1:
            raise ReproError("need at least one chunk to repair")
        for side in (self.disk_read_mbs, self.disk_write_mbs):
            if side is not None and side <= 0:
                raise ReproError("disk bandwidths must be positive")

    # -- byte-level views -------------------------------------------------------

    @property
    def link_bw(self) -> float:
        """Link bandwidth in bytes/second."""
        return gbps(self.link_gbps)

    @property
    def disk_bw(self) -> float:
        """Symmetric disk bandwidth in bytes/second (convenience alias)."""
        return mbs(self.disk_mbs)

    @property
    def disk_read_bw(self) -> float:
        """Disk read bandwidth in bytes/second."""
        return mbs(self.disk_read_mbs if self.disk_read_mbs is not None
                   else self.disk_mbs)

    @property
    def disk_write_bw(self) -> float:
        """Disk write bandwidth in bytes/second."""
        return mbs(self.disk_write_mbs if self.disk_write_mbs is not None
                   else self.disk_mbs)

    @property
    def chunk_size(self) -> float:
        """Chunk size in bytes."""
        return self.chunk_mb * MB

    @property
    def slice_size(self) -> float:
        """Slice size in bytes."""
        return self.slice_mb * MB

    def with_(self, **kwargs) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The exact Section V-A defaults."""
        return cls()

    @classmethod
    def scaled(cls, scale: float = 0.1, **overrides) -> "ExperimentConfig":
        """A proportionally shrunk configuration for fast runs.

        ``scale`` shrinks the repaired batch (200 -> 200*scale chunks);
        slices grow to 8 MB to bound simulator events; the foreground
        runs unbounded (clients stop when the repair ends), preserving
        contention for the whole measurement window.
        """
        if not 0 < scale <= 1:
            raise ReproError("scale must lie in (0, 1]")
        cfg = cls(
            num_chunks=max(6, int(round(200 * scale))),
            slice_mb=2.0,
            requests_per_client=None,
            t_phase=max(2.0, 20.0 * scale * 2),
            check_interval=0.25,
            straggler_threshold=0.5,
        )
        return cfg.with_(**overrides) if overrides else cfg
