"""Low-level simulation driving: advance virtual time until a condition.

Lives below both :mod:`repro.api` and
:mod:`repro.experiments.harness` (which re-exports these names) so the
facade can drive a cluster without importing the harness — and, through
it, the legacy ``Scenario`` shim.
"""

from __future__ import annotations

from repro.errors import ConvergenceError

#: Hard stop for any simulated run (seconds of virtual time).
MAX_SIM_TIME = 200_000.0


def run_sim_until(cluster, predicate, step: float = 5.0, limit: float = MAX_SIM_TIME):
    """Advance the simulator until ``predicate()`` holds or ``limit``.

    The predicate is re-checked at least every ``step`` seconds of
    virtual time, but the clock jumps straight to the next queued event
    when that lies further away — a sparse or drained event queue no
    longer costs thousands of idle ``run()`` probes. With an empty
    queue, nothing can change except the clock itself, so it advances
    directly to ``limit`` (satisfying any time-based predicate on the
    way out).

    Raises :class:`repro.errors.ConvergenceError` (a ``RuntimeError``
    subclass) when ``limit`` is reached with the predicate still false —
    never returns silently with the condition unmet.
    """
    while not predicate() and cluster.sim.now < limit:
        next_time = cluster.sim.peek_next_time()
        if next_time is None:
            cluster.sim.run(until=limit)
            break
        target = min(max(cluster.sim.now + step, next_time), limit)
        cluster.sim.run(until=target)
    if not predicate():
        raise ConvergenceError(
            f"simulation hit the {limit} s virtual-time limit at "
            f"t={cluster.sim.now} with the predicate still false; "
            "raise `limit` or check for stalled work "
            "(e.g. a crashed coordinator that was never recovered)"
        )
    return cluster.sim.now
