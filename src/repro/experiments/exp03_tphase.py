"""Exp#3 (Fig. 14): ChameleonEC repair throughput versus T_phase.

The paper sweeps T_phase from 10 s to 40 s and observes gradually
declining throughput (larger phases react more slowly to bandwidth
changes). At ``scale < 1`` the same sweep is applied relative to the
scaled default phase length.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

PAPER_PHASES = (10.0, 20.0, 30.0, 40.0)


def run_exp03(
    scale: float = 0.12, seed: int = 0, phases: tuple[float, ...] = PAPER_PHASES
) -> dict[float, RepairResult]:
    """Returns {paper T_phase: RepairResult} for ChameleonEC."""
    base = ExperimentConfig.scaled(scale, seed=seed)
    # The T_phase shape only shows when a repair spans several phases;
    # double the batch so even the longest phase setting needs a few.
    base = base.with_(num_chunks=base.num_chunks * 2)
    # Keep the paper's 10/20/30/40 ratios, anchored on the scaled default
    # (which corresponds to the paper's 20 s recommendation).
    factor = base.t_phase / 20.0
    results: dict[float, RepairResult] = {}
    for paper_value in phases:
        config = base.with_(t_phase=paper_value * factor)
        results[paper_value] = run_repair_experiment(config, "ChameleonEC")
    return results


def rows(results: dict[float, RepairResult]) -> list[list]:
    """Table rows: throughput and P99 per T_phase value."""
    return [
        [f"T_phase={int(p)}s", r.throughput_mbs, r.p99_latency * 1000]
        for p, r in sorted(results.items())
    ]
