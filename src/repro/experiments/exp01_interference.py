"""Exp#1 (Fig. 12): repair throughput and P99 latency across four traces.

Replays YCSB-A, IBM-OS, Memcached, and Facebook-ETC as foreground
traffic while each algorithm repairs the same failed node; reports
repair throughput (MB/s) and foreground P99 latency (ms).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import RepairResult, run_repair_experiment

TRACES = ("YCSB-A", "IBM-OS", "Memcached", "Facebook-ETC")
ALGORITHMS = ("CR", "PPR", "ECPipe", "ChameleonEC")


def run_exp01(
    scale: float = 0.12,
    seed: int = 0,
    traces: tuple[str, ...] = TRACES,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> dict[tuple[str, str], RepairResult]:
    """Returns {(trace, algorithm): RepairResult} for the whole grid."""
    results: dict[tuple[str, str], RepairResult] = {}
    for trace in traces:
        for algorithm in algorithms:
            config = ExperimentConfig.scaled(scale, seed=seed, trace=trace)
            results[(trace, algorithm)] = run_repair_experiment(
                config, algorithm, trace=trace
            )
    return results


def rows_throughput(results: dict) -> list[list]:
    """Fig. 12(a) rows: throughput per trace and algorithm."""
    traces = sorted({t for t, _ in results})
    algorithms = [a for a in ALGORITHMS if any((t, a) in results for t in traces)]
    rows = []
    for trace in traces:
        row = [trace]
        for algorithm in algorithms:
            r = results.get((trace, algorithm))
            row.append(r.throughput_mbs if r else "-")
        rows.append(row)
    return rows


def rows_p99(results: dict) -> list[list]:
    """Fig. 12(b) rows: P99 (ms) per trace and algorithm."""
    traces = sorted({t for t, _ in results})
    algorithms = [a for a in ALGORITHMS if any((t, a) in results for t in traces)]
    rows = []
    for trace in traces:
        row = [trace]
        for algorithm in algorithms:
            r = results.get((trace, algorithm))
            row.append(r.p99_latency * 1000 if r else "-")
        rows.append(row)
    return rows
