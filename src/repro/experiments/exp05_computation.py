"""Exp#5 (Fig. 16): coordinator computation time.

Measures the wall-clock time the ChameleonEC coordinator spends
dispatching tasks (Section III-A) and establishing plans (Algorithm 1)
for a batch of failed chunks, versus the number of storage nodes and the
number of chunks — no data is moved.
"""

from __future__ import annotations

import time

from repro.cluster.failures import FailureInjector
from repro.cluster.node import MB
from repro.cluster.placement import place_stripes
from repro.cluster.topology import Cluster
from repro.codes.registry import make_code
from repro.core.dispatch import TaskDispatcher
from repro.core.planner import build_plan
from repro.monitor.bandwidth import BandwidthMonitor

NODE_COUNTS = (50, 100, 200, 500)
CHUNK_COUNTS = (200, 600, 1000)


def plan_generation_time(
    num_nodes: int, num_chunks: int, code_spec: str = "RS(10,4)", seed: int = 0
) -> float:
    """Seconds of wall time to dispatch + plan ``num_chunks`` repairs."""
    code = make_code(code_spec)
    cluster = Cluster(num_nodes=num_nodes, num_clients=0)
    num_stripes = int(num_chunks * num_nodes / code.n * 1.3) + num_chunks
    store = place_stripes(
        code, num_stripes, cluster.storage_ids, chunk_size=64 * MB, seed=seed
    )
    injector = FailureInjector(cluster, store)
    report = injector.fail_nodes([0])
    chunks = report.failed_chunks[:num_chunks]
    monitor = BandwidthMonitor(cluster)
    dispatcher = TaskDispatcher(injector, monitor, chunk_size=64 * MB)
    dispatcher.begin_phase()
    start = time.perf_counter()
    for chunk in chunks:
        dispatch = dispatcher.dispatch_chunk(chunk, code)
        build_plan(dispatch, code, injector)
    return time.perf_counter() - start


def run_exp05(
    node_counts: tuple[int, ...] = NODE_COUNTS,
    chunk_counts: tuple[int, ...] = CHUNK_COUNTS,
    seed: int = 0,
) -> dict[tuple[int, int], float]:
    """{(nodes, chunks): seconds} for the full grid."""
    results: dict[tuple[int, int], float] = {}
    for nodes in node_counts:
        for chunks in chunk_counts:
            results[(nodes, chunks)] = plan_generation_time(nodes, chunks, seed=seed)
    return results


def rows(results: dict[tuple[int, int], float]) -> list[list]:
    """Table rows: one per node count, seconds per chunk count."""
    node_counts = sorted({n for n, _ in results})
    chunk_counts = sorted({c for _, c in results})
    out = []
    for nodes in node_counts:
        out.append(
            [f"n={nodes}"]
            + [results.get((nodes, chunks), float("nan")) for chunks in chunk_counts]
        )
    return out
