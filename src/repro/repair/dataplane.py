"""Couples the timing simulation to real chunk payloads.

Attach a :class:`DataPlane` to any repair driver (a
:class:`~repro.repair.runner.RepairRunner` or a
:class:`~repro.core.chameleon.ChameleonRepair`): whenever the simulator
reports a chunk repaired, the *final* plan — including any straggler
re-tuning applied mid-flight — is executed over the stored payloads and
the reconstructed bytes are written back. ``verify()`` then asserts
every repaired chunk equals the original encoding.

This mirrors the prototype's proxies computing partial decodes and the
destination persisting the chunk, and it is the strongest end-to-end
check the reproduction offers: *scheduling never corrupts data*.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.datastore import ChunkStore
from repro.cluster.stripes import ChunkId, StripeStore
from repro.codes.butterfly import ButterflyCode
from repro.errors import PlanError
from repro.repair.executor import execute_plan
from repro.repair.plan import RepairPlan


class DataPlane:
    """Executes completed repair plans over stored payloads."""

    def __init__(self, chunk_store: ChunkStore, stripe_store: StripeStore) -> None:
        self.chunk_store = chunk_store
        self.stripe_store = stripe_store
        self.repaired: list[ChunkId] = []
        self.mismatches: list[ChunkId] = []

    def attach(self, repairer) -> None:
        """Subscribe to a repair driver's completion events."""
        repairer.on(
            "chunk_repaired",
            lambda _r, chunk, plan: self.handle_repaired(chunk, plan),
        )

    def handle_repaired(self, chunk: ChunkId, plan: RepairPlan) -> None:
        """Execute the finished plan over stored payloads and write back."""
        code = self.stripe_store.code
        if isinstance(code, ButterflyCode):
            payload = self._butterfly_repair(code, chunk, plan)
        else:
            chunk_data = {}
            for source in plan.sources:
                source_chunk = ChunkId(chunk.stripe, source.chunk_index)
                chunk_data[source.chunk_index] = self.chunk_store.get(source_chunk)
            payload = execute_plan(plan, chunk_data)
        self.chunk_store.put(chunk, payload)
        self.repaired.append(chunk)
        if not np.array_equal(payload, self.chunk_store.truth(chunk)):
            self.mismatches.append(chunk)

    def _butterfly_repair(
        self, code: ButterflyCode, chunk: ChunkId, plan: RepairPlan
    ) -> np.ndarray:
        helpers = {}
        for source in plan.sources:
            source_chunk = ChunkId(chunk.stripe, source.chunk_index)
            helpers[source.chunk_index] = self.chunk_store.get(source_chunk)
        if set(code.repair_reads(chunk.index)) <= set(helpers):
            return code.repair_chunk(chunk.index, helpers)
        # Degraded path: whole-chunk decode from any two helpers.
        decoded = code.decode(helpers)
        return decoded[chunk.index]

    def verify(self) -> None:
        """Raise if any repaired payload deviates from the ground truth."""
        if self.mismatches:
            raise PlanError(
                f"{len(self.mismatches)} repaired chunk(s) corrupt: "
                f"{self.mismatches[:5]}"
            )

    @property
    def all_verified(self) -> bool:
        """True when every repaired chunk matched the ground truth."""
        return not self.mismatches and bool(self.repaired)
