"""Couples the timing simulation to real chunk payloads.

Attach a :class:`DataPlane` to any repair driver (a
:class:`~repro.repair.runner.RepairRunner` or a
:class:`~repro.core.chameleon.ChameleonRepair`): whenever the simulator
reports a chunk repaired, the *final* plan — including any straggler
re-tuning applied mid-flight — is executed over the stored payloads and
the reconstructed bytes are written back. ``verify()`` then asserts
every repaired chunk equals the original encoding.

Verified repair (Section III-C's re-planning, aimed at bit-rot): before
decoding, every helper payload is checksum-verified; after decoding, the
reconstructed chunk is checked against the chunk's recorded checksum.
Either failure rejects the write-back — feeding garbage into a decode,
or persisting a garbage decode, would *spread* corruption. The corrupted
helper (and the still-unwritten target) are quarantined, which removes
them from every planner's candidate helpers, and both are re-queued to
the live repairer through the same ``add_chunks()`` adoption path crash
recovery uses — so the next attempt re-plans with an alternate helper
set through the ordinary candidate machinery.

This mirrors the prototype's proxies computing partial decodes and the
destination persisting the chunk, and it is the strongest end-to-end
check the reproduction offers: *scheduling never corrupts data*.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.datastore import ChunkStore
from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.codes.butterfly import ButterflyCode
from repro.errors import PlanError
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.repair.executor import execute_plan
from repro.repair.plan import RepairPlan


def decode_from_store(
    chunk_store: ChunkStore, code, chunk: ChunkId, plan: RepairPlan
) -> np.ndarray:
    """Decode ``chunk`` from stored helper payloads along ``plan``.

    Shared by repair write-backs and degraded reads; the caller is
    responsible for verifying helpers first (garbage in, garbage out).
    """
    helpers = {}
    for source in plan.sources:
        source_chunk = ChunkId(chunk.stripe, source.chunk_index)
        helpers[source.chunk_index] = chunk_store.get(source_chunk)
    if isinstance(code, ButterflyCode):
        if set(code.repair_reads(chunk.index)) <= set(helpers):
            return code.repair_chunk(chunk.index, helpers)
        # Degraded path: whole-chunk decode from any two helpers.
        decoded = code.decode(helpers)
        return decoded[chunk.index]
    return execute_plan(plan, helpers)


class DataPlane:
    """Executes completed repair plans over stored payloads."""

    def __init__(
        self,
        chunk_store: ChunkStore,
        stripe_store: StripeStore,
        injector: FailureInjector | None = None,
        *,
        ledger=None,
        max_integrity_retries: int = 3,
    ) -> None:
        self.chunk_store = chunk_store
        self.stripe_store = stripe_store
        self.injector = injector
        self.ledger = ledger
        self.max_integrity_retries = max_integrity_retries
        self.repaired: list[ChunkId] = []
        self.mismatches: list[ChunkId] = []
        #: (chunk, reason) for every rejected write-back, in order.
        self.rejected: list[tuple[ChunkId, str]] = []
        #: Chunks abandoned after ``max_integrity_retries`` rejections.
        self.unrepairable: list[ChunkId] = []
        self._retries: dict[ChunkId, int] = {}

    def attach(self, repairer) -> None:
        """Subscribe to a repair driver's completion events.

        The driver reference is kept per subscription so rejected
        write-backs can re-queue work into the *same* driver.
        """
        repairer.on(
            "chunk_repaired",
            lambda r, chunk, plan: self.handle_repaired(chunk, plan, repairer=r),
        )

    def handle_repaired(
        self, chunk: ChunkId, plan: RepairPlan, repairer=None
    ) -> None:
        """Execute the finished plan over stored payloads and write back.

        Write-back only happens when every helper payload and the decode
        output pass checksum verification; otherwise the repair is
        rejected and (given a ``repairer``) re-queued around the
        quarantined helpers.
        """
        bad_helpers = []
        for source in plan.sources:
            source_chunk = ChunkId(chunk.stripe, source.chunk_index)
            if not self.chunk_store.verify(source_chunk):
                bad_helpers.append(source_chunk)
        if bad_helpers:
            self._reject(chunk, bad_helpers, repairer, reason="corrupt_helper")
            return
        payload = decode_from_store(
            self.chunk_store, self.stripe_store.code, chunk, plan
        )
        if not self.chunk_store.matches_checksum(chunk, payload):
            self._reject(chunk, [], repairer, reason="bad_decode")
            return
        self.chunk_store.put(chunk, payload)
        self._retries.pop(chunk, None)
        if self.injector is not None:
            self.injector.release(chunk)
        if self.ledger is not None:
            self.ledger.record_restoration(chunk)
        self.repaired.append(chunk)
        if not np.array_equal(payload, self.chunk_store.truth(chunk)):
            self.mismatches.append(chunk)

    def _reject(
        self,
        chunk: ChunkId,
        bad_helpers: list[ChunkId],
        repairer,
        *,
        reason: str,
    ) -> None:
        """A write-back failed verification: quarantine and re-queue."""
        self.rejected.append((chunk, reason))
        if self.injector is not None:
            for helper in bad_helpers:
                self.injector.quarantine(helper)
            # The target was already relocated in metadata but holds no
            # trustworthy payload — it must not serve as a helper either,
            # until a verified write-back releases it.
            self.injector.quarantine(chunk)
        if self.ledger is not None:
            for helper in bad_helpers:
                self.ledger.record_detection(helper, "repair")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "repair.integrity.reject",
                track="repair",
                chunk=str(chunk),
                reason=reason,
                bad_helpers=[str(c) for c in bad_helpers],
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.integrity.rejected").inc()
            registry.counter(f"repair.integrity.{reason}").inc()
            registry.counter("repair.integrity.helpers_quarantined").inc(
                len(bad_helpers)
            )
        retries = self._retries.get(chunk, 0) + 1
        self._retries[chunk] = retries
        if repairer is None:
            return
        if retries > self.max_integrity_retries:
            self.unrepairable.append(chunk)
            if registry.enabled:
                registry.counter("repair.integrity.exhausted").inc()
            return
        if registry.enabled:
            registry.counter("repair.integrity.requeued").inc(len(bad_helpers) + 1)
        # Corrupted helpers first: stripe serialization then rebuilds the
        # helper before the target's relaunch, so the retry sees a clean
        # helper set (or a different one entirely, via quarantine).
        repairer.add_chunks(bad_helpers + [chunk])

    def verify(self, *, deep: bool = False) -> None:
        """Raise if any repaired payload deviates from the ground truth.

        ``deep=True`` additionally checksum-scans every stored chunk —
        the end-of-run audit that catches corruption nothing detected.
        """
        if self.mismatches:
            raise PlanError(
                f"{len(self.mismatches)} repaired chunk(s) corrupt: "
                f"{self.mismatches[:5]}"
            )
        if deep:
            unsound = [
                chunk
                for chunk in self.chunk_store.chunks()
                if not self.chunk_store.verify(chunk)
            ]
            if unsound:
                raise PlanError(
                    f"{len(unsound)} stored chunk(s) fail checksum "
                    f"verification: {unsound[:5]}"
                )

    @property
    def all_verified(self) -> bool:
        """True when every repaired chunk matched the ground truth."""
        return not self.mismatches and bool(self.repaired)
