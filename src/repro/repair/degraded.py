"""Degraded reads: repair a temporarily unavailable chunk on the fly.

A degraded read (Section II-B) requests a chunk that sits on a failed or
unreachable node. Instead of repairing it back onto a storage node, the
surviving chunks are combined and delivered straight to the requesting
client; the metric is the latency from issuing the read until the chunk
is reconstructed at the client (Exp#10).

Verified reads: pass ``chunk_store`` to :func:`run_degraded_read` and
every helper payload is checksum-verified when the flows complete. A
corrupted helper is quarantined (and reported to the ledger), a fresh
plan is built over the remaining candidates — the same helper
reselection ChameleonEC's Algorithm 1 applies to stragglers — and the
read re-issues. The client only ever receives bytes reconstructed from
verified helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.datastore import ChunkStore
from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import SchedulingError
from repro.monitor.bandwidth import BandwidthMonitor
from repro.obs.metrics import get_registry
from repro.repair.base import RepairAlgorithm, star_parents
from repro.repair.dataplane import decode_from_store
from repro.repair.instance import PlanInstance
from repro.repair.plan import PlanSource, RepairPlan


@dataclass
class DegradedRead:
    """Outcome of one on-the-fly reconstruction at a client."""

    chunk: ChunkId
    client: int
    issued_at: float
    completed_at: float | None = None
    #: Reconstructed bytes (only with a verified, ``chunk_store``-backed read).
    payload: np.ndarray | None = None
    #: Corrupted helpers detected (and quarantined) along the way.
    detected: list[ChunkId] = field(default_factory=list)
    #: Plans issued: 1 for a clean read, +1 per corrupted-helper fallback.
    attempts: int = 0

    @property
    def latency(self) -> float:
        """Seconds from the read request to reconstruction."""
        if self.completed_at is None:
            raise SchedulingError("degraded read has not completed")
        return self.completed_at - self.issued_at

    def throughput(self, chunk_size: float) -> float:
        """Effective read bandwidth in bytes/second."""
        return chunk_size / self.latency


def degraded_read_plan(
    algorithm: RepairAlgorithm,
    chunk: ChunkId,
    store: StripeStore,
    injector: FailureInjector,
    client_node: int,
) -> RepairPlan:
    """A repair plan whose destination is the requesting client."""
    survivors = injector.surviving_sources(chunk)
    if not survivors:
        raise SchedulingError(f"no survivors to serve degraded read of {chunk}")
    from repro.repair.base import select_equation

    equation = select_equation(store.code, chunk.index, set(survivors), algorithm.rng)
    sources = [
        PlanSource(node_id=survivors[idx], chunk_index=idx, coefficient=coeff)
        for idx, coeff in sorted(equation.coefficients.items())
    ]
    order = [s.node_id for s in sources]
    algorithm.rng.shuffle(order)
    structure = algorithm.structure(order, client_node)
    if not store.code.supports_partial_combine:
        structure = star_parents(order, client_node)
    return RepairPlan(
        chunk=chunk,
        destination=client_node,
        sources=sources,
        parent=structure,
        read_fraction=equation.read_fraction,
    )


def chameleon_degraded_read_plan(
    dispatcher,
    chunk: ChunkId,
    store: StripeStore,
    injector: FailureInjector,
    client_node: int,
) -> RepairPlan:
    """ChameleonEC's variant: dispatch tasks with the client pinned as
    destination, then run Algorithm 1 over the distribution."""
    from repro.core.planner import build_plan

    dispatch = dispatcher.dispatch_chunk(chunk, store.code, destination=client_node)
    return build_plan(dispatch, store.code, injector)


def run_degraded_read(
    cluster: Cluster,
    store: StripeStore,
    injector: FailureInjector,
    chunk: ChunkId,
    client_node: int,
    *,
    algorithm: RepairAlgorithm | None = None,
    monitor: BandwidthMonitor | None = None,
    slice_size: float,
    chunk_store: ChunkStore | None = None,
    ledger=None,
    max_attempts: int = 3,
) -> tuple[DegradedRead, PlanInstance]:
    """Launch a degraded read; returns immediately (run the simulator).

    With ``algorithm`` given, the plan uses that baseline's structure;
    otherwise a ChameleonEC dispatcher (requires ``monitor``) builds a
    tunable plan with the client as destination.

    With ``chunk_store`` given the read is *verified*: helper payloads
    are checksum-checked on completion, corrupted helpers quarantined
    (+ reported to ``ledger``), and the read falls back to an alternate
    plan — up to ``max_attempts`` plans in total — before delivering
    ``read.payload``.
    """
    if algorithm is None and monitor is None:
        raise SchedulingError("ChameleonEC degraded reads need a monitor")

    def build_plan_now() -> RepairPlan:
        if algorithm is not None:
            return degraded_read_plan(algorithm, chunk, store, injector, client_node)
        from repro.core.dispatch import TaskDispatcher

        dispatcher = TaskDispatcher(injector, monitor, chunk_size=store.chunk_size)
        dispatcher.begin_phase()
        return chameleon_degraded_read_plan(
            dispatcher, chunk, store, injector, client_node
        )

    read = DegradedRead(
        chunk=chunk, client=client_node, issued_at=cluster.sim.now
    )

    def finish(plan: RepairPlan) -> None:
        if chunk_store is None:
            read.completed_at = cluster.sim.now
            return
        bad = []
        for source in plan.sources:
            source_chunk = ChunkId(chunk.stripe, source.chunk_index)
            if not chunk_store.verify(source_chunk):
                bad.append(source_chunk)
        if bad:
            for helper in bad:
                injector.quarantine(helper)
                read.detected.append(helper)
                if ledger is not None:
                    ledger.record_detection(helper, "degraded_read")
            registry = get_registry()
            if registry.enabled:
                registry.counter("repair.integrity.degraded_read_fallbacks").inc()
            if read.attempts >= max_attempts:
                raise SchedulingError(
                    f"degraded read of {chunk} exhausted {max_attempts} plans "
                    f"against corrupted helpers"
                )
            launch()
            return
        read.payload = decode_from_store(chunk_store, store.code, chunk, plan)
        read.completed_at = cluster.sim.now

    def launch() -> PlanInstance:
        plan = build_plan_now()
        read.attempts += 1
        instance = PlanInstance(
            cluster,
            plan,
            chunk_size=store.chunk_size,
            slice_size=slice_size,
            final_write=False,  # delivered to the client, not persisted
            on_complete=lambda inst: finish(plan),
        )
        instance.start()
        return instance

    return read, launch()
