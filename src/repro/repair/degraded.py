"""Degraded reads: repair a temporarily unavailable chunk on the fly.

A degraded read (Section II-B) requests a chunk that sits on a failed or
unreachable node. Instead of repairing it back onto a storage node, the
surviving chunks are combined and delivered straight to the requesting
client; the metric is the latency from issuing the read until the chunk
is reconstructed at the client (Exp#10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import SchedulingError
from repro.monitor.bandwidth import BandwidthMonitor
from repro.repair.base import RepairAlgorithm, star_parents
from repro.repair.instance import PlanInstance
from repro.repair.plan import PlanSource, RepairPlan


@dataclass
class DegradedRead:
    """Outcome of one on-the-fly reconstruction at a client."""

    chunk: ChunkId
    client: int
    issued_at: float
    completed_at: float | None = None

    @property
    def latency(self) -> float:
        """Seconds from the read request to reconstruction."""
        if self.completed_at is None:
            raise SchedulingError("degraded read has not completed")
        return self.completed_at - self.issued_at

    def throughput(self, chunk_size: float) -> float:
        """Effective read bandwidth in bytes/second."""
        return chunk_size / self.latency


def degraded_read_plan(
    algorithm: RepairAlgorithm,
    chunk: ChunkId,
    store: StripeStore,
    injector: FailureInjector,
    client_node: int,
) -> RepairPlan:
    """A repair plan whose destination is the requesting client."""
    survivors = injector.surviving_sources(chunk)
    if not survivors:
        raise SchedulingError(f"no survivors to serve degraded read of {chunk}")
    from repro.repair.base import select_equation

    equation = select_equation(store.code, chunk.index, set(survivors), algorithm.rng)
    sources = [
        PlanSource(node_id=survivors[idx], chunk_index=idx, coefficient=coeff)
        for idx, coeff in sorted(equation.coefficients.items())
    ]
    order = [s.node_id for s in sources]
    algorithm.rng.shuffle(order)
    structure = algorithm.structure(order, client_node)
    if not store.code.supports_partial_combine:
        structure = star_parents(order, client_node)
    return RepairPlan(
        chunk=chunk,
        destination=client_node,
        sources=sources,
        parent=structure,
        read_fraction=equation.read_fraction,
    )


def chameleon_degraded_read_plan(
    dispatcher,
    chunk: ChunkId,
    store: StripeStore,
    injector: FailureInjector,
    client_node: int,
) -> RepairPlan:
    """ChameleonEC's variant: dispatch tasks with the client pinned as
    destination, then run Algorithm 1 over the distribution."""
    from repro.core.planner import build_plan

    dispatch = dispatcher.dispatch_chunk(chunk, store.code, destination=client_node)
    return build_plan(dispatch, store.code, injector)


def run_degraded_read(
    cluster: Cluster,
    store: StripeStore,
    injector: FailureInjector,
    chunk: ChunkId,
    client_node: int,
    *,
    algorithm: RepairAlgorithm | None = None,
    monitor: BandwidthMonitor | None = None,
    slice_size: float,
) -> tuple[DegradedRead, PlanInstance]:
    """Launch a degraded read; returns immediately (run the simulator).

    With ``algorithm`` given, the plan uses that baseline's structure;
    otherwise a ChameleonEC dispatcher (requires ``monitor``) builds a
    tunable plan with the client as destination.
    """
    if algorithm is not None:
        plan = degraded_read_plan(algorithm, chunk, store, injector, client_node)
    else:
        if monitor is None:
            raise SchedulingError("ChameleonEC degraded reads need a monitor")
        from repro.core.dispatch import TaskDispatcher

        dispatcher = TaskDispatcher(injector, monitor, chunk_size=store.chunk_size)
        dispatcher.begin_phase()
        plan = chameleon_degraded_read_plan(
            dispatcher, chunk, store, injector, client_node
        )
    read = DegradedRead(
        chunk=chunk, client=client_node, issued_at=cluster.sim.now
    )
    instance = PlanInstance(
        cluster,
        plan,
        chunk_size=store.chunk_size,
        slice_size=slice_size,
        final_write=False,  # delivered to the client, not persisted
        on_complete=lambda inst: setattr(read, "completed_at", cluster.sim.now),
    )
    instance.start()
    return read, instance
