"""Hedged repair reads: bound the straggler/partition tail.

The classic tail-at-scale defence: when an in-flight chunk repair has
run longer than a *hedge delay*, launch one backup plan built around
the slowest helper and let the two race — first complete wins, the
loser is cancelled. Because the hedge fires only for repairs already
deep in the latency tail, the extra load is a small fraction of total
repair traffic (nothing like doubling it), yet a repair stuck behind a
partitioned or straggling helper finishes at backup-plan speed instead
of waiting out ``chunk_timeout`` and a retry backoff.

The delay is not a constant: :class:`HedgePolicy` derives it from the
live latency telemetry (the windowed ``lat.*`` p99 series recorded by
:class:`repro.obs.timeseries.TimeseriesRecorder`), scaled by
``multiplier`` and floored by ``min_delay`` — so a calm cluster hedges
lazily and a hot one hedges sooner, tracking the actual foreground
tail. ``fixed_delay`` pins the delay for experiments that want an
exact knob.

EC correctness note: a backup *plan* (not a single substituted source)
is raced because replacing one helper in a Reed-Solomon equation
changes every decoding coefficient — the executed plan's sources must
always form a valid equation, so the hedge builds a complete fresh
plan via the normal planner with the slow helper excluded
(:attr:`repro.cluster.failures.FailureInjector.excluded`).
"""

from __future__ import annotations

from repro.errors import SimulationError


class HedgePolicy:
    """Derives the hedge delay for repair reads from live telemetry."""

    def __init__(
        self,
        *,
        recorder=None,
        series: str = "lat.foreground.p99",
        multiplier: float = 4.0,
        min_delay: float = 2.0,
        fixed_delay: float | None = None,
    ) -> None:
        if multiplier <= 0:
            raise SimulationError("hedge multiplier must be positive")
        if min_delay <= 0:
            raise SimulationError("hedge min_delay must be positive")
        if fixed_delay is not None and fixed_delay <= 0:
            raise SimulationError("hedge fixed_delay must be positive (or None)")
        #: A started :class:`~repro.obs.timeseries.TimeseriesRecorder`
        #: (or None: the policy falls back to ``min_delay``).
        self.recorder = recorder
        self.series = series
        self.multiplier = float(multiplier)
        self.min_delay = float(min_delay)
        self.fixed_delay = fixed_delay

    def delay(self) -> float:
        """Seconds an in-flight repair may run before a backup launches."""
        if self.fixed_delay is not None:
            return self.fixed_delay
        p99 = 0.0
        if self.recorder is not None:
            p99 = self.recorder.latest(self.series, 0.0)
        return max(self.min_delay, self.multiplier * p99)
