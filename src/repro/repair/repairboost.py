"""RepairBoost (Lin et al., ATC'21) — simplified traffic balancer.

RepairBoost is a framework that boosts full-node repair for an existing
repair algorithm by balancing the repair traffic across nodes and
scheduling transmissions to saturate bandwidth. This reproduction keeps
its defining property relative to ChameleonEC: balancing is *static*
(task counts), not idle-bandwidth-aware, and the inner algorithm keeps
its fixed plan structure (star/tree/chain). Concretely:

* destinations are the eligible nodes with the fewest assigned download
  tasks (instead of random);
* for MDS codes, the k sources are the survivors with the fewest
  assigned upload tasks (instead of random);
* relay/download load implied by the inner structure is tracked so later
  chunks steer around already-loaded nodes.
"""

from __future__ import annotations

from collections import Counter

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId
from repro.codes.base import ErasureCode
from repro.codes.rs import RSCode
from repro.errors import SchedulingError
from repro.repair.base import RepairAlgorithm, star_parents
from repro.repair.plan import PlanSource, RepairPlan


class RepairBoost(RepairAlgorithm):
    """Traffic-balancing wrapper around a base repair algorithm."""

    def __init__(self, inner: RepairAlgorithm, seed: int = 0) -> None:
        super().__init__(seed)
        self.inner = inner
        self.name = f"RB+{inner.name}"
        self.upload_load: Counter = Counter()
        self.download_load: Counter = Counter()

    def structure(self, source_nodes: list[int], destination: int) -> dict[int, int]:
        """Delegate the transmission topology to the wrapped algorithm."""
        return self.inner.structure(source_nodes, destination)

    def make_plan(
        self, chunk: ChunkId, code: ErasureCode, injector: FailureInjector
    ) -> RepairPlan:
        """Balanced source/destination selection + the inner structure."""
        survivors = injector.surviving_sources(chunk)
        if not survivors:
            raise SchedulingError(f"no survivors to repair {chunk}")

        if isinstance(code, RSCode) and len(survivors) > code.k:
            # Balanced source selection: least-loaded uploaders first.
            by_load = sorted(
                survivors, key=lambda idx: (self.upload_load[survivors[idx]], idx)
            )
            chosen = set(by_load[: code.k])
            equation = code.repair_equation(chunk.index, chosen)
        else:
            equation = code.repair_equation(chunk.index, set(survivors))

        sources = [
            PlanSource(node_id=survivors[idx], chunk_index=idx, coefficient=coeff)
            for idx, coeff in sorted(equation.coefficients.items())
        ]

        candidates = injector.candidate_destinations(chunk)
        if not candidates:
            raise SchedulingError(f"no destination candidates for {chunk}")
        destination = min(candidates, key=lambda n: (self.download_load[n], n))

        # Least-loaded sources sit deepest in the structure (they relay).
        ordered = sorted(
            (s.node_id for s in sources),
            key=lambda n: (self.download_load[n], n),
            reverse=True,
        )
        structure = self.inner.structure(ordered, destination)
        if not code.supports_partial_combine:
            structure = star_parents(ordered, destination)

        for uploader, downloader in structure.items():
            self.upload_load[uploader] += 1
            self.download_load[downloader] += 1

        return RepairPlan(
            chunk=chunk,
            destination=destination,
            sources=sources,
            parent=structure,
            read_fraction=equation.read_fraction,
        )
