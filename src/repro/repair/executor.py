"""Data-plane execution of repair plans over real chunk bytes.

The simulator moves only byte *counts*; this executor moves actual data,
proving that any plan the schedulers emit — including plans mutated by
straggler re-tuning — decodes the failed chunk bit-for-bit. It mirrors
what the ChameleonEC proxies do: a relay XOR-combines the
coefficient-scaled local chunk with everything it downloaded and uploads
a single partially decoded chunk.
"""

from __future__ import annotations

import numpy as np

from repro.codes.butterfly import ButterflyCode
from repro.errors import PlanError
from repro.gf.field import vec_addmul
from repro.obs.tracer import get_tracer
from repro.repair.plan import RepairPlan


def execute_plan(plan: RepairPlan, chunk_data: dict[int, np.ndarray]) -> np.ndarray:
    """Run the plan's data flow; returns the repaired chunk.

    ``chunk_data`` maps chunk indices (within the stripe) to their bytes;
    it must cover every source's chunk.
    """
    for src in plan.sources:
        if src.chunk_index not in chunk_data:
            raise PlanError(f"missing data for chunk index {src.chunk_index}")
    lengths = {
        src.chunk_index: len(chunk_data[src.chunk_index]) for src in plan.sources
    }
    if len(set(lengths.values())) > 1:
        raise PlanError(
            f"mixed payload lengths across helpers: {sorted(lengths.items())}"
        )
    with get_tracer().span(
        "decode.chunk",
        track="compute",
        chunk=str(plan.chunk),
        sources=len(plan.sources),
    ):
        return _execute(plan, chunk_data)


def _execute(plan: RepairPlan, chunk_data: dict[int, np.ndarray]) -> np.ndarray:
    length = len(chunk_data[plan.sources[0].chunk_index])

    # payload(x) = coeff_x * C_x  XOR  (payloads of all children of x),
    # computed bottom-up over the in-tree.
    payloads: dict[int, np.ndarray] = {}

    def payload(node_id: int) -> np.ndarray:
        """The partially decoded chunk node ``node_id`` uploads."""
        if node_id in payloads:
            return payloads[node_id]
        src = plan.source_by_node(node_id)
        acc = np.zeros(length, dtype=np.uint8)
        vec_addmul(acc, chunk_data[src.chunk_index], src.coefficient)
        for child in plan.children(node_id):
            np.bitwise_xor(acc, payload(child), out=acc)
        payloads[node_id] = acc
        return acc

    result = np.zeros(length, dtype=np.uint8)
    for child in plan.children(plan.destination):
        np.bitwise_xor(result, payload(child), out=result)
    return result


def execute_butterfly_repair(
    code: ButterflyCode, failed_index: int, chunk_data: dict[int, np.ndarray]
) -> np.ndarray:
    """Sub-chunk repair path for Butterfly plans (no in-network combine)."""
    return code.repair_chunk(failed_index, chunk_data)
