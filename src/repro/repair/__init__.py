"""Repair plans, execution, and the baseline repair algorithms."""

from repro.repair.base import (
    ConventionalRepair,
    ECPipe,
    PPR,
    RepairAlgorithm,
    binomial_parents,
    chain_parents,
    select_equation,
    star_parents,
)
from repro.repair.dataplane import DataPlane
from repro.repair.degraded import (
    DegradedRead,
    degraded_read_plan,
    run_degraded_read,
)
from repro.repair.executor import execute_butterfly_repair, execute_plan
from repro.repair.hedging import HedgePolicy
from repro.repair.instance import PlanInstance
from repro.repair.plan import PlanSource, RepairPlan
from repro.repair.repairboost import RepairBoost
from repro.repair.runner import RepairRunner

__all__ = [
    "ConventionalRepair",
    "DataPlane",
    "DegradedRead",
    "ECPipe",
    "HedgePolicy",
    "PPR",
    "degraded_read_plan",
    "run_degraded_read",
    "PlanInstance",
    "PlanSource",
    "RepairAlgorithm",
    "RepairBoost",
    "RepairPlan",
    "RepairRunner",
    "binomial_parents",
    "chain_parents",
    "execute_butterfly_repair",
    "execute_plan",
    "select_equation",
    "star_parents",
]
