"""Materialises a :class:`RepairPlan` as simulator transfers.

Each plan edge (uploader -> downloader) becomes one sliced transfer whose
resources are the uploader's disk-read + uplink and the downloader's
downlink; a final disk-write transfer at the destination persists the
decoded chunk. Slice-wise dependencies reproduce pipelined combining: a
relay can forward slice ``j`` of its partial result only after receiving
slice ``j`` from each input.

The instance also implements the two straggler reactions (Section III-C):
``pause``/``resume`` for transmission re-ordering and :meth:`retune` for
repair re-tuning (redirecting a delayed source download to the
destination).
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.topology import Cluster
from repro.errors import PlanError
from repro.metrics.linkstats import REPAIR_TAG
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.repair.plan import RepairPlan
from repro.sim.transfers import Transfer


class PlanInstance:
    """One in-flight chunk repair."""

    def __init__(
        self,
        cluster: Cluster,
        plan: RepairPlan,
        *,
        chunk_size: float,
        slice_size: float,
        tag: str = REPAIR_TAG,
        final_write: bool = True,
        on_complete: Callable[["PlanInstance"], None] | None = None,
        on_failed: Callable[["PlanInstance", str], None] | None = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.chunk_size = chunk_size
        self.slice_size = slice_size
        self.tag = tag
        self.on_complete = on_complete
        self.on_failed = on_failed
        self.started = False
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.cancelled = False
        self.failed = False
        self.failure_reason: str | None = None
        #: uploader node id -> its upload transfer (the live plan edges).
        self.uploads: dict[int, Transfer] = {}
        self.write: Transfer | None = None
        self._obs_span = None
        self._build(final_write)

    # -- construction ---------------------------------------------------------

    def _edge_size(self) -> float:
        return self.chunk_size * self.plan.read_fraction

    def _make_edge(
        self, uploader: int, downloader: int, size: float | None = None
    ) -> Transfer:
        transfer = self.cluster.make_transfer(
            uploader,
            downloader,
            size if size is not None else self._edge_size(),
            self.slice_size,
            tag=self.tag,
            read_disk=True,  # the uploader streams its local chunk from disk
            write_disk=False,
            name=f"rep-{self.plan.chunk}-{uploader}->{downloader}",
        )
        transfer.on_failed.append(self._transfer_failed)
        return transfer

    def _build(self, final_write: bool) -> None:
        for uploader, downloader in self.plan.edges():
            self.uploads[uploader] = self._make_edge(uploader, downloader)
        # Relay pipelining: an upload from x waits slice-wise on every
        # upload arriving at x.
        for uploader, downloader in self.plan.edges():
            if downloader != self.plan.destination:
                self.uploads[downloader].depends_on(self.uploads[uploader])
        if final_write:
            dest_node = self.cluster.node(self.plan.destination)
            self.write = Transfer(
                f"rep-{self.plan.chunk}-write",
                (dest_node.disk_write,),
                self.chunk_size,
                self.slice_size,
                tag=self.tag,
            )
            for child in self.plan.children(self.plan.destination):
                self.write.depends_on(self.uploads[child])
            self.write.on_complete.append(lambda _t: self._finished())
            self.write.on_failed.append(self._transfer_failed)
        else:
            self._watch_incoming()

    def _watch_incoming(self) -> None:
        """Without a final write, completion = all dest-incoming edges done."""
        for child in self.plan.children(self.plan.destination):
            self.uploads[child].on_complete.append(self._check_incoming)

    def _check_incoming(self, _t: Transfer) -> None:
        incoming = [
            self.uploads[c] for c in self.plan.children(self.plan.destination)
        ]
        if incoming and all(t.done for t in incoming):
            self._finished()

    # -- lifecycle -------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the repaired chunk is fully assembled."""
        return self.completed_at is not None

    def start(self) -> None:
        """Release all transfers (slices flow as dependencies permit)."""
        if self.started:
            return
        self.started = True
        self.started_at = self.cluster.sim.now
        tracer = get_tracer()
        if tracer.enabled:
            self._obs_span = tracer.span(
                "repair.task",
                track="repair",
                chunk=str(self.plan.chunk),
                destination=self.plan.destination,
                sources=len(self.plan.sources),
            )
        for transfer in self.uploads.values():
            self.cluster.transfers.start(transfer)
        if self.write is not None:
            self.cluster.transfers.start(self.write)

    def cancel(self) -> None:
        """Abort the repair; completion callbacks never fire."""
        self.cancelled = True
        if self._obs_span is not None:
            self._obs_span.finish(status="cancelled")
            self._obs_span = None
        for transfer in self.uploads.values():
            if not transfer.done:
                self.cluster.transfers.cancel(transfer)
        if self.write is not None and not self.write.done:
            self.cluster.transfers.cancel(self.write)

    def uses_node(self, node_id: int) -> bool:
        """True when ``node_id`` participates in this repair's plan."""
        return (
            node_id == self.plan.destination
            or node_id in self.plan.parent
            or node_id in self.plan.parent.values()
        )

    def _transfer_failed(self, transfer: Transfer, reason: str) -> None:
        """One constituent transfer failed: the whole chunk repair fails.

        A repair cannot complete with a missing input (a cancelled
        dependency stops gating its dependents, so letting the rest run
        would silently assemble a corrupt chunk). Tear everything down and
        notify the owner exactly once; the runner/coordinator then retries
        with a fresh plan.
        """
        self.fail(reason)

    def fail(self, reason: str) -> None:
        """Fail the whole repair (fault injection or watchdog timeout)."""
        if self.done or self.cancelled or self.failed:
            return
        self.failed = True
        self.failure_reason = reason
        if self._obs_span is not None:
            self._obs_span.finish(status="failed", reason=reason)
            self._obs_span = None
        self.cancel()
        registry = get_registry()
        if registry.enabled:
            registry.counter("repairs.failed").inc()
        if self.on_failed is not None:
            self.on_failed(self, reason)

    def _finished(self) -> None:
        if self.done or self.cancelled:
            return
        self.completed_at = self.cluster.sim.now
        if self._obs_span is not None:
            self._obs_span.finish()
            self._obs_span = None
        registry = get_registry()
        if registry.enabled:
            registry.counter("repairs.completed").inc()
            if self.started_at is not None:
                registry.histogram("repair.duration_s").observe(
                    self.completed_at - self.started_at
                )
        if self.on_complete is not None:
            self.on_complete(self)

    # -- straggler reactions ----------------------------------------------------

    def pause(self, except_transfer: Transfer | None = None) -> None:
        """Transmission re-ordering: postpone this chunk's unfinished tasks.

        ``except_transfer`` (typically the delayed straggler task itself)
        keeps running; the paper postpones only the tasks *cooperating*
        with the delayed one.
        """
        for transfer in self.uploads.values():
            if not transfer.done and transfer is not except_transfer:
                self.cluster.transfers.pause(transfer)

    def pause_downstream(self, transfer: Transfer) -> list[Transfer]:
        """Postpone only the tasks waiting (transitively) on ``transfer``.

        These cooperating tasks cannot make progress past the straggler
        anyway; parking them releases their links to other chunks'
        repairs (the re-ordering of Section III-C). Returns the paused
        transfers so the coordinator can resume them later.
        """
        uploader = next(
            (n for n, t in self.uploads.items() if t is transfer), None
        )
        if uploader is None:
            return []
        paused = []
        node = self.plan.parent.get(uploader)
        while node is not None and node != self.plan.destination:
            downstream = self.uploads.get(node)
            if downstream is not None and not downstream.done:
                self.cluster.transfers.pause(downstream)
                paused.append(downstream)
            node = self.plan.parent.get(node)
        return paused

    def resume(self) -> None:
        """Continue transfers postponed by :meth:`pause`."""
        for transfer in self.uploads.values():
            if not transfer.done:
                self.cluster.transfers.resume(transfer)

    def live_transfers(self) -> list[Transfer]:
        """All unfinished, uncancelled transfers of this repair."""
        out = [t for t in self.uploads.values() if not t.done and not t.cancelled]
        if self.write is not None and not self.write.done:
            out.append(self.write)
        return out

    def downloader_of(self, transfer: Transfer) -> int | None:
        """Which node downloads ``transfer`` (None for the final write)."""
        for uploader, t in self.uploads.items():
            if t is transfer:
                return self.plan.parent[uploader]
        return None

    def retune(self, transfer: Transfer) -> Transfer:
        """Repair re-tuning: redirect a delayed source download.

        ``transfer`` must be an edge (w -> x) where x is a *relay* (not
        the destination). The edge is torn down and w uploads the
        *remaining* bytes directly to the destination: slices already
        delivered to x are folded into x's combine-upload, slices still
        pending flow to the destination instead, and the destination XORs
        everything — the linearity and addition associativity of erasure
        coding (Eq. 1) keep the decode exact. Crucially, x's dependent
        upload no longer waits for w (Fig. 10(b)).
        """
        uploader = None
        for node_id, t in self.uploads.items():
            if t is transfer:
                uploader = node_id
                break
        if uploader is None:
            raise PlanError("transfer is not an upload edge of this plan")
        old_target = self.plan.parent[uploader]
        if old_target == self.plan.destination:
            raise PlanError("cannot retune an edge already pointing at the destination")

        self.plan.redirect_to_destination(uploader)
        remaining = max(transfer.size - transfer.bytes_completed, self.slice_size)
        replacement = self._make_edge(uploader, self.plan.destination, size=remaining)
        # Preserve the uploader's own input dependencies.
        for child in self.plan.children(uploader):
            replacement.depends_on(self.uploads[child])
        # Register the new input with the final write *before* cancelling
        # the old edge so the write can never race past it.
        if self.write is not None:
            if not self.write.done:
                self.write.depends_on(replacement)
        else:
            replacement.on_complete.append(self._check_incoming)
        self.uploads[uploader] = replacement
        self.cluster.transfers.cancel(transfer)
        if self.started:
            self.cluster.transfers.start(replacement)
        return replacement
