"""Multi-chunk repair driver for the baseline algorithms.

Repairs a batch of failed chunks with bounded parallelism (the paper's
full-node repair recovers 200 chunks). Chunks of the same stripe are
never repaired concurrently (their survivor sets interact); metadata is
relocated when a chunk's repair is *launched* so that two in-flight
repairs can never pick conflicting destinations.

Fault recovery (``repro.faults``): when a chunk's in-flight repair fails
— a helper or destination crashed, a flow was interrupted, or the
optional per-chunk timeout expired — the runner retries it with a fresh
plan after an exponential backoff. A chunk whose stripe lost more nodes
than the code tolerates is *lost*: the run still completes and reports a
:class:`~repro.faults.outcomes.ToleranceExceeded` outcome instead of
raising mid-simulation.

Durability (``repro.journal``): given a ``journal=``, the runner writes
through it at every state transition (enqueue, plan chosen, reads
issued, attempt failed, commit, loss), so a *control-plane* crash —
:meth:`RepairRunner.crash`, driven by
:class:`repro.faults.CoordinatorCrash` — can be recovered by replaying
the journal into a fresh runner (see
:meth:`repro.api.Testbed.recover_repairer`). A crashed runner goes
inert: its in-flight plan instances are cancelled (all their REPAIR_TAG
transfers die) and every pending timer fires into a no-op.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import ReproError, SchedulingError
from repro.events import HookEmitter
from repro.faults.outcomes import ToleranceExceeded
from repro.metrics.throughput import RepairThroughputMeter
from repro.obs.metrics import get_registry
from repro.obs.tracer import get_tracer
from repro.repair.base import RepairAlgorithm
from repro.repair.instance import PlanInstance


class RepairRunner(HookEmitter):
    """Drives a repair algorithm over a set of failed chunks.

    Events (see :class:`repro.events.HookEmitter`): ``all_done``,
    ``chunk_repaired``, ``chunk_failed``, ``retry``, ``chunk_lost``,
    ``tolerance_exceeded``, ``chunks_added``. Every callback receives the
    runner as its first positional argument.
    """

    HOOK_EVENTS = (
        "all_done",
        "chunk_repaired",
        "chunk_failed",
        "retry",
        "chunk_lost",
        "tolerance_exceeded",
        "chunks_added",
    )

    def __init__(
        self,
        cluster: Cluster,
        store: StripeStore,
        injector: FailureInjector,
        algorithm: RepairAlgorithm,
        *,
        chunk_size: float,
        slice_size: float,
        concurrency: int = 8,
        final_write: bool = True,
        max_retries: int = 3,
        retry_backoff: float = 0.5,
        max_backoff: float | None = None,
        retry_jitter: float = 0.0,
        jitter_seed: int = 0,
        chunk_timeout: float | None = None,
        hedge=None,
        journal=None,
    ) -> None:
        if concurrency < 1:
            raise SchedulingError("concurrency must be at least 1")
        if max_retries < 0:
            raise SchedulingError("max_retries cannot be negative")
        if retry_backoff <= 0:
            raise SchedulingError("retry_backoff must be positive")
        if max_backoff is not None and max_backoff <= 0:
            raise SchedulingError("max_backoff must be positive (or None)")
        if not 0 <= retry_jitter < 1:
            raise SchedulingError("retry_jitter must lie in [0, 1)")
        if chunk_timeout is not None and chunk_timeout <= 0:
            raise SchedulingError("chunk_timeout must be positive")
        self.cluster = cluster
        self.store = store
        self.injector = injector
        self.algorithm = algorithm
        self.chunk_size = chunk_size
        self.slice_size = slice_size
        self.concurrency = concurrency
        self.final_write = final_write
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: Ceiling on the exponential retry delay (None = uncapped).
        #: Without it, a high-attempt chunk's backoff can exceed the
        #: chunk deadline and effectively park the repair.
        self.max_backoff = max_backoff
        #: Seeded symmetric jitter fraction on the retry backoff
        #: (delay *= 1 ± U(0, retry_jitter), still capped by
        #: ``max_backoff``). Desynchronises the retry storm after a mass
        #: failure; 0 disables it and draws nothing from the RNG, so
        #: disabled runs are byte-identical to pre-jitter behaviour.
        self.retry_jitter = retry_jitter
        self._jitter_rng = (
            np.random.default_rng(jitter_seed) if retry_jitter > 0 else None
        )
        self.chunk_timeout = chunk_timeout
        #: Optional :class:`repro.repair.hedging.HedgePolicy`: an
        #: in-flight chunk running past the hedge delay races a backup
        #: plan built around its slowest helper (None = hedging off).
        self.hedge = hedge
        #: Optional :class:`repro.journal.Journal` written through at
        #: every state transition (None = durability off).
        self.journal = journal
        self.meter = RepairThroughputMeter()
        #: Fired as (chunk, final plan) when a chunk's repair completes;
        #: kept for backward compatibility — new code subscribes with
        #: ``runner.on("chunk_repaired", ...)``.
        self.on_chunk_repaired: list = []
        self.pending: list[ChunkId] = []
        self.in_flight: dict[ChunkId, PlanInstance] = {}
        self.completed: list[ChunkId] = []
        self.lost: list[ChunkId] = []
        #: chunk -> live backup instance racing the primary.
        self._hedges: dict[ChunkId, PlanInstance] = {}
        self.hedges_launched = 0
        self.hedges_won = 0
        self.suspect_replans = 0
        self.retries = 0
        self.tolerance_exceeded: ToleranceExceeded | None = None
        self._attempts: dict[ChunkId, int] = {}
        self._retry_wait: set[ChunkId] = set()
        self._stripes_busy: set[int] = set()
        self._started = False
        self._finished = False
        self._crashed = False

    @property
    def done(self) -> bool:
        """True once every requested chunk is repaired or written off."""
        return (
            self._started
            and not self.pending
            and not self.in_flight
            and not self._retry_wait
        )

    @property
    def crashed(self) -> bool:
        """True after :meth:`crash` — the runner is permanently inert."""
        return self._crashed

    def repair(self, chunks: list[ChunkId]) -> None:
        """Start repairing ``chunks`` (returns immediately; run the sim)."""
        if self._started:
            raise SchedulingError("runner already started")
        self._started = True
        self.pending = list(chunks)
        if self.journal is not None:
            self.journal.coordinator_started()
            for chunk in self.pending:
                self.journal.chunk_enqueued(chunk)
        self.meter.start(self.cluster.sim.now)
        if not self.pending:
            self._finish()
            return
        self._fill()

    def add_chunks(self, chunks: list[ChunkId]) -> list[ChunkId]:
        """Adopt newly failed chunks mid-run (a crash created more work).

        Chunks already pending, in flight, awaiting a retry, or written
        off as lost are skipped; a chunk that was repaired earlier but
        sat on the crashed node is moved back from ``completed`` into the
        work queue. Returns the chunks actually adopted.
        """
        if self._crashed:
            # A dead coordinator adopts nothing; the journal already
            # holds whatever was in flight, and recovery will requeue it.
            return []
        if not self._started:
            raise SchedulingError("runner not started; pass chunks to repair()")
        busy = (
            set(self.pending)
            | set(self.in_flight)
            | self._retry_wait
            | set(self.lost)
        )
        adopted = [c for c in chunks if c not in busy]
        if not adopted:
            return []
        reopened = self.done
        for chunk in adopted:
            if chunk in self.completed:
                self.completed.remove(chunk)
            self.pending.append(chunk)
            if self.journal is not None:
                self.journal.chunk_enqueued(chunk)
        if reopened:
            # The batch had finished; un-finish the meter so throughput
            # accounts for the extended run.
            self.meter.finished_at = None
            self._finished = False
        self.emit("chunks_added", self, chunks=list(adopted))
        self._fill()
        return adopted

    def set_concurrency(self, concurrency: int) -> None:
        """Retarget the parallelism cap mid-run (the controller's knob).

        Lowering the cap never cancels in-flight repairs — it only
        stops new launches until completions drain below the new cap
        (pacing, not preemption). Raising it immediately fills the
        freed slots from the pending queue.
        """
        if concurrency < 1:
            raise SchedulingError("concurrency must be at least 1")
        raised = concurrency > self.concurrency
        self.concurrency = concurrency
        if raised and self._started and not self._crashed and self.pending:
            self._fill()

    def crash(self) -> None:
        """Tear the coordinator down mid-run (control-plane crash).

        Cancels every in-flight plan instance *silently* — a dead
        coordinator must not run its own retry logic — which kills all
        their live transfers, then empties the scheduling state so every
        pending timer (retry backoffs, watchdogs) fires into a no-op.
        The journal (if any) is NOT fenced here: fencing is written by
        whoever observes the crash (see ``Journal.fence``).
        """
        if self._crashed:
            return
        self._crashed = True
        for instance in list(self.in_flight.values()):
            instance.cancel()
        for backup in list(self._hedges.values()):
            backup.cancel()
        self._hedges.clear()
        self.in_flight.clear()
        self.pending.clear()
        self._retry_wait.clear()
        self._stripes_busy.clear()

    def _fill(self) -> None:
        if self._crashed:
            return
        launched = True
        while launched and len(self.in_flight) < self.concurrency:
            launched = False
            for i, chunk in enumerate(self.pending):
                if chunk.stripe in self._stripes_busy:
                    continue
                self.pending.pop(i)
                if not self.injector.is_repairable(chunk):
                    # Accumulated crashes pushed the stripe beyond the
                    # code's tolerance: write the chunk off instead of
                    # letting plan construction blow up mid-run.
                    self._mark_lost(chunk)
                    self._maybe_finish()
                else:
                    self._launch(chunk)
                launched = True
                break

    def _launch(self, chunk: ChunkId) -> None:
        try:
            plan = self.algorithm.make_plan(chunk, self.store.code, self.injector)
        except ReproError:
            # No usable survivors or destinations left (a crash raced us).
            self._mark_lost(chunk)
            self._maybe_finish()
            return
        # Relocate eagerly: concurrent repairs then observe consistent
        # placement and cannot double-book a destination.
        self.store.relocate(chunk, plan.destination)
        self._stripes_busy.add(chunk.stripe)
        self._attempts[chunk] = self._attempts.get(chunk, 0) + 1
        if self.journal is not None:
            self.journal.plan_chosen(
                chunk,
                destination=plan.destination,
                sources=[s.node_id for s in plan.sources],
                attempt=self._attempts[chunk],
            )
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "plan.chosen",
                track="scheduler",
                chunk=str(chunk),
                destination=plan.destination,
                algorithm=getattr(self.algorithm, "name", "?"),
                sources=len(plan.sources),
                attempt=self._attempts[chunk],
            )
        instance = PlanInstance(
            self.cluster,
            plan,
            chunk_size=self.chunk_size,
            slice_size=self.slice_size,
            final_write=self.final_write,
            on_complete=lambda inst, c=chunk: self._chunk_done(c, inst),
            on_failed=lambda inst, reason, c=chunk: self._instance_failed(
                c, inst, reason
            ),
        )
        self.in_flight[chunk] = instance
        instance.start()
        if self.journal is not None:
            self.journal.reads_issued(chunk, transfers=len(instance.uploads))
        if self.chunk_timeout is not None:
            self.cluster.sim.schedule(
                self.chunk_timeout, self._check_timeout, chunk, instance
            )
        if self.hedge is not None:
            self.cluster.sim.schedule(
                self.hedge.delay(), self._maybe_hedge, chunk, instance
            )

    # -- hedged reads ------------------------------------------------------------

    def _slowest_helper(self, instance: PlanInstance) -> int | None:
        """The uploader making the least relative progress (ties: lowest id)."""
        slowest, worst = None, None
        for node_id in sorted(instance.uploads):
            transfer = instance.uploads[node_id]
            if transfer.done:
                continue
            fraction = transfer.bytes_completed / transfer.size
            if worst is None or fraction < worst:
                slowest, worst = node_id, fraction
        return slowest

    def _maybe_hedge(self, chunk: ChunkId, instance: PlanInstance) -> None:
        """Hedge-delay watchdog: race a backup plan against a slow repair."""
        if self._crashed or self.hedge is None:
            return
        if self.in_flight.get(chunk) is not instance or instance.done:
            return
        if chunk in self._hedges:
            return
        slow = self._slowest_helper(instance)
        if slow is None:
            return
        self.injector.excluded.add(slow)
        try:
            plan = self.algorithm.make_plan(chunk, self.store.code, self.injector)
        except ReproError:
            return
        finally:
            self.injector.excluded.discard(slow)
        same_sources = [s.node_id for s in plan.sources] == [
            s.node_id for s in instance.plan.sources
        ]
        if same_sources and plan.destination == instance.plan.destination:
            # The planner found nothing better; hedging the identical
            # plan would only double the load it is meant to avoid.
            return
        self.store.relocate(chunk, plan.destination)
        if self.journal is not None:
            self.journal.plan_chosen(
                chunk,
                destination=plan.destination,
                sources=[s.node_id for s in plan.sources],
                attempt=self._attempts.get(chunk, 1),
            )
        backup = PlanInstance(
            self.cluster,
            plan,
            chunk_size=self.chunk_size,
            slice_size=self.slice_size,
            final_write=self.final_write,
            on_complete=lambda inst, c=chunk: self._hedge_done(c, inst),
            on_failed=lambda inst, reason, c=chunk: self._hedge_failed(
                c, inst, reason
            ),
        )
        self._hedges[chunk] = backup
        self.hedges_launched += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.hedges.launched").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "repair.hedge",
                track="scheduler",
                chunk=str(chunk),
                excluded=slow,
                destination=plan.destination,
            )
        backup.start()
        if self.chunk_timeout is not None:
            self.cluster.sim.schedule(
                self.chunk_timeout, self._check_hedge_timeout, chunk, backup
            )

    def _check_hedge_timeout(self, chunk: ChunkId, backup: PlanInstance) -> None:
        if self._crashed or self._hedges.get(chunk) is not backup or backup.done:
            return
        backup.fail("hedged read timed out")

    def _hedge_done(self, chunk: ChunkId, backup: PlanInstance) -> None:
        """The backup won the race: it becomes the chunk's repair."""
        if self._crashed or self._hedges.get(chunk) is not backup:
            return
        del self._hedges[chunk]
        primary = self.in_flight.get(chunk)
        if primary is None or primary.done:
            return
        primary.cancel()
        self.in_flight[chunk] = backup
        self.hedges_won += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.hedges.won").inc()
        self._chunk_done(chunk, backup)

    def _hedge_failed(
        self, chunk: ChunkId, backup: PlanInstance, reason: str
    ) -> None:
        """A failed backup is dropped silently: the primary still runs
        and the normal retry machinery covers its failure."""
        if self._hedges.get(chunk) is backup:
            del self._hedges[chunk]
            primary = self.in_flight.get(chunk)
            if primary is not None:
                self.store.relocate(chunk, primary.plan.destination)

    def _cancel_hedge(self, chunk: ChunkId, winner: PlanInstance | None) -> None:
        """Drop the live backup (the primary finished or failed first)."""
        backup = self._hedges.pop(chunk, None)
        if backup is None or backup is winner:
            return
        backup.cancel()
        if winner is not None:
            self.store.relocate(chunk, winner.plan.destination)

    # -- suspicion ---------------------------------------------------------------

    def helper_suspected(self, node_id: int) -> int:
        """Fail in-flight repairs touching a suspected node (re-plan early).

        Called by the testbed when the failure detector raises a
        suspicion: instead of waiting for ``chunk_timeout`` to expire,
        every in-flight instance using the suspect is failed now, which
        routes it through the normal retry machinery — and the planner's
        suspicion filter keeps the suspect out of the fresh plan.
        Returns how many instances were failed.
        """
        if self._crashed:
            return 0
        failed = 0
        for chunk in list(self.in_flight):
            instance = self.in_flight.get(chunk)
            if (
                instance is not None
                and not instance.done
                and instance.uses_node(node_id)
            ):
                instance.fail(f"helper node {node_id} suspected")
                failed += 1
        self.suspect_replans += failed
        if failed:
            registry = get_registry()
            if registry.enabled:
                registry.counter("repair.suspect_replans").inc(failed)
        return failed

    # -- recovery ----------------------------------------------------------------

    def _check_timeout(self, chunk: ChunkId, instance: PlanInstance) -> None:
        if self._crashed:
            return
        if self.in_flight.get(chunk) is not instance or instance.done:
            return
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "repair.timeout",
                track="scheduler",
                chunk=str(chunk),
                timeout=self.chunk_timeout,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.timeouts").inc()
        instance.fail("chunk repair timed out")

    def _instance_failed(
        self, chunk: ChunkId, instance: PlanInstance, reason: str
    ) -> None:
        if self._crashed:
            return
        if self.in_flight.get(chunk) is not instance:
            return
        self.in_flight.pop(chunk, None)
        # A failed primary takes its backup down with it: the retry
        # relaunches from a clean slate (and relocates fresh metadata).
        self._cancel_hedge(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        if self.journal is not None:
            self.journal.attempt_failed(chunk, reason)
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.failures").inc()
        self.emit("chunk_failed", self, chunk=chunk, reason=reason)
        if not self.injector.is_repairable(chunk):
            self._mark_lost(chunk)
        elif self._attempts.get(chunk, 1) > self.max_retries:
            registry = get_registry()
            if registry.enabled:
                registry.counter("repair.retry.exhausted").inc()
            self._mark_lost(chunk)
        else:
            delay = self.retry_backoff * 2 ** (self._attempts.get(chunk, 1) - 1)
            if self._jitter_rng is not None:
                delay *= 1.0 + self.retry_jitter * float(
                    self._jitter_rng.uniform(-1.0, 1.0)
                )
            if self.max_backoff is not None:
                delay = min(delay, self.max_backoff)
            self._retry_wait.add(chunk)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "repair.retry",
                    track="scheduler",
                    chunk=str(chunk),
                    reason=reason,
                    attempt=self._attempts.get(chunk, 1),
                    backoff=delay,
                )
            self.cluster.sim.schedule(delay, self._retry, chunk)
        self._fill()
        self._maybe_finish()

    def _retry(self, chunk: ChunkId) -> None:
        if self._crashed or chunk not in self._retry_wait:
            return
        self._retry_wait.discard(chunk)
        self.retries += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.retry.attempts").inc()
        self.emit("retry", self, chunk=chunk, attempt=self._attempts.get(chunk, 0))
        if (
            chunk.stripe in self._stripes_busy
            or len(self.in_flight) >= self.concurrency
        ):
            self.pending.insert(0, chunk)
        else:
            self._launch(chunk)
        self._maybe_finish()

    def _mark_lost(self, chunk: ChunkId) -> None:
        self.lost.append(chunk)
        if self.journal is not None:
            self.journal.chunk_lost(chunk)
        registry = get_registry()
        if registry.enabled:
            registry.counter("repair.chunks_lost").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant("repair.chunk_lost", track="scheduler", chunk=str(chunk))
        self.emit("chunk_lost", self, chunk=chunk)
        first = self.tolerance_exceeded is None
        self.tolerance_exceeded = ToleranceExceeded(
            failed_nodes=tuple(sorted(self.cluster.failed_node_ids())),
            lost_chunks=tuple(self.lost),
            at=self.cluster.sim.now,
        )
        if first:
            self.emit("tolerance_exceeded", self, outcome=self.tolerance_exceeded)

    # -- completion ----------------------------------------------------------------

    def _chunk_done(self, chunk: ChunkId, instance: PlanInstance) -> None:
        if self._crashed:
            return
        self._cancel_hedge(chunk, instance)
        self.in_flight.pop(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        self.completed.append(chunk)
        if self.journal is not None:
            # Commit BEFORE announcing: if a chunk_repaired subscriber
            # (the integrity data plane) rejects the bytes, its requeue
            # re-opens the chunk with a later enqueue record.
            self.journal.decode_verified(chunk)
            self.journal.writeback_committed(chunk)
        self.meter.record_repair(self.cluster.sim.now, self.chunk_size)
        for callback in self.on_chunk_repaired:
            callback(chunk, instance.plan)
        self.emit("chunk_repaired", self, chunk=chunk, plan=instance.plan)
        if self.pending:
            self._fill()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if not self._crashed and self.done:
            self._finish()

    def _finish(self) -> None:
        # Guard against double emission: _retry can reach _finish through
        # a failed _launch (plan construction lost its last survivor →
        # _mark_lost → _maybe_finish) and then call _maybe_finish again
        # on its own way out.
        if self._finished:
            return
        self._finished = True
        self.meter.finish(self.cluster.sim.now)
        self.emit("all_done", self)
