"""Multi-chunk repair driver for the baseline algorithms.

Repairs a batch of failed chunks with bounded parallelism (the paper's
full-node repair recovers 200 chunks). Chunks of the same stripe are
never repaired concurrently (their survivor sets interact); metadata is
relocated when a chunk's repair is *launched* so that two in-flight
repairs can never pick conflicting destinations.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import SchedulingError
from repro.metrics.throughput import RepairThroughputMeter
from repro.obs.tracer import get_tracer
from repro.repair.base import RepairAlgorithm
from repro.repair.instance import PlanInstance


class RepairRunner:
    """Drives a repair algorithm over a set of failed chunks."""

    def __init__(
        self,
        cluster: Cluster,
        store: StripeStore,
        injector: FailureInjector,
        algorithm: RepairAlgorithm,
        *,
        chunk_size: float,
        slice_size: float,
        concurrency: int = 8,
        final_write: bool = True,
        on_all_done: Callable[["RepairRunner"], None] | None = None,
    ) -> None:
        if concurrency < 1:
            raise SchedulingError("concurrency must be at least 1")
        self.cluster = cluster
        self.store = store
        self.injector = injector
        self.algorithm = algorithm
        self.chunk_size = chunk_size
        self.slice_size = slice_size
        self.concurrency = concurrency
        self.final_write = final_write
        self.on_all_done = on_all_done
        self.meter = RepairThroughputMeter()
        #: Fired as (chunk, final plan) when a chunk's repair completes;
        #: the data plane subscribes here to move real bytes.
        self.on_chunk_repaired: list = []
        self.pending: list[ChunkId] = []
        self.in_flight: dict[ChunkId, PlanInstance] = {}
        self.completed: list[ChunkId] = []
        self._stripes_busy: set[int] = set()
        self._started = False

    @property
    def done(self) -> bool:
        """True once every requested chunk is repaired."""
        return self._started and not self.pending and not self.in_flight

    def repair(self, chunks: list[ChunkId]) -> None:
        """Start repairing ``chunks`` (returns immediately; run the sim)."""
        if self._started:
            raise SchedulingError("runner already started")
        self._started = True
        self.pending = list(chunks)
        self.meter.start(self.cluster.sim.now)
        if not self.pending:
            self.meter.finish(self.cluster.sim.now)
            if self.on_all_done is not None:
                self.on_all_done(self)
            return
        self._fill()

    def _fill(self) -> None:
        launched = True
        while launched and len(self.in_flight) < self.concurrency:
            launched = False
            for i, chunk in enumerate(self.pending):
                if chunk.stripe in self._stripes_busy:
                    continue
                self.pending.pop(i)
                self._launch(chunk)
                launched = True
                break

    def _launch(self, chunk: ChunkId) -> None:
        plan = self.algorithm.make_plan(chunk, self.store.code, self.injector)
        # Relocate eagerly: concurrent repairs then observe consistent
        # placement and cannot double-book a destination.
        self.store.relocate(chunk, plan.destination)
        self._stripes_busy.add(chunk.stripe)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.instant(
                "plan.chosen",
                track="scheduler",
                chunk=str(chunk),
                destination=plan.destination,
                algorithm=getattr(self.algorithm, "name", "?"),
                sources=len(plan.sources),
            )
        instance = PlanInstance(
            self.cluster,
            plan,
            chunk_size=self.chunk_size,
            slice_size=self.slice_size,
            final_write=self.final_write,
            on_complete=lambda inst, c=chunk: self._chunk_done(c, inst),
        )
        self.in_flight[chunk] = instance
        instance.start()

    def _chunk_done(self, chunk: ChunkId, instance: PlanInstance) -> None:
        self.in_flight.pop(chunk, None)
        self._stripes_busy.discard(chunk.stripe)
        self.completed.append(chunk)
        self.meter.record_repair(self.cluster.sim.now, self.chunk_size)
        for callback in self.on_chunk_repaired:
            callback(chunk, instance.plan)
        if self.pending:
            self._fill()
        if self.done:
            self.meter.finish(self.cluster.sim.now)
            if self.on_all_done is not None:
                self.on_all_done(self)
