"""Repair plans: who sends what to whom when repairing one chunk.

A repair plan (Section II-C) covers k sources and one destination. Every
source uploads exactly once; its upload carries the linear combination of
its own (coefficient-scaled) chunk and everything it received. The plan
is therefore fully described by *parent pointers*: ``parent[x]`` is the
node that downloads source ``x``'s upload. All classic structures are
special cases —

* conventional repair (CR): every parent is the destination (a star);
* PPR: a binomial combining tree;
* ECPipe: a chain;
* ChameleonEC: an arbitrary in-tree produced by Algorithm 1.

Re-tuning a plan (Section III-C) is a parent-pointer rewrite, and the
linearity of erasure coding guarantees the rewritten plan still decodes
— :mod:`repro.repair.executor` verifies this over real bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.stripes import ChunkId
from repro.errors import PlanError


@dataclass(frozen=True)
class PlanSource:
    """One helper: the node serving chunk ``chunk_index`` scaled by
    ``coefficient`` in the failed chunk's decoding equation."""

    node_id: int
    chunk_index: int
    coefficient: int


@dataclass
class RepairPlan:
    """An in-tree of transmissions repairing one failed chunk."""

    chunk: ChunkId
    destination: int
    sources: list[PlanSource]
    parent: dict[int, int] = field(default_factory=dict)
    read_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not self.sources:
            raise PlanError(f"plan for {self.chunk} has no sources")
        node_ids = [s.node_id for s in self.sources]
        if len(set(node_ids)) != len(node_ids):
            raise PlanError(f"plan for {self.chunk} repeats a source node")
        if self.destination in node_ids:
            raise PlanError("destination cannot be one of the sources")
        if not self.parent:
            # Default to conventional repair (a star onto the destination).
            self.parent = {nid: self.destination for nid in node_ids}
        self.validate()

    @property
    def source_nodes(self) -> list[int]:
        """Node ids of all sources, in declaration order."""
        return [s.node_id for s in self.sources]

    def source_by_node(self, node_id: int) -> PlanSource:
        """The PlanSource served by ``node_id`` (raises if absent)."""
        for src in self.sources:
            if src.node_id == node_id:
                return src
        raise PlanError(f"node {node_id} is not a source of this plan")

    def children(self, node_id: int) -> list[int]:
        """Sources whose upload is downloaded by ``node_id``."""
        return [x for x, y in self.parent.items() if y == node_id]

    def edges(self) -> list[tuple[int, int]]:
        """All (uploader, downloader) transmission paths."""
        return sorted(self.parent.items())

    def relays(self) -> list[int]:
        """Source nodes that also download (and hence combine) chunks."""
        targets = set(self.parent.values())
        return sorted(set(self.source_nodes) & targets)

    def download_counts(self) -> dict[int, int]:
        """Downloads per node (the destination included)."""
        counts: dict[int, int] = {}
        for _, y in self.parent.items():
            counts[y] = counts.get(y, 0) + 1
        return counts

    def validate(self) -> None:
        """Check the plan is a forest of in-trees rooted at the destination."""
        nodes = set(self.source_nodes)
        if set(self.parent) != nodes:
            raise PlanError(
                f"plan for {self.chunk}: parent map must cover exactly the sources"
            )
        for x, y in self.parent.items():
            if y != self.destination and y not in nodes:
                raise PlanError(f"edge {x}->{y} targets a node outside the plan")
            if x == y:
                raise PlanError(f"node {x} uploads to itself")
        if self.destination not in self.parent.values():
            raise PlanError("no transmission reaches the destination")
        # Every source must reach the destination without cycles.
        for start in nodes:
            seen = set()
            node = start
            while node != self.destination:
                if node in seen:
                    raise PlanError(f"cycle detected through node {node}")
                seen.add(node)
                node = self.parent[node]

    def redirect_to_destination(self, uploader: int) -> None:
        """Re-tune: make ``uploader`` send directly to the destination.

        This is the Section III-C repair re-tuning primitive — a delayed
        download at ``parent[uploader]`` is bypassed by re-pointing the
        uploader at the destination; correctness is preserved by
        linearity (the destination XORs whatever arrives).
        """
        if uploader not in self.parent:
            raise PlanError(f"node {uploader} is not an uploader in this plan")
        self.parent[uploader] = self.destination
        self.validate()

    def transmission_rounds(self) -> int:
        """Tree depth: serialized rounds without slicing (CR = 1 + ...)."""
        depth = 0
        for start in self.source_nodes:
            d, node = 1, start
            while self.parent[node] != self.destination:
                node = self.parent[node]
                d += 1
            depth = max(depth, d)
        return depth
