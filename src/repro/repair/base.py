"""Repair-algorithm interface and the classic plan structures."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cluster.failures import FailureInjector
from repro.cluster.stripes import ChunkId
from repro.codes.base import ErasureCode, RepairEquation
from repro.codes.rs import RSCode
from repro.errors import SchedulingError
from repro.repair.plan import PlanSource, RepairPlan


def star_parents(source_nodes: list[int], destination: int) -> dict[int, int]:
    """Conventional repair: every source uploads straight to the destination."""
    return {node: destination for node in source_nodes}


def chain_parents(source_nodes: list[int], destination: int) -> dict[int, int]:
    """ECPipe: a pipeline chain s0 -> s1 -> ... -> s_{k-1} -> destination."""
    parents = {}
    for i, node in enumerate(source_nodes):
        parents[node] = source_nodes[i + 1] if i + 1 < len(source_nodes) else destination
    return parents


def binomial_parents(source_nodes: list[int], destination: int) -> dict[int, int]:
    """PPR: binomial-tree reduction (Fig. 3(b)).

    Sources pair up each round, the first of each pair uploading its
    partial result to the second; the last survivor uploads to the
    destination. For k = 4 this is exactly the paper's example
    (N1 -> N2, N3 -> N4, N2 -> N4, N4 -> Nd).
    """
    parents: dict[int, int] = {}
    active = list(source_nodes)
    while len(active) > 1:
        next_round = []
        for i in range(0, len(active), 2):
            if i + 1 < len(active):
                parents[active[i]] = active[i + 1]
                next_round.append(active[i + 1])
            else:
                next_round.append(active[i])
        active = next_round
    parents[active[0]] = destination
    return parents


def select_equation(
    code: ErasureCode,
    failed_index: int,
    survivor_indices: set[int],
    rng: np.random.Generator,
) -> RepairEquation:
    """Pick the repair equation, randomising source choice for MDS codes.

    The paper's baselines "randomly select the k sources" (Section V-A);
    for RS codes any k survivors decode, so we sample k of them. LRC and
    Butterfly recipes are structural (local group / sub-chunk reads), so
    the code's own preferred equation is used.
    """
    if isinstance(code, RSCode) and len(survivor_indices) > code.k:
        chosen = rng.choice(sorted(survivor_indices), size=code.k, replace=False)
        return code.repair_equation(failed_index, set(int(i) for i in chosen))
    return code.repair_equation(failed_index, survivor_indices)


class RepairAlgorithm(ABC):
    """Builds one repair plan per failed chunk."""

    name = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.rng = np.random.default_rng(seed)

    def make_plan(
        self, chunk: ChunkId, code: ErasureCode, injector: FailureInjector
    ) -> RepairPlan:
        """Select sources, a destination, and a transmission structure."""
        survivors = injector.surviving_sources(chunk)
        if not survivors:
            raise SchedulingError(f"no survivors to repair {chunk}")
        equation = select_equation(code, chunk.index, set(survivors), self.rng)
        sources = [
            PlanSource(node_id=survivors[idx], chunk_index=idx, coefficient=coeff)
            for idx, coeff in sorted(equation.coefficients.items())
        ]
        destination = self.select_destination(chunk, injector)
        order = list(range(len(sources)))
        self.rng.shuffle(order)
        ordered_nodes = [sources[i].node_id for i in order]
        structure = self.structure(ordered_nodes, destination)
        if not code.supports_partial_combine:
            # Sub-chunk codes (Butterfly) send raw data straight to the
            # destination; no relay combining is possible.
            structure = star_parents(ordered_nodes, destination)
        return RepairPlan(
            chunk=chunk,
            destination=destination,
            sources=sources,
            parent=structure,
            read_fraction=equation.read_fraction,
        )

    def select_destination(self, chunk: ChunkId, injector: FailureInjector) -> int:
        """Random eligible destination (the baselines' policy)."""
        candidates = injector.candidate_destinations(chunk)
        if not candidates:
            raise SchedulingError(f"no destination candidates for {chunk}")
        return int(self.rng.choice(candidates))

    @abstractmethod
    def structure(self, source_nodes: list[int], destination: int) -> dict[int, int]:
        """Parent pointers implementing this algorithm's topology."""


class ConventionalRepair(RepairAlgorithm):
    """CR: read all survivors directly at the destination (Fig. 3(a))."""

    name = "CR"

    def structure(self, source_nodes: list[int], destination: int) -> dict[int, int]:
        """Star: every source feeds the destination directly."""
        return star_parents(source_nodes, destination)


class PPR(RepairAlgorithm):
    """Partial-parallel repair: binomial combining tree (Mitra et al.)."""

    name = "PPR"

    def structure(self, source_nodes: list[int], destination: int) -> dict[int, int]:
        """Binomial combining tree (Fig. 3(b))."""
        return binomial_parents(source_nodes, destination)


class ECPipe(RepairAlgorithm):
    """Repair pipelining: chained slices through every source (Li et al.)."""

    name = "ECPipe"

    def structure(self, source_nodes: list[int], destination: int) -> dict[int, int]:
        """Chain through every source (repair pipelining)."""
        return chain_parents(source_nodes, destination)
