"""In-memory chunk payload storage (the prototype's Redis role).

The simulator moves byte *counts*; this store holds actual chunk
*contents* so repairs can be verified end to end. Payload size is
decoupled from the simulated chunk size (timing uses ``chunk_size``,
contents use a small ``payload_size``) — the math is identical and tests
stay fast.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.stripes import ChunkId, StripeStore
from repro.errors import SimulationError


class ChunkStore:
    """Payloads for every chunk of every stripe, plus the ground truth."""

    def __init__(self) -> None:
        self._payloads: dict[ChunkId, np.ndarray] = {}
        self._truth: dict[ChunkId, np.ndarray] = {}

    def put(self, chunk: ChunkId, payload: np.ndarray, *, truth: bool = False) -> None:
        """Store a payload; ``truth=True`` also records it as ground truth."""
        data = np.asarray(payload, dtype=np.uint8)
        self._payloads[chunk] = data
        if truth:
            self._truth[chunk] = data.copy()

    def get(self, chunk: ChunkId) -> np.ndarray:
        """The stored payload of ``chunk`` (raises if lost/missing)."""
        try:
            return self._payloads[chunk]
        except KeyError:
            raise SimulationError(f"no payload stored for {chunk}") from None

    def has(self, chunk: ChunkId) -> bool:
        """True if a payload is currently stored for ``chunk``."""
        return chunk in self._payloads

    def drop(self, chunk: ChunkId) -> None:
        """Lose a chunk's contents (its node died)."""
        self._payloads.pop(chunk, None)

    def truth(self, chunk: ChunkId) -> np.ndarray:
        """The originally encoded bytes of ``chunk``."""
        try:
            return self._truth[chunk]
        except KeyError:
            raise SimulationError(f"no ground truth recorded for {chunk}") from None

    def matches_truth(self, chunk: ChunkId) -> bool:
        """True when the stored payload equals the original encoding."""
        return self.has(chunk) and np.array_equal(self.get(chunk), self.truth(chunk))

    def __len__(self) -> int:
        return len(self._payloads)


def encode_and_load(
    stripe_store: StripeStore, *, payload_size: int = 256, seed: int = 0
) -> ChunkStore:
    """Generate random data, encode every stripe, and load the store."""
    if payload_size < 2 or payload_size % 2 != 0:
        raise SimulationError("payload_size must be an even integer >= 2")
    rng = np.random.default_rng(seed)
    code = stripe_store.code
    chunk_store = ChunkStore()
    for stripe_id in stripe_store.stripes:
        data = [
            rng.integers(0, 256, payload_size, dtype=np.uint8)
            for _ in range(code.k)
        ]
        encoded = code.encode(data)
        for index, payload in enumerate(encoded):
            chunk_store.put(ChunkId(stripe_id, index), payload, truth=True)
    return chunk_store


def drop_node_chunks(
    chunk_store: ChunkStore, stripe_store: StripeStore, node_id: int
) -> list[ChunkId]:
    """Simulate data loss: drop every payload stored on ``node_id``."""
    lost = stripe_store.chunks_on_node(node_id)
    for chunk in lost:
        chunk_store.drop(chunk)
    return lost
