"""In-memory chunk payload storage (the prototype's Redis role).

The simulator moves byte *counts*; this store holds actual chunk
*contents* so repairs can be verified end to end. Payload size is
decoupled from the simulated chunk size (timing uses ``chunk_size``,
contents use a small ``payload_size``) — the math is identical and tests
stay fast.

Integrity metadata: every stored payload carries a CRC-32 recorded when
the bytes were *legitimately* written (:meth:`ChunkStore.put`).
:meth:`ChunkStore.corrupt` and :meth:`ChunkStore.mark_unreadable` mutate
stored state *without* touching that checksum — exactly how bit-rot and
latent sector errors behave — so :meth:`ChunkStore.verify` is the one
honest detector: it recomputes the CRC on read, the way real systems do
on every block read and scrub pass.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.cluster.stripes import ChunkId, StripeStore
from repro.errors import SimulationError
from repro.integrity.checksum import payload_checksum


class ChunkStore:
    """Payloads for every chunk of every stripe, plus the ground truth."""

    def __init__(self) -> None:
        self._payloads: dict[ChunkId, np.ndarray] = {}
        self._truth: dict[ChunkId, np.ndarray] = {}
        #: Expected CRC-32 per chunk, recorded at legitimate write time
        #: and *retained* across drops: a repaired chunk must reproduce
        #: the original bytes, so the original checksum stays the oracle.
        self._checksums: dict[ChunkId, int] = {}
        self._unreadable: set[ChunkId] = set()

    def put(self, chunk: ChunkId, payload: np.ndarray, *, truth: bool = False) -> None:
        """Store a payload; ``truth=True`` also records it as ground truth.

        The payload is defensively copied (and coerced to ``uint8``): the
        caller's buffer must never alias stored bytes, or later in-place
        mutation (e.g. injected corruption of another chunk sharing the
        buffer) would silently rewrite "stored" data.
        """
        data = np.array(payload, dtype=np.uint8, copy=True)
        self._payloads[chunk] = data
        self._unreadable.discard(chunk)
        if truth or chunk not in self._checksums:
            self._checksums[chunk] = payload_checksum(data)
        if truth:
            self._truth[chunk] = data.copy()

    def get(self, chunk: ChunkId) -> np.ndarray:
        """The stored payload of ``chunk`` (raises if lost/missing).

        Reads return whatever bytes the store holds — corrupted or not:
        a silent corruption is silent precisely because the read
        succeeds. Call :meth:`verify` to checksum-check a read.
        """
        try:
            return self._payloads[chunk]
        except KeyError:
            raise SimulationError(f"no payload stored for {chunk}") from None

    def has(self, chunk: ChunkId) -> bool:
        """True if a payload is currently stored for ``chunk``."""
        return chunk in self._payloads

    def drop(self, chunk: ChunkId) -> None:
        """Lose a chunk's contents (its node died)."""
        self._payloads.pop(chunk, None)
        self._unreadable.discard(chunk)

    def chunks(self) -> Iterator[ChunkId]:
        """Every chunk with a stored payload, in deterministic order."""
        return iter(sorted(self._payloads, key=lambda c: (c.stripe, c.index)))

    def truth(self, chunk: ChunkId) -> np.ndarray:
        """The originally encoded bytes of ``chunk``."""
        try:
            return self._truth[chunk]
        except KeyError:
            raise SimulationError(f"no ground truth recorded for {chunk}") from None

    def matches_truth(self, chunk: ChunkId) -> bool:
        """True when the stored payload equals the original encoding."""
        return self.has(chunk) and np.array_equal(self.get(chunk), self.truth(chunk))

    # -- integrity metadata ----------------------------------------------------

    def checksum(self, chunk: ChunkId) -> int | None:
        """The expected CRC-32 of ``chunk`` (None if never stored)."""
        return self._checksums.get(chunk)

    def matches_checksum(self, chunk: ChunkId, payload: np.ndarray) -> bool:
        """True when ``payload`` matches the chunk's recorded checksum.

        Vacuously true when no checksum was ever recorded (a store
        predating the chunk) — absence of metadata cannot condemn data.
        """
        expected = self._checksums.get(chunk)
        return expected is None or payload_checksum(payload) == expected

    def verify(self, chunk: ChunkId) -> bool:
        """Checksum-verified read: True iff the stored bytes are sound.

        False when the payload is missing, the chunk's sectors are
        unreadable, or the recomputed CRC deviates from the recorded one.
        """
        if chunk not in self._payloads or chunk in self._unreadable:
            return False
        return self.matches_checksum(chunk, self._payloads[chunk])

    # -- fault injection surface -----------------------------------------------

    def corrupt(
        self, chunk: ChunkId, *, rng: np.random.Generator, flips: int = 1
    ) -> list[int]:
        """Silently flip ``flips`` random bytes of the stored payload.

        The recorded checksum is deliberately left untouched — the whole
        point of silent corruption is that no metadata changes. Returns
        the flipped byte positions. Each flip XORs a non-zero byte, so a
        flip can never be a no-op.
        """
        data = self.get(chunk)
        count = min(int(flips), len(data))
        if count < 1:
            raise SimulationError("corruption must flip at least one byte")
        positions = rng.choice(len(data), size=count, replace=False)
        for position in positions:
            data[int(position)] ^= np.uint8(rng.integers(1, 256))
        return [int(p) for p in sorted(positions)]

    def mark_unreadable(self, chunk: ChunkId) -> None:
        """A latent sector error: the chunk's sectors no longer read back."""
        if chunk not in self._payloads:
            raise SimulationError(f"no payload stored for {chunk}")
        self._unreadable.add(chunk)

    def is_unreadable(self, chunk: ChunkId) -> bool:
        """True when a latent sector error pinned this chunk."""
        return chunk in self._unreadable

    def __len__(self) -> int:
        return len(self._payloads)


def encode_and_load(
    stripe_store: StripeStore, *, payload_size: int = 256, seed: int = 0
) -> ChunkStore:
    """Generate random data, encode every stripe, and load the store."""
    if payload_size < 2 or payload_size % 2 != 0:
        raise SimulationError("payload_size must be an even integer >= 2")
    rng = np.random.default_rng(seed)
    code = stripe_store.code
    chunk_store = ChunkStore()
    for stripe_id in stripe_store.stripes:
        data = [
            rng.integers(0, 256, payload_size, dtype=np.uint8)
            for _ in range(code.k)
        ]
        encoded = code.encode(data)
        for index, payload in enumerate(encoded):
            chunk_store.put(ChunkId(stripe_id, index), payload, truth=True)
    return chunk_store


def drop_node_chunks(
    chunk_store: ChunkStore, stripe_store: StripeStore, node_id: int
) -> list[ChunkId]:
    """Simulate data loss: drop every payload stored on ``node_id``."""
    lost = stripe_store.chunks_on_node(node_id)
    for chunk in lost:
        chunk_store.drop(chunk)
    return lost
