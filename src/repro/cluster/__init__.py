"""Cluster model: nodes, placement, stripe metadata, failures."""

from repro.cluster.datastore import ChunkStore, drop_node_chunks, encode_and_load
from repro.cluster.failures import FailureInjector, FailureReport
from repro.cluster.node import GB, KB, MB, Node, gbps, mbs
from repro.cluster.placement import place_stripes
from repro.cluster.stripes import ChunkId, Stripe, StripeStore
from repro.cluster.topology import Cluster

__all__ = [
    "GB",
    "KB",
    "MB",
    "ChunkId",
    "ChunkStore",
    "Cluster",
    "drop_node_chunks",
    "encode_and_load",
    "FailureInjector",
    "FailureReport",
    "Node",
    "Stripe",
    "StripeStore",
    "gbps",
    "mbs",
    "place_stripes",
]
