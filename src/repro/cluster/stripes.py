"""Stripe and chunk metadata (the coordinator's view of placement)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.base import ErasureCode
from repro.errors import SimulationError


@dataclass(frozen=True)
class ChunkId:
    """Identifies one chunk: (stripe, index-within-stripe)."""

    stripe: int
    index: int

    def __str__(self) -> str:
        return f"s{self.stripe}c{self.index}"


@dataclass
class Stripe:
    """One coding group: which node stores each of the n chunks."""

    stripe_id: int
    chunk_nodes: list[int]  # chunk index -> node id

    def node_of(self, index: int) -> int:
        """The node storing chunk ``index`` of this stripe."""
        return self.chunk_nodes[index]

    def nodes(self) -> set[int]:
        """Every node holding a chunk of this stripe."""
        return set(self.chunk_nodes)

    def chunks_on(self, node_id: int) -> list[int]:
        """Chunk indices of this stripe stored on ``node_id``."""
        return [i for i, n in enumerate(self.chunk_nodes) if n == node_id]


@dataclass
class StripeStore:
    """All stripes of the system plus the code that produced them."""

    code: ErasureCode
    chunk_size: int
    stripes: dict[int, Stripe] = field(default_factory=dict)

    def add(self, stripe: Stripe) -> None:
        """Register a stripe (validating width and node uniqueness)."""
        if len(stripe.chunk_nodes) != self.code.n:
            raise SimulationError(
                f"stripe {stripe.stripe_id} has {len(stripe.chunk_nodes)} chunks, "
                f"code {self.code.name} needs {self.code.n}"
            )
        if len(set(stripe.chunk_nodes)) != self.code.n:
            raise SimulationError(
                f"stripe {stripe.stripe_id} places multiple chunks on one node"
            )
        self.stripes[stripe.stripe_id] = stripe

    def node_of(self, chunk: ChunkId) -> int:
        """The node currently holding ``chunk``."""
        return self.stripes[chunk.stripe].node_of(chunk.index)

    def relocate(self, chunk: ChunkId, node_id: int) -> None:
        """Update metadata after a chunk is repaired onto a new node."""
        stripe = self.stripes[chunk.stripe]
        if node_id in stripe.nodes() and stripe.node_of(chunk.index) != node_id:
            raise SimulationError(
                f"relocating {chunk} onto node {node_id} would double-place a stripe"
            )
        stripe.chunk_nodes[chunk.index] = node_id

    def chunks_on_node(self, node_id: int) -> list[ChunkId]:
        """Every chunk stored on ``node_id`` (the full-node repair set)."""
        found = []
        for stripe in self.stripes.values():
            for index in stripe.chunks_on(node_id):
                found.append(ChunkId(stripe.stripe_id, index))
        return found

    def survivors(self, chunk: ChunkId, failed_nodes: set[int]) -> dict[int, int]:
        """Surviving chunk-index -> node-id map for the chunk's stripe."""
        stripe = self.stripes[chunk.stripe]
        return {
            i: n
            for i, n in enumerate(stripe.chunk_nodes)
            if n not in failed_nodes and i != chunk.index
        }

    def __len__(self) -> int:
        return len(self.stripes)
