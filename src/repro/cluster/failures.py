"""Failure injection and repair-candidate queries."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import SimulationError


@dataclass
class FailureReport:
    """Outcome of failing one or more nodes."""

    failed_nodes: list[int]
    failed_chunks: list[ChunkId]


class FailureInjector:
    """Fails nodes and answers the coordinator's placement queries."""

    def __init__(self, cluster: Cluster, store: StripeStore) -> None:
        self.cluster = cluster
        self.store = store

    def fail_nodes(self, node_ids: list[int]) -> FailureReport:
        """Kill ``node_ids``; returns every chunk that must be repaired."""
        tolerance = self.store.code.fault_tolerance()
        already_failed = self.cluster.failed_node_ids()
        if len(already_failed | set(node_ids)) > tolerance:
            raise SimulationError(
                f"failing {node_ids} exceeds the {tolerance}-failure tolerance "
                f"of {self.store.code.name}"
            )
        chunks: list[ChunkId] = []
        for node_id in node_ids:
            self.cluster.fail_node(node_id)
            chunks.extend(self.store.chunks_on_node(node_id))
        return FailureReport(failed_nodes=list(node_ids), failed_chunks=chunks)

    def surviving_sources(self, chunk: ChunkId) -> dict[int, int]:
        """Surviving chunk-index -> node-id for the chunk's stripe."""
        return self.store.survivors(chunk, self.cluster.failed_node_ids())

    def candidate_destinations(self, chunk: ChunkId) -> list[int]:
        """Alive storage nodes that hold no chunk of this stripe.

        Repairing onto such a node keeps the stripe spread across n
        distinct nodes, preserving fault tolerance (Section III-A).
        """
        stripe_nodes = self.store.stripes[chunk.stripe].nodes()
        return [
            node_id
            for node_id in self.cluster.alive_storage_ids()
            if node_id not in stripe_nodes
        ]
