"""Failure injection and repair-candidate queries."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.stripes import ChunkId, StripeStore
from repro.cluster.topology import Cluster
from repro.errors import ReproError, SimulationError


@dataclass
class FailureReport:
    """Outcome of failing one or more nodes."""

    failed_nodes: list[int]
    failed_chunks: list[ChunkId]


class FailureInjector:
    """Fails nodes and answers the coordinator's placement queries."""

    def __init__(self, cluster: Cluster, store: StripeStore) -> None:
        self.cluster = cluster
        self.store = store
        #: Chunks flagged as corrupt/unreadable. Quarantined chunks are
        #: excluded from :meth:`surviving_sources`, so every planner —
        #: the baselines' equation selection and ChameleonEC's candidate
        #: machinery alike — automatically re-plans around them.
        self.quarantined: set[ChunkId] = set()
        #: Optional best-effort distrust oracle (a
        #: :meth:`repro.monitor.FailureDetector.is_suspected` bound
        #: method). Unlike quarantine — ground truth about bad bytes —
        #: suspicion is a *guess* about reachability, so it only narrows
        #: the helper set when the narrowed set still yields a repair
        #: equation; otherwise the unfiltered survivors are returned and
        #: repairability is never affected.
        self.suspicion = None
        #: One-shot per-plan exclusions (hedged reads route a backup
        #: plan around the straggling helper), same best-effort rules.
        self.excluded: set[int] = set()

    def fail_nodes(self, node_ids: list[int]) -> FailureReport:
        """Kill ``node_ids``; returns every chunk that must be repaired."""
        tolerance = self.store.code.fault_tolerance()
        already_failed = self.cluster.failed_node_ids()
        if len(already_failed | set(node_ids)) > tolerance:
            raise SimulationError(
                f"failing {node_ids} exceeds the {tolerance}-failure tolerance "
                f"of {self.store.code.name}"
            )
        chunks: list[ChunkId] = []
        for node_id in node_ids:
            self.cluster.fail_node(node_id)
            chunks.extend(self.store.chunks_on_node(node_id))
        return FailureReport(failed_nodes=list(node_ids), failed_chunks=chunks)

    def crash_node(self, node_id: int) -> FailureReport:
        """Kill one node *mid-run*, without the up-front tolerance gate.

        :meth:`fail_nodes` models the controlled start-of-experiment
        failure and refuses to exceed the code's tolerance; a runtime
        crash (injected by :class:`repro.faults.FaultTimeline`) has no
        such luxury — the node is dead whether or not the data survives.
        Callers check :meth:`is_repairable` per chunk and report a
        ``ToleranceExceeded`` outcome for the unrecoverable ones.

        Idempotent: crashing an already-dead node reports nothing.
        """
        if not self.cluster.node(node_id).alive:
            return FailureReport(failed_nodes=[], failed_chunks=[])
        self.cluster.fail_node(node_id)
        return FailureReport(
            failed_nodes=[node_id],
            failed_chunks=list(self.store.chunks_on_node(node_id)),
        )

    def is_repairable(self, chunk: ChunkId) -> bool:
        """True when the chunk's stripe still has a usable repair equation."""
        survivors = self.surviving_sources(chunk)
        try:
            self.store.code.repair_equation(chunk.index, set(survivors))
        except ReproError:
            return False
        return True

    def surviving_sources(self, chunk: ChunkId) -> dict[int, int]:
        """Surviving chunk-index -> node-id for the chunk's stripe.

        Quarantined siblings are filtered out: a chunk known to hold bad
        bytes must never serve as a repair helper, exactly as a chunk on
        a dead node cannot. This is the single choke point that makes
        *every* repair algorithm select an alternate helper set.
        """
        survivors = self.store.survivors(chunk, self.cluster.failed_node_ids())
        if self.quarantined:
            stripe = chunk.stripe
            survivors = {
                index: node_id
                for index, node_id in survivors.items()
                if ChunkId(stripe, index) not in self.quarantined
            }
        return self._filter_distrusted(chunk, survivors)

    def _distrusted(self, node_id: int) -> bool:
        if node_id in self.excluded:
            return True
        return self.suspicion is not None and self.suspicion(node_id)

    def _filter_distrusted(
        self, chunk: ChunkId, survivors: dict[int, int]
    ) -> dict[int, int]:
        """Drop suspected/excluded helpers — but only best-effort.

        If distrusting every flagged node would leave no valid repair
        equation, the unfiltered survivors are returned: a false
        suspicion must never turn a repairable chunk into a lost one.
        """
        if self.suspicion is None and not self.excluded:
            return survivors
        trusted = {
            index: node_id
            for index, node_id in survivors.items()
            if not self._distrusted(node_id)
        }
        if trusted == survivors:
            return survivors
        try:
            self.store.code.repair_equation(chunk.index, set(trusted))
        except ReproError:
            return survivors
        return trusted

    def quarantine(self, chunk: ChunkId) -> bool:
        """Flag ``chunk`` as corrupt; True if it was newly flagged."""
        if chunk in self.quarantined:
            return False
        self.quarantined.add(chunk)
        return True

    def release(self, chunk: ChunkId) -> None:
        """Lift the quarantine (a verified repair restored the chunk)."""
        self.quarantined.discard(chunk)

    def is_quarantined(self, chunk: ChunkId) -> bool:
        return chunk in self.quarantined

    def candidate_destinations(self, chunk: ChunkId) -> list[int]:
        """Alive storage nodes that hold no chunk of this stripe.

        Repairing onto such a node keeps the stripe spread across n
        distinct nodes, preserving fault tolerance (Section III-A).
        """
        stripe_nodes = self.store.stripes[chunk.stripe].nodes()
        candidates = [
            node_id
            for node_id in self.cluster.alive_storage_ids()
            if node_id not in stripe_nodes
        ]
        if self.suspicion is None and not self.excluded:
            return candidates
        trusted = [n for n in candidates if not self._distrusted(n)]
        # Best-effort again: with every candidate distrusted, fall back
        # to the full list rather than refuse to place the repair.
        return trusted if trusted else candidates
