"""Random stripe placement across storage nodes."""

from __future__ import annotations

import numpy as np

from repro.cluster.stripes import Stripe, StripeStore
from repro.codes.base import ErasureCode
from repro.errors import SimulationError


def place_stripes(
    code: ErasureCode,
    num_stripes: int,
    storage_node_ids: list[int],
    chunk_size: int,
    seed: int = 0,
) -> StripeStore:
    """Place ``num_stripes`` stripes uniformly at random, one chunk per node.

    This matches the paper's setup: chunks of each stripe are spread over
    ``n`` distinct nodes so the stripe tolerates ``m`` node failures.
    """
    if len(storage_node_ids) < code.n:
        raise SimulationError(
            f"{code.name} needs {code.n} nodes, cluster has {len(storage_node_ids)}"
        )
    rng = np.random.default_rng(seed)
    store = StripeStore(code=code, chunk_size=chunk_size)
    ids = np.asarray(storage_node_ids)
    for stripe_id in range(num_stripes):
        chosen = rng.choice(ids, size=code.n, replace=False)
        store.add(Stripe(stripe_id=stripe_id, chunk_nodes=[int(x) for x in chosen]))
    return store
