"""Storage and client nodes with their bandwidth resources."""

from __future__ import annotations

from repro.sim.resources import Resource

# Unit helpers (bytes / bytes-per-second).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000


def gbps(value: float) -> float:
    """Convert gigabits per second to bytes per second."""
    return value * 1e9 / 8


def mbs(value: float) -> float:
    """Convert megabytes per second to bytes per second."""
    return value * 1e6


class Node:
    """A machine in the cluster.

    Every node owns four independent resources: full-duplex network
    up/downlinks plus disk read/write bandwidth (the latter matter in the
    paper's storage-bottlenecked scenarios, Exp#12). Clients get the same
    structure so YCSB traffic contends on their links too.
    """

    def __init__(
        self,
        node_id: int,
        *,
        kind: str = "storage",
        uplink_bw: float = gbps(10),
        downlink_bw: float = gbps(10),
        disk_read_bw: float = mbs(500),
        disk_write_bw: float = mbs(500),
    ) -> None:
        self.id = node_id
        self.kind = kind
        self.uplink = Resource(f"n{node_id}.up", uplink_bw)
        self.downlink = Resource(f"n{node_id}.down", downlink_bw)
        self.disk_read = Resource(f"n{node_id}.dread", disk_read_bw)
        self.disk_write = Resource(f"n{node_id}.dwrite", disk_write_bw)
        self.alive = True

    @property
    def name(self) -> str:
        """Human-readable label, e.g. ``node-3`` or ``client-21``."""
        return f"{'client' if self.kind == 'client' else 'node'}-{self.id}"

    def links(self) -> tuple[Resource, Resource]:
        """The (uplink, downlink) pair."""
        return self.uplink, self.downlink

    def all_resources(self) -> tuple[Resource, ...]:
        """All four bandwidth resources of this node."""
        return (self.uplink, self.downlink, self.disk_read, self.disk_write)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"<Node {self.name}{'' if self.alive else ' (failed)'}>"
