"""The simulated cluster: nodes, links, and transfer construction."""

from __future__ import annotations

import itertools

from repro.cluster.node import Node, gbps, mbs
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.flows import FlowScheduler
from repro.sim.kernel import ColumnarFlowScheduler
from repro.sim.resources import Resource
from repro.sim.transfers import Transfer, TransferManager


class Cluster:
    """A set of storage nodes and client machines sharing one simulator.

    Mirrors the paper's testbed: ``num_nodes`` storage instances plus
    ``num_clients`` machines replaying traces. All bandwidth parameters
    are in bytes/second (see :func:`repro.cluster.node.gbps` /
    :func:`repro.cluster.node.mbs` helpers).
    """

    def __init__(
        self,
        num_nodes: int = 20,
        num_clients: int = 4,
        *,
        link_bw: float = gbps(10),
        disk_read_bw: float = mbs(500),
        disk_write_bw: float = mbs(500),
        node_overrides: dict[int, dict[str, float]] | None = None,
        racks: int | None = None,
        oversubscription: float = 1.0,
        sim: Simulator | None = None,
        columnar_kernel: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise SimulationError("cluster needs at least one storage node")
        if racks is not None and not 1 <= racks <= num_nodes:
            raise SimulationError(f"racks must lie in [1, {num_nodes}]")
        if oversubscription < 1.0:
            raise SimulationError("oversubscription factor must be >= 1")
        self.sim = sim if sim is not None else Simulator()
        # The columnar kernel stores flow hot state in numpy arrays —
        # byte-identical behaviour, much cheaper per flow at 100k-flow
        # scale (see repro.sim.kernel).
        scheduler_cls = ColumnarFlowScheduler if columnar_kernel else FlowScheduler
        self.flows = scheduler_cls(self.sim)
        self.transfers = TransferManager(self.flows)
        # node_overrides lets individual storage nodes deviate from the
        # defaults (heterogeneous clusters: slower NICs, ageing disks),
        # e.g. {3: {"uplink_bw": gbps(1)}}.
        overrides = node_overrides or {}
        unknown = set(overrides) - set(range(num_nodes))
        if unknown:
            raise SimulationError(f"node_overrides for unknown nodes {sorted(unknown)}")
        self.storage_nodes: list[Node] = []
        for i in range(num_nodes):
            params = dict(
                uplink_bw=link_bw,
                downlink_bw=link_bw,
                disk_read_bw=disk_read_bw,
                disk_write_bw=disk_write_bw,
            )
            bad = set(overrides.get(i, {})) - set(params)
            if bad:
                raise SimulationError(
                    f"unknown bandwidth override(s) {sorted(bad)} for node {i}"
                )
            params.update(overrides.get(i, {}))
            self.storage_nodes.append(Node(i, kind="storage", **params))
        self.clients: list[Node] = [
            Node(
                num_nodes + j,
                kind="client",
                uplink_bw=link_bw,
                downlink_bw=link_bw,
                disk_read_bw=disk_read_bw,
                disk_write_bw=disk_write_bw,
            )
            for j in range(num_clients)
        ]
        self._by_id: dict[int, Node] = {
            node.id: node for node in self.storage_nodes + self.clients
        }
        # Optional two-level topology (hierarchical data centres):
        # storage nodes spread round-robin over racks; traffic between
        # racks also crosses the racks' aggregate up/down pipes, whose
        # capacity is (nodes-per-rack * link_bw) / oversubscription.
        # Clients share one dedicated, non-oversubscribed "access" rack.
        self.racks = racks
        self._rack_of: dict[int, int] = {}
        self._rack_up: dict[int, Resource] = {}
        self._rack_down: dict[int, Resource] = {}
        if racks is not None:
            per_rack = -(-num_nodes // racks)  # ceil division
            rack_bw = per_rack * link_bw / oversubscription
            for rack in range(racks):
                self._rack_up[rack] = Resource(f"rack{rack}.up", rack_bw)
                self._rack_down[rack] = Resource(f"rack{rack}.down", rack_bw)
            for node in self.storage_nodes:
                self._rack_of[node.id] = node.id % racks
            client_rack = racks
            if self.clients:
                client_bw = max(1, len(self.clients)) * link_bw
                self._rack_up[client_rack] = Resource(f"rack{client_rack}.up", client_bw)
                self._rack_down[client_rack] = Resource(
                    f"rack{client_rack}.down", client_bw
                )
                for node in self.clients:
                    self._rack_of[node.id] = client_rack
        # Active network partitions: id -> {node_id: group}. Nodes not
        # named by a partition implicitly form group 0, so a partition
        # listing only the minority side isolates it from "the rest".
        # Multiple overlapping partitions compose: two nodes are
        # reachable only if every active cut keeps them together.
        self._partitions: dict[int, dict[int, int]] = {}
        self._partition_ids = itertools.count()

    # -- connectivity ---------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        """True while at least one network partition is active."""
        return bool(self._partitions)

    def reachable(self, a: int, b: int) -> bool:
        """Whether traffic may currently flow between two nodes."""
        for groups in self._partitions.values():
            if groups.get(a, 0) != groups.get(b, 0):
                return False
        return True

    def apply_partition(self, groups) -> int:
        """Split the cluster: nodes in different groups cannot exchange
        traffic until :meth:`heal_partition` removes the cut.

        ``groups`` is an iterable of node-id groups; any node not listed
        joins implicit group 0. Live transfers crossing the cut are
        stalled (their in-flight slice is blackholed and re-sent after
        heal), and new cross-cut slices are refused at launch. Returns a
        partition id for :meth:`heal_partition`.
        """
        mapping: dict[int, int] = {}
        for gid, members in enumerate(groups, start=1):
            for node_id in members:
                self.node(node_id)  # validate
                if node_id in mapping:
                    raise SimulationError(
                        f"node {node_id} appears in two partition groups"
                    )
                mapping[node_id] = gid
        if not mapping:
            raise SimulationError("a partition needs at least one named node")
        pid = next(self._partition_ids)
        self._partitions[pid] = mapping
        self.transfers.reachability = self.reachable
        for transfer in self.transfers.live_transfers():
            if (
                transfer.src is not None
                and transfer.dst is not None
                and not self.reachable(transfer.src, transfer.dst)
            ):
                self.transfers.stall(transfer)
        return pid

    def heal_partition(self, partition_id: int) -> None:
        """Remove one cut; stalled transfers re-launch (and re-park if a
        different overlapping partition still separates them)."""
        if partition_id not in self._partitions:
            raise SimulationError(f"unknown partition id {partition_id}")
        del self._partitions[partition_id]
        if not self._partitions:
            self.transfers.reachability = None
        self.transfers.unstall_all()

    def node(self, node_id: int) -> Node:
        """Look up any node (storage or client) by id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise SimulationError(f"unknown node id {node_id}") from None

    @property
    def storage_ids(self) -> list[int]:
        """Ids of all storage nodes (alive or not)."""
        return [n.id for n in self.storage_nodes]

    def alive_storage_ids(self) -> list[int]:
        """Ids of storage nodes that have not failed."""
        return [n.id for n in self.storage_nodes if n.alive]

    def failed_node_ids(self) -> set[int]:
        """Ids of failed storage nodes."""
        return {n.id for n in self.storage_nodes if not n.alive}

    def fail_node(self, node_id: int) -> None:
        """Mark a storage node dead (its chunks become repair targets)."""
        node = self.node(node_id)
        if node.kind != "storage":
            raise SimulationError(f"cannot fail client node {node_id}")
        node.alive = False

    def transfer_resources(
        self,
        src_id: int,
        dst_id: int,
        *,
        read_disk: bool = True,
        write_disk: bool = False,
    ) -> tuple[Resource, ...]:
        """Resource path for a src -> dst movement.

        ``read_disk`` adds the source's disk-read bandwidth (set for
        transfers that serve a stored chunk; relays forwarding in-memory
        partial results skip it). ``write_disk`` adds the destination's
        disk-write bandwidth (set for the final write of a repaired
        chunk or a foreground update).
        """
        src, dst = self.node(src_id), self.node(dst_id)
        path: list[Resource] = []
        if read_disk:
            path.append(src.disk_read)
        path.append(src.uplink)
        src_rack = self._rack_of.get(src_id)
        dst_rack = self._rack_of.get(dst_id)
        if src_rack is not None and src_rack != dst_rack:
            path.append(self._rack_up[src_rack])
            path.append(self._rack_down[dst_rack])
        path.append(dst.downlink)
        if write_disk:
            path.append(dst.disk_write)
        return tuple(path)

    def rack_of(self, node_id: int) -> int | None:
        """The rack a node lives in (None for flat topologies)."""
        return self._rack_of.get(node_id)

    def make_transfer(
        self,
        src_id: int,
        dst_id: int,
        size: float,
        slice_size: float,
        *,
        tag: str = "default",
        read_disk: bool = True,
        write_disk: bool = False,
        name: str | None = None,
    ) -> Transfer:
        """Build (but do not start) a sliced transfer between two nodes."""
        resources = self.transfer_resources(
            src_id, dst_id, read_disk=read_disk, write_disk=write_disk
        )
        label = name or f"x{src_id}->{dst_id}"
        transfer = Transfer(label, resources, size, slice_size, tag=tag)
        transfer.src = src_id
        transfer.dst = dst_id
        return transfer

    def start(self, transfer: Transfer) -> None:
        """Release a transfer built by :meth:`make_transfer`."""
        self.transfers.start(transfer)

    def set_link_bandwidth(self, link_bw: float) -> None:
        """Throttle every node's up/downlink (the wondershaper experiments)."""
        changed = []
        for node in self.storage_nodes + self.clients:
            node.uplink.set_capacity(link_bw)
            node.downlink.set_capacity(link_bw)
            changed.append(node.uplink)
            changed.append(node.downlink)
        self.flows.capacity_changed(*changed)

    def set_disk_bandwidth(
        self, disk_bw: float, write_bw: float | None = None
    ) -> None:
        """Throttle every storage node's disk (storage-bottleneck experiments).

        ``write_bw`` sets the write side separately (asymmetric devices:
        SSD reads typically outpace writes); omitted, both sides get
        ``disk_bw``.
        """
        changed = []
        for node in self.storage_nodes:
            node.disk_read.set_capacity(disk_bw)
            node.disk_write.set_capacity(disk_bw if write_bw is None else write_bw)
            changed.append(node.disk_read)
            changed.append(node.disk_write)
        self.flows.capacity_changed(*changed)
