"""Record kinds, leases and the replayable state of the repair journal.

The journal is an append-only sequence of :class:`JournalRecord`\\ s;
:class:`JournalState` is the deterministic fold over that sequence. The
two are kept in lock-step by :class:`repro.journal.wal.Journal` (every
append is applied immediately), and recovery rebuilds the same state by
replaying the records — the core exactly-once argument is that *both
paths run the identical transition function* (:meth:`JournalState.apply`).

Chunk ownership is lease-based: a ``plan_chosen`` record grants the
writing coordinator epoch a time-bounded lease on the chunk. A
recovering coordinator may re-execute an in-flight chunk only when its
lease is provably void — the owning epoch is older than the current one,
the epoch was fenced by a ``coordinator_crash`` record, or the lease
expired on the virtual clock (see :meth:`JournalState.reexecutable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.stripes import ChunkId

# -- record kinds ---------------------------------------------------------------

#: A coordinator incarnation opened ``payload["epoch"]``.
COORDINATOR_START = "coordinator_start"
#: The current incarnation was declared dead (fences all its leases).
COORDINATOR_CRASH = "coordinator_crash"
#: ``chunk`` entered the work queue (initial batch, crash adoption,
#: or an integrity-reject requeue; re-opens a committed chunk).
ENQUEUED = "chunk_enqueued"
#: A plan was chosen for ``chunk``; grants a lease until
#: ``payload["lease_expires"]``.
PLAN_CHOSEN = "plan_chosen"
#: The chunk's helper-read transfers were released into the simulator.
READS_ISSUED = "reads_issued"
#: The in-flight attempt failed (``payload["reason"]``); lease released.
ATTEMPT_FAILED = "attempt_failed"
#: The decoded payload passed checksum verification.
DECODE_VERIFIED = "decode_verified"
#: The reconstruction was written back; the chunk is repaired.
COMMITTED = "writeback_committed"
#: The chunk was written off (tolerance exceeded / retries exhausted).
LOST = "chunk_lost"
#: Compacting snapshot of the full state (``payload["state"]``).
CHECKPOINT = "checkpoint"

RECORD_KINDS = (
    COORDINATOR_START,
    COORDINATOR_CRASH,
    ENQUEUED,
    PLAN_CHOSEN,
    READS_ISSUED,
    ATTEMPT_FAILED,
    DECODE_VERIFIED,
    COMMITTED,
    LOST,
    CHECKPOINT,
)


@dataclass(frozen=True)
class Lease:
    """Time-bounded ownership of one in-flight chunk repair.

    The lease is held over the half-open interval
    ``[acquired_at, expires_at)``: at exactly ``now == expires_at`` the
    lease has already lapsed and the chunk is re-executable. The
    half-open convention keeps recovery conservative-but-live — a
    recovering coordinator scheduled at precisely the expiry instant
    never deadlocks waiting one more tick for a dead owner.
    """

    chunk: ChunkId
    epoch: int
    acquired_at: float
    expires_at: float
    #: Journal partition that granted the lease (0 = the unsharded /
    #: default partition).
    shard: int = 0

    def expired(self, now: float) -> bool:
        """True once ``now`` reached ``expires_at`` (half-open hold)."""
        return now >= self.expires_at


@dataclass(frozen=True)
class JournalRecord:
    """One append-only journal entry, stamped with virtual time.

    ``shard`` names the journal partition the record belongs to. All
    partitions share one append-only log (and one ``seq`` space); the
    shard id keys the per-partition epoch/fence/lease bookkeeping.
    Shard 0 is the default partition and is omitted from the JSON form,
    keeping single-coordinator logs byte-identical to the pre-sharding
    format.
    """

    seq: int
    at: float
    kind: str
    chunk: ChunkId | None = None
    payload: dict = field(default_factory=dict)
    shard: int = 0

    def to_dict(self) -> dict:
        """JSON-safe form (ChunkIds become ``[stripe, index]`` pairs)."""
        out = {"seq": self.seq, "at": self.at, "kind": self.kind}
        if self.chunk is not None:
            out["chunk"] = [self.chunk.stripe, self.chunk.index]
        if self.shard:
            out["shard"] = self.shard
        if self.payload:
            out["payload"] = self.payload
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "JournalRecord":
        chunk = data.get("chunk")
        return cls(
            seq=data["seq"],
            at=data["at"],
            kind=data["kind"],
            chunk=ChunkId(*chunk) if chunk is not None else None,
            payload=dict(data.get("payload", {})),
            shard=data.get("shard", 0),
        )


def _chunk_key(chunk: ChunkId) -> list[int]:
    return [chunk.stripe, chunk.index]


class JournalState:
    """The fold of a record sequence: who owns what, what is done.

    The four chunk collections are insertion-ordered (plain dicts used
    as ordered sets), so replay reproduces the coordinator's work order
    deterministically. ``leases`` maps every in-flight chunk to its
    current :class:`Lease`.

    Epochs and fences are kept *per shard* (``_epochs`` / ``_fenced``
    keyed by shard id); ``epoch`` and ``fenced`` remain as shard-0
    properties so single-coordinator callers see the pre-sharding
    surface unchanged. ``shard_of`` tracks the partition that last
    journaled each chunk, which is what lets :func:`reconcile` carve a
    per-shard recovery plan out of the shared log.
    """

    def __init__(self) -> None:
        self._epochs: dict[int, int] = {}
        self._fenced: dict[int, bool] = {}  # epoch declared dead, per shard
        self.pending: dict[ChunkId, int] = {}
        self.leases: dict[ChunkId, Lease] = {}
        self.committed: dict[ChunkId, int] = {}
        self.lost: dict[ChunkId, int] = {}
        self.shard_of: dict[ChunkId, int] = {}

    # -- per-shard epoch surface ----------------------------------------------

    @property
    def epoch(self) -> int:
        """Shard 0's epoch (the whole journal's, when unsharded)."""
        return self._epochs.get(0, 0)

    @property
    def fenced(self) -> bool:
        """Shard 0's fence flag (the whole journal's, when unsharded)."""
        return self._fenced.get(0, False)

    def epoch_of(self, shard: int) -> int:
        return self._epochs.get(shard, 0)

    def fenced_of(self, shard: int) -> bool:
        return self._fenced.get(shard, False)

    def shards(self) -> list[int]:
        """Every shard id the log has touched (always includes 0)."""
        ids = {0} | set(self._epochs) | set(self._fenced)
        ids.update(self.shard_of.values())
        return sorted(ids)

    # -- transitions ----------------------------------------------------------

    def apply(self, record: JournalRecord) -> None:
        """Advance the state by one record (replay == live bookkeeping)."""
        kind, chunk, seq, shard = (
            record.kind,
            record.chunk,
            record.seq,
            record.shard,
        )
        if chunk is not None:
            self.shard_of[chunk] = shard
        if kind == COORDINATOR_START:
            self._epochs[shard] = record.payload["epoch"]
            self._fenced[shard] = False
        elif kind == COORDINATOR_CRASH:
            self._fenced[shard] = True
        elif kind == ENQUEUED:
            self.committed.pop(chunk, None)
            self.lost.pop(chunk, None)
            self.leases.pop(chunk, None)
            self.pending[chunk] = seq
        elif kind == PLAN_CHOSEN:
            self.pending.pop(chunk, None)
            self.leases[chunk] = Lease(
                chunk=chunk,
                epoch=self.epoch_of(shard),
                acquired_at=record.at,
                expires_at=record.payload["lease_expires"],
                shard=shard,
            )
        elif kind == ATTEMPT_FAILED:
            self.leases.pop(chunk, None)
            self.pending[chunk] = seq
        elif kind == COMMITTED:
            self.pending.pop(chunk, None)
            self.leases.pop(chunk, None)
            self.committed[chunk] = seq
        elif kind == LOST:
            self.pending.pop(chunk, None)
            self.leases.pop(chunk, None)
            self.committed.pop(chunk, None)
            self.lost[chunk] = seq
        elif kind == CHECKPOINT:
            self.restore(record.payload["state"])
        elif kind in (READS_ISSUED, DECODE_VERIFIED):
            pass  # markers: no ownership transition
        else:
            raise ValueError(f"unknown journal record kind {kind!r}")

    # -- lease queries --------------------------------------------------------

    def reexecutable(self, chunk: ChunkId, now: float) -> bool:
        """May a recovering coordinator safely re-execute ``chunk``?

        True for chunks with no lease, and for leased chunks whose lease
        is void: granted by an older epoch, fenced by a crash record, or
        expired on the virtual clock. A live lease of an unfenced current
        epoch means the owner may still be running — re-executing could
        double-repair.
        """
        lease = self.leases.get(chunk)
        if lease is None:
            return True
        return (
            lease.epoch < self.epoch_of(lease.shard)
            or self.fenced_of(lease.shard)
            or lease.expired(now)
        )

    def open_work(self, shard: int | None = None) -> list[ChunkId]:
        """Chunks neither committed nor lost, in journal order.

        ``shard`` narrows the view to one partition's chunks; ``None``
        spans every partition.
        """
        chunks = list(self.pending) + list(self.leases)
        if shard is None:
            return chunks
        return [c for c in chunks if self.shard_of.get(c, 0) == shard]

    # -- checkpoint snapshots --------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe snapshot restoring this exact state.

        Shard metadata (``shards`` per-partition epochs/fences and the
        ``shard_of`` chunk map) is emitted only when a non-zero shard
        exists, keeping single-coordinator snapshots byte-identical to
        the pre-sharding format.
        """
        snap = {
            "epoch": self.epoch,
            "fenced": self.fenced,
            "pending": [_chunk_key(c) for c in self.pending],
            "leases": [
                {
                    "chunk": _chunk_key(lease.chunk),
                    "epoch": lease.epoch,
                    "acquired_at": lease.acquired_at,
                    "expires_at": lease.expires_at,
                    **({"shard": lease.shard} if lease.shard else {}),
                }
                for lease in self.leases.values()
            ],
            "committed": [_chunk_key(c) for c in self.committed],
            "lost": [_chunk_key(c) for c in self.lost],
        }
        extra = sorted(
            s
            for s in set(self._epochs) | set(self._fenced)
            if s != 0
        )
        if extra:
            snap["shards"] = [
                [s, self.epoch_of(s), self.fenced_of(s)] for s in extra
            ]
        sharded = sorted(
            (c.stripe, c.index, s) for c, s in self.shard_of.items() if s != 0
        )
        if sharded:
            snap["shard_of"] = [list(entry) for entry in sharded]
        return snap

    def restore(self, snap: dict) -> None:
        """Replace the state wholesale with a checkpoint snapshot."""
        self._epochs = {0: snap["epoch"]}
        self._fenced = {0: snap["fenced"]}
        for shard, epoch, fenced in snap.get("shards", []):
            self._epochs[shard] = epoch
            self._fenced[shard] = fenced
        self.pending = {ChunkId(*c): -1 for c in snap["pending"]}
        self.leases = {
            ChunkId(*entry["chunk"]): Lease(
                chunk=ChunkId(*entry["chunk"]),
                epoch=entry["epoch"],
                acquired_at=entry["acquired_at"],
                expires_at=entry["expires_at"],
                shard=entry.get("shard", 0),
            )
            for entry in snap["leases"]
        }
        self.committed = {ChunkId(*c): -1 for c in snap["committed"]}
        self.lost = {ChunkId(*c): -1 for c in snap["lost"]}
        overrides = {
            ChunkId(stripe, index): shard
            for stripe, index, shard in snap.get("shard_of", [])
        }
        self.shard_of = {}
        for collection in (self.pending, self.leases, self.committed, self.lost):
            for chunk in collection:
                self.shard_of[chunk] = overrides.get(chunk, 0)
