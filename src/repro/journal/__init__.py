"""Durable repair control plane (``repro.journal``).

ChameleonEC's scheduler (Section III, Algorithm 1) is a centralized
coordinator; until this subsystem existed, all of its progress — batches,
in-flight plans, retry counters — lived in coordinator memory, so a
control-plane crash silently lost or double-executed repairs. The
journal fixes that:

* :class:`Journal` — a virtual-time write-ahead log the repair drivers
  write through at every state transition, with epoch fencing,
  lease-based chunk ownership and compacting checkpoints. The log is
  partitioned into *shards* (per-shard epoch counters, fences and
  leases in one shared record sequence) so N coordinators can run
  concurrently; :meth:`Journal.shard_view` hands each coordinator a
  :class:`JournalShard` write-through view of its own partition;
* :class:`JournalState` / :class:`JournalRecord` / :class:`Lease` — the
  replayable fold of the record sequence;
* :func:`reconcile` / :class:`RecoveryPlan` — replay reconciled against
  :class:`~repro.cluster.datastore.ChunkStore` ground truth, deciding
  per chunk: completed (never re-execute), requeue, blocked (live
  lease), or lost.

Crash injection (:class:`repro.faults.CoordinatorCrash`) and the
recovery entry point (:meth:`repro.api.Testbed.recover_repairer`) live
with their subsystems; see README "Crash recovery & failover".
"""

from repro.journal.records import (
    ATTEMPT_FAILED,
    CHECKPOINT,
    COMMITTED,
    COORDINATOR_CRASH,
    COORDINATOR_START,
    DECODE_VERIFIED,
    ENQUEUED,
    LOST,
    PLAN_CHOSEN,
    READS_ISSUED,
    RECORD_KINDS,
    JournalRecord,
    JournalState,
    Lease,
)
from repro.journal.recovery import RecoveryPlan, reconcile
from repro.journal.wal import Journal, JournalShard, audit_fenced_writes

__all__ = [
    "ATTEMPT_FAILED",
    "CHECKPOINT",
    "COMMITTED",
    "COORDINATOR_CRASH",
    "COORDINATOR_START",
    "DECODE_VERIFIED",
    "ENQUEUED",
    "LOST",
    "PLAN_CHOSEN",
    "READS_ISSUED",
    "RECORD_KINDS",
    "Journal",
    "JournalRecord",
    "JournalShard",
    "JournalState",
    "Lease",
    "RecoveryPlan",
    "audit_fenced_writes",
    "reconcile",
]
