"""Reconciling a replayed journal against data-plane ground truth.

Replay alone tells the recovering coordinator what the dead incarnation
*intended*; the :class:`~repro.cluster.datastore.ChunkStore` (when
integrity is enabled) tells it what actually *happened* to the bytes.
:func:`reconcile` folds the two into a :class:`RecoveryPlan`:

* a chunk the journal committed whose stored payload exists and passes
  its checksum is **completed** — it must never be repaired again;
* a committed chunk whose payload is missing or corrupt is **demoted**
  back into the work queue (the write-back did not survive);
* a pending or in-flight chunk whose stored payload verifies is
  **adopted** as completed (the write-back landed but the commit record
  did not — the crash fell into the write/commit window);
* every other pending chunk, plus every in-flight chunk whose lease is
  provably void (older epoch, fenced, or expired), is **requeued**;
* an in-flight chunk with a live lease of an unfenced epoch is
  **blocked** — the owner may still be running, so re-executing it could
  double-repair; the caller waits for expiry or fences first;
* **lost** chunks stay lost (the tolerance judgment still stands).

Requeue order follows journal order, so recovery is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.stripes import ChunkId
from repro.journal.records import JournalState


@dataclass
class RecoveryPlan:
    """What a recovering coordinator must (and must not) do."""

    #: Repaired for sure; never re-execute (exactly-once).
    completed: list[ChunkId] = field(default_factory=list)
    #: Needs repairing; safe to re-execute now.
    requeue: list[ChunkId] = field(default_factory=list)
    #: In flight under a live lease of an unfenced epoch; do not touch.
    blocked: list[ChunkId] = field(default_factory=list)
    #: Written off by the dead incarnation.
    lost: list[ChunkId] = field(default_factory=list)
    #: Journal said committed but the store disagreed (now in requeue).
    demoted: list[ChunkId] = field(default_factory=list)
    #: Store already held verified bytes for these (now in completed).
    adopted_from_store: list[ChunkId] = field(default_factory=list)
    #: Epoch of the journal state the plan was derived from.
    epoch: int = 0
    #: Shard the plan covers (``None`` = the whole journal).
    shard: int | None = None

    def summary(self) -> dict[str, int]:
        """Counts for logs and trace instants."""
        return {
            "completed": len(self.completed),
            "requeue": len(self.requeue),
            "blocked": len(self.blocked),
            "lost": len(self.lost),
            "demoted": len(self.demoted),
            "adopted_from_store": len(self.adopted_from_store),
        }


def _store_has_verified(chunk_store, chunk: ChunkId) -> bool:
    return (
        chunk_store is not None
        and chunk_store.has(chunk)
        and chunk_store.verify(chunk)
    )


def reconcile(
    state: JournalState, *, now: float, chunk_store=None, shard: int | None = None
) -> RecoveryPlan:
    """Fold journal intent and store ground truth into a recovery plan.

    ``chunk_store=None`` (no integrity machinery) trusts the journal
    alone: committed stays committed, everything open is requeued or
    blocked purely on lease grounds.

    ``shard`` narrows the plan to one journal partition: only chunks
    last journaled by that shard are classified, and the plan's epoch
    is that shard's. ``None`` keeps the whole-journal (single
    coordinator) behaviour.
    """

    def mine(chunk: ChunkId) -> bool:
        return shard is None or state.shard_of.get(chunk, 0) == shard

    plan = RecoveryPlan(
        epoch=state.epoch if shard is None else state.epoch_of(shard),
        shard=shard,
    )
    for chunk in state.committed:
        if not mine(chunk):
            continue
        if chunk_store is not None and not _store_has_verified(chunk_store, chunk):
            plan.demoted.append(chunk)
            plan.requeue.append(chunk)
        else:
            plan.completed.append(chunk)
    for chunk in state.pending:
        if not mine(chunk):
            continue
        if _store_has_verified(chunk_store, chunk):
            plan.adopted_from_store.append(chunk)
            plan.completed.append(chunk)
        else:
            plan.requeue.append(chunk)
    for chunk in state.leases:
        if not mine(chunk):
            continue
        if _store_has_verified(chunk_store, chunk):
            plan.adopted_from_store.append(chunk)
            plan.completed.append(chunk)
        elif state.reexecutable(chunk, now):
            plan.requeue.append(chunk)
        else:
            plan.blocked.append(chunk)
    plan.lost = [chunk for chunk in state.lost if mine(chunk)]
    return plan
